"""Simulated network: latency, loss, partitions, offline hosts."""

import pytest

from repro.errors import NetworkError
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def net(sim):
    return Network(sim, default_latency=0.5)


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        net.add_host("a")
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_unknown_host_send_raises(self, net):
        net.add_host("a")
        with pytest.raises(NetworkError):
            net.send("a", "ghost", "x")
        with pytest.raises(NetworkError):
            net.send("ghost", "a", "x")


class TestDelivery:
    def test_delivery_after_latency(self, sim, net):
        received = []
        net.add_host("a")
        net.add_host("b", receiver=lambda d: received.append(d))
        net.send("a", "b", "hello")
        assert received == []  # not yet delivered
        sim.run_for(1.0)
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert received[0].delivered_at == 0.5

    def test_custom_link_latency(self, sim, net):
        received = []
        net.add_host("a")
        net.add_host("b", receiver=lambda d: received.append(d))
        net.link("a", "b", latency=2.0)
        net.send("a", "b", "x")
        sim.run_for(1.0)
        assert received == []
        sim.run_for(1.5)
        assert len(received) == 1

    def test_loss_probability_drops_deterministically(self, sim):
        net = Network(sim)
        received = []
        net.add_host("a")
        net.add_host("b", receiver=lambda d: received.append(d))
        net.link("a", "b", loss_probability=1.0)
        net.send("a", "b", "x")
        sim.run_for(1.0)
        assert received == []
        assert net.stats.dropped == 1

    def test_offline_destination_drops(self, sim, net):
        received = []
        net.add_host("a")
        host_b = net.add_host("b", receiver=lambda d: received.append(d))
        host_b.online = False
        net.send("a", "b", "x")
        sim.run_for(1.0)
        assert received == []
        assert net.stats.dropped == 1

    def test_no_receiver_counts_as_drop(self, sim, net):
        net.add_host("a")
        net.add_host("b")  # no receiver
        net.send("a", "b", "x")
        sim.run_for(1.0)
        assert net.stats.dropped == 1


class TestPartitions:
    def test_partition_blocks_both_directions(self, sim, net):
        received = []
        net.add_host("a", receiver=lambda d: received.append(("a", d)))
        net.add_host("b", receiver=lambda d: received.append(("b", d)))
        net.partition({"a"}, {"b"})
        net.send("a", "b", "x")
        net.send("b", "a", "y")
        sim.run_for(1.0)
        assert received == []
        assert net.stats.blocked_partition == 2

    def test_heal_restores_connectivity(self, sim, net):
        received = []
        net.add_host("a")
        net.add_host("b", receiver=lambda d: received.append(d))
        net.partition({"a"}, {"b"})
        net.send("a", "b", "lost")
        net.heal_partitions()
        net.send("a", "b", "found")
        sim.run_for(1.0)
        assert [d.payload for d in received] == ["found"]

    def test_partition_does_not_affect_third_parties(self, sim, net):
        received = []
        net.add_host("a")
        net.add_host("b")
        net.add_host("c", receiver=lambda d: received.append(d))
        net.partition({"a"}, {"b"})
        net.send("a", "c", "ok")
        sim.run_for(1.0)
        assert len(received) == 1
