"""Discrete-event simulator: clocks, ordering, recurrence."""

import pytest

from repro.sim import Clock, EventQueue, Simulator


class TestClock:
    def test_starts_at_given_time(self):
        assert Clock(5.0).now() == 5.0

    def test_advance(self):
        clock = Clock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_no_backwards_travel(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["first", "second"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0


class TestSimulator:
    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule_in(5.0, lambda: times.append(sim.now()))
        sim.run_for(10.0)
        assert times == [5.0]
        assert sim.now() == 10.0

    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.schedule_at(7.0, lambda: fired.append(7))
        sim.run_until(5.0)
        assert fired == [3]
        sim.run_until(10.0)
        assert fired == [3, 7]

    def test_cannot_schedule_in_the_past(self, sim):
        sim.run_for(10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_recurring_events(self, sim):
        count = []
        sim.schedule_every(2.0, lambda: count.append(sim.now()))
        sim.run_for(7.0)
        assert count == [2.0, 4.0, 6.0]

    def test_recurring_cancel(self, sim):
        count = []
        cancel = sim.schedule_every(1.0, lambda: count.append(1))
        sim.run_for(3.0)
        cancel()
        sim.run_for(3.0)
        assert len(count) == 3

    def test_recurring_until(self, sim):
        count = []
        sim.schedule_every(1.0, lambda: count.append(sim.now()), until=3.0)
        sim.run_for(10.0)
        assert count == [1.0, 2.0, 3.0]

    def test_recurring_rejects_bad_interval(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_every(0.0, lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        log = []

        def outer():
            log.append("outer")
            sim.schedule_in(1.0, lambda: log.append("inner"))

        sim.schedule_in(1.0, outer)
        sim.run_for(5.0)
        assert log == ["outer", "inner"]

    def test_drain_respects_cap(self, sim):
        def reschedule():
            sim.schedule_in(1.0, reschedule)

        sim.schedule_in(1.0, reschedule)
        processed = sim.drain(max_events=50)
        assert processed == 50

    def test_seeded_rng_reproducible(self):
        a = Simulator(seed=99).rng.random()
        b = Simulator(seed=99).rng.random()
        assert a == b

    def test_recurring_no_drift_when_callback_advances_clock(self, sim):
        # Regression: re-arming from clock.now() after the callback let
        # a clock-advancing callback (worker pump, nested drain) stretch
        # every period.  The recurrence must stay on the k*interval grid.
        fired = []

        def pump():
            fired.append(sim.now())
            sim.clock.advance(0.6)

        sim.schedule_every(1.0, pump)
        sim.run_until(4.5)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_recurring_skips_missed_periods_to_grid(self, sim):
        fired = []

        def slow():
            fired.append(sim.now())
            sim.clock.advance(2.5)  # overruns two whole periods

        sim.schedule_every(1.0, slow)
        sim.run_until(4.5)
        # Missed grid points are skipped, not replayed; the next firing
        # is the first grid point strictly after the overrun.
        assert fired == [1.0, 4.0]


class TestEventQueueLiveCount:
    def test_len_tracks_cancellation(self):
        queue = EventQueue()
        events = [queue.push(float(i + 1), lambda: None) for i in range(5)]
        assert len(queue) == 5
        events[2].cancel()
        events[2].cancel()  # idempotent: must not double-decrement
        assert len(queue) == 4
        assert queue.pop() is events[0]
        assert len(queue) == 3


class TestEventBuckets:
    def test_bucket_shares_one_heap_entry(self):
        queue = EventQueue()
        order = []
        first = queue.push_bucket(1.0, lambda: order.append("a"))
        second = queue.push_bucket(1.0, lambda: order.append("b"))
        assert first is second
        assert len(queue) == 1
        event = queue.pop()
        event.callback()
        assert order == ["a", "b"]

    def test_bucket_orders_against_plain_events_by_creation(self, sim):
        log = []
        sim.schedule_in(1.0, lambda: log.append("before"))
        sim.schedule_bucket(1.0, lambda: log.append("b1"))
        sim.schedule_bucket(1.0, lambda: log.append("b2"))
        sim.schedule_in(1.0, lambda: log.append("after"))
        sim.run_for(2.0)
        # The bucket holds the heap position of its first callback; later
        # joiners ride along ahead of later individual pushes.
        assert log == ["before", "b1", "b2", "after"]

    def test_append_during_fire_runs_same_step(self, sim):
        log = []

        def first():
            log.append("first")
            sim.schedule_bucket(0.0, lambda: log.append("late"))

        sim.schedule_bucket(1.0, first)
        sim.run_for(2.0)
        assert log == ["first", "late"]

    def test_cancel_cancels_whole_bucket(self, sim):
        log = []
        event = sim.schedule_bucket(1.0, lambda: log.append("a"))
        sim.schedule_bucket(1.0, lambda: log.append("b"))
        event.cancel()
        sim.run_for(2.0)
        assert log == []
        # A post-cancel schedule at the same deadline opens a fresh bucket.
        sim.schedule_bucket(0.5, lambda: log.append("fresh"))
        sim.run_for(1.0)
        assert log == ["fresh"]

    def test_spent_deadline_reopens_fresh_bucket(self, sim):
        log = []
        sim.schedule_bucket(1.0, lambda: log.append("one"))
        sim.run_for(1.0)
        sim.schedule_bucket(1.0, lambda: log.append("two"))
        sim.run_for(1.0)
        assert log == ["one", "two"]
