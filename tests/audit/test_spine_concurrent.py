"""Real-thread stress of the audit spine's concurrency contract.

The spine's claim (``docs/worker_plane.md``): emitters bound to their
own sources may append while drain/checkpoint/verify run — nothing is
lost, nothing is double-chained, and the resulting chains verify.  A
timer thread here plays the role of the simulated clock's tick drains.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import AuditSpine, RecordKind
from repro.audit.spine import bind_source

pytestmark = pytest.mark.concurrency

N_WORKERS = 16
PER_WORKER = 200


def _run_concurrent(spine, n_workers=N_WORKERS, per_worker=PER_WORKER):
    """n_workers emitter threads + one drain/checkpoint timer thread."""
    emitters = [bind_source(spine, f"bus.w{i}") for i in range(n_workers)]
    start = threading.Barrier(n_workers + 1)
    done = threading.Event()

    def emit(index):
        emitter = emitters[index]
        start.wait()
        for n in range(per_worker):
            emitter.append(
                RecordKind.FLOW_ALLOWED, f"worker{index}", "sink",
                {"n": n},
            )

    def maintain():
        start.wait()
        while not done.is_set():
            spine.drain()
            spine.checkpoint()
            time.sleep(0.0005)

    threads = [
        threading.Thread(target=emit, args=(i,)) for i in range(n_workers)
    ]
    timer = threading.Thread(target=maintain)
    for thread in threads:
        thread.start()
    timer.start()
    for thread in threads:
        thread.join()
    done.set()
    timer.join()
    spine.drain()
    return emitters


class TestSpineConcurrent:
    def test_no_records_lost_under_concurrent_drain(self):
        spine = AuditSpine(name="audit@stress", ring_capacity=64)
        _run_concurrent(spine)

        assert spine.pending == 0
        assert len(spine) == N_WORKERS * PER_WORKER
        # Every worker's segment holds exactly its own emissions, in
        # emission order (single writer per ring).
        for i in range(N_WORKERS):
            seg = spine.segment(f"bus.w{i}")
            assert seg.total == PER_WORKER
            assert [r.detail["n"] for r in seg.records] == list(range(PER_WORKER))
            assert [r.actor for r in seg.records] == [f"worker{i}"] * PER_WORKER

    def test_seqs_unique_and_chains_verify(self):
        spine = AuditSpine(name="audit@stress", ring_capacity=32)
        _run_concurrent(spine)

        seqs = [r.seq for r in spine]
        assert len(seqs) == len(set(seqs)) == N_WORKERS * PER_WORKER
        assert sorted(seqs) == list(range(N_WORKERS * PER_WORKER))
        assert spine.verify()
        # The timer checkpointed mid-run; every retained checkpoint's
        # segment-head bindings must hold against the final chains.
        assert spine.stats_checkpoints >= 1
        spine.verify_strict()

    def test_ring_overflow_forces_inline_drain(self):
        spine = AuditSpine(name="audit@tiny", ring_capacity=8)
        emitter = bind_source(spine, "bus.w0")
        for n in range(100):
            emitter.append(RecordKind.FLOW_ALLOWED, "w0", "sink", {"n": n})
        assert spine.stats_ring_overflows >= 1
        spine.drain()
        assert len(spine) == 100
        assert spine.verify()


#: One emission: (worker index, payload int).
emissions = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 99)),
    min_size=1,
    max_size=120,
)


@settings(max_examples=15, deadline=None)
@given(emissions)
def test_concurrent_chains_equal_serialised_replay(plan):
    """Property: whatever interleaving the scheduler produced, replaying
    the captured stream serially (by seq) into a fresh spine yields
    byte-identical segment heads — concurrency changed nothing about
    the history that got chained."""
    spine = AuditSpine(name="audit@prop", ring_capacity=16)
    by_worker = {i: [n for w, n in plan if w == i] for i in range(4)}
    threads = [
        threading.Thread(
            target=lambda i=i: [
                spine.emit(
                    f"bus.w{i}", RecordKind.FLOW_ALLOWED,
                    f"worker{i}", "sink", {"n": n},
                )
                for n in by_worker[i]
            ]
        )
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    spine.drain()  # races the emitters on purpose
    for thread in threads:
        thread.join()
    spine.drain()

    captured = [
        (source, record)
        for source in spine.sources()
        for record in spine.segment(source).records
    ]
    captured.sort(key=lambda entry: entry[1].seq)
    assert [record.seq for __, record in captured] == list(range(len(plan)))

    # Serial replay in seq order: the fresh spine's counter reassigns the
    # same seqs, each source's ring receives its records in the same
    # relative order, so every segment chain must come out identical.
    replay = AuditSpine(name="audit@prop", ring_capacity=16)
    for source, record in captured:
        replay.emit(
            source, record.kind, record.actor, record.subject, record.detail
        )
    replay.drain()
    assert replay.segment_heads() == spine.segment_heads()
    assert replay.verify() and spine.verify()
