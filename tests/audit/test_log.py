"""Tamper-evident audit log (§8.3, Challenge 6)."""

import pytest

from repro.audit import AuditLog, RecordKind
from repro.errors import IntegrityViolation
from repro.ifc import SecurityContext


class TestAppendVerify:
    def test_empty_log_verifies(self, audit):
        assert audit.verify()
        assert len(audit) == 0

    def test_records_get_sequential_seq(self, audit):
        r1 = audit.flow_allowed("a", "b")
        r2 = audit.flow_denied("a", "c", "nope")
        assert (r1.seq, r2.seq) == (0, 1)

    def test_chain_verifies_after_appends(self, audit, ann_device):
        for i in range(50):
            audit.flow_allowed(f"src{i}", "dst", ann_device, ann_device)
        assert audit.verify()

    def test_tampering_with_record_detected(self, audit):
        audit.flow_allowed("a", "b")
        audit.flow_allowed("c", "d")
        record = audit.records()[0]
        object.__setattr__(record, "actor", "mallory")
        assert not audit.verify()
        with pytest.raises(IntegrityViolation):
            audit.verify_strict()

    def test_tampering_with_detail_detected(self, audit):
        record = audit.flow_denied("a", "b", "secret reason")
        record.detail["reason"] = "innocuous reason"
        assert not audit.verify()

    def test_clock_stamps_records(self, sim):
        log = AuditLog(clock=sim.now)
        sim.clock.advance(42.0)
        record = log.flow_allowed("a", "b")
        assert record.timestamp == 42.0


class TestRecordClassification:
    def test_context_change_classifies_declassification(self, audit):
        old = SecurityContext.of(["s"], [])
        new = SecurityContext.public()
        record = audit.context_change("e", old, new)
        assert record.kind == RecordKind.DECLASSIFICATION

    def test_context_change_classifies_endorsement(self, audit):
        old = SecurityContext.public()
        new = SecurityContext.of([], ["i"])
        record = audit.context_change("e", old, new)
        assert record.kind == RecordKind.ENDORSEMENT

    def test_plain_context_change(self, audit):
        old = SecurityContext.public()
        new = SecurityContext.of(["s"], [])
        record = audit.context_change("e", old, new)
        assert record.kind == RecordKind.CONTEXT_CHANGE

    def test_denial_flag(self, audit):
        assert audit.flow_denied("a", "b", "r").is_denial
        assert not audit.flow_allowed("a", "b").is_denial


class TestQueries:
    def _populate(self, audit):
        audit.flow_allowed("sensor", "analyser")
        audit.flow_denied("sensor", "portal", "secrecy")
        audit.reconfiguration("engine", "sensor", "map")
        audit.flow_allowed("analyser", "archive")

    def test_filter_by_kind(self, audit):
        self._populate(audit)
        assert len(audit.records(kind=RecordKind.FLOW_ALLOWED)) == 2

    def test_filter_by_actor_and_subject(self, audit):
        self._populate(audit)
        assert len(audit.records(actor="sensor")) == 2
        assert len(audit.records(subject="archive")) == 1

    def test_filter_by_time_window(self, sim):
        log = AuditLog(clock=sim.now)
        log.flow_allowed("a", "b")
        sim.clock.advance(10.0)
        log.flow_allowed("c", "d")
        assert len(log.records(since=5.0)) == 1
        assert len(log.records(until=5.0)) == 1

    def test_denials_listing(self, audit):
        self._populate(audit)
        denials = audit.denials()
        assert len(denials) == 1
        assert denials[0].subject == "portal"


class TestPruneAndExport:
    def test_prune_keeps_chain_verifiable(self, sim):
        log = AuditLog(clock=sim.now)
        for i in range(10):
            log.flow_allowed(f"a{i}", "b")
            sim.clock.advance(1.0)
        pruned = log.prune_before(5.0)
        assert pruned == 5
        assert len(log) == 5
        assert log.verify()

    def test_prune_nothing(self, audit):
        audit.flow_allowed("a", "b")
        assert audit.prune_before(0.0) == 0

    def test_sequence_numbers_survive_prune(self, sim):
        log = AuditLog(clock=sim.now)
        for i in range(4):
            log.flow_allowed(f"a{i}", "b")
            sim.clock.advance(1.0)
        log.prune_before(2.0)
        assert log.records()[0].seq == 2
        # appends continue the numbering
        record = log.flow_allowed("new", "b")
        assert record.seq == 4

    def test_export_pairs_records_with_digests(self, audit):
        audit.flow_allowed("a", "b")
        audit.flow_allowed("c", "d")
        exported = audit.export()
        assert len(exported) == 2
        assert exported[1]["digest"] == audit.head_digest


class TestCanonicalEncoding:
    """canonical() assembles from memoised fragments; it must stay
    byte-identical to the reference sorted-keys json.dumps form, since
    chain digests and cold spill files store exactly those bytes."""

    def _reference(self, record):
        import json

        from repro.audit.records import _context_dict

        body = {
            "seq": record.seq,
            "timestamp": record.timestamp,
            "kind": record.kind.value,
            "actor": record.actor,
            "subject": record.subject,
            "detail": record.detail,
            "source_context": _context_dict(record.source_context),
            "target_context": _context_dict(record.target_context),
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    def test_canonical_matches_reference_encoding(self, audit):
        ctx = SecurityContext.of(["medical", "home:tv"], ["vendor"])
        records = [
            audit.flow_allowed("a", "b", ctx, ctx),
            audit.flow_denied("ünïcode", "d", "no — denied", ctx, None),
            audit.append(
                RecordKind.CUSTOM,
                "actor",
                detail={"z": [1, 2.5], "a": {"nested": None, "ok": True}},
            ),
        ]
        for record in records:
            assert record.canonical() == self._reference(record)

    def test_canonical_round_trips(self, audit):
        from repro.audit.records import AuditRecord

        ctx = SecurityContext.of(["s1", "s2"], ["i1"])
        record = audit.flow_allowed("a", "b", ctx, ctx)
        rebuilt = AuditRecord.from_canonical(record.canonical())
        assert rebuilt.canonical() == record.canonical()
