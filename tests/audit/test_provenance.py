"""Provenance graphs and forensic queries (Fig. 11)."""

import pytest

from repro.audit import (
    AuditLog,
    EdgeKind,
    NodeKind,
    ProvenanceGraph,
    RecordKind,
    graph_from_log,
)


@pytest.fixture
def fig11_graph() -> ProvenanceGraph:
    """The Fig. 11 fragment: F1..F4, P1..P2, A1..A2."""
    graph = ProvenanceGraph()
    for f in ("F1", "F2", "F3", "F4"):
        graph.add_data(f)
    graph.add_process("P1")
    graph.add_process("P2")
    graph.add_agent("A1")
    graph.add_agent("A2")
    graph.add_flow("F1", "P1", timestamp=1.0)
    graph.add_flow("F2", "P1", timestamp=2.0)
    graph.add_flow("P1", "F3", timestamp=3.0)
    graph.add_flow("F3", "P2", timestamp=4.0)
    graph.add_flow("P2", "F4", timestamp=5.0)
    graph.add_control("A1", "P1")
    graph.add_control("A2", "P2")
    return graph


class TestGraphModel:
    def test_node_kinds(self, fig11_graph):
        assert fig11_graph.node_kind("F1") == NodeKind.DATA
        assert fig11_graph.node_kind("P1") == NodeKind.PROCESS
        assert fig11_graph.node_kind("A1") == NodeKind.AGENT
        assert fig11_graph.node_kind("ghost") is None

    def test_stats(self, fig11_graph):
        stats = fig11_graph.stats()
        assert stats["nodes"] == 8
        assert stats["data"] == 4
        assert stats["process"] == 2
        assert stats["agent"] == 2

    def test_control_edges_not_flows(self, fig11_graph):
        # A1 controls P1 but information did not flow A1 -> P1.
        assert "P1" not in fig11_graph.descendants("A1")
        assert fig11_graph.controllers_of("P1") == {"A1"}


class TestForensics:
    def test_ancestry(self, fig11_graph):
        assert fig11_graph.ancestry("F4") == {"F1", "F2", "F3", "P1", "P2"}

    def test_descendants_taint(self, fig11_graph):
        assert fig11_graph.descendants("F1") == {"P1", "F3", "P2", "F4"}

    def test_paths_between(self, fig11_graph):
        paths = fig11_graph.paths_between("F1", "F4")
        assert paths == [["F1", "P1", "F3", "P2", "F4"]]

    def test_leak_investigation_positive(self, fig11_graph):
        result = fig11_graph.investigate_leak("F1", {"P2", "unrelated"})
        assert result.nodes == {"P2"}
        assert result.paths[0][0] == "F1"
        assert result.paths[0][-1] == "P2"

    def test_leak_investigation_clean(self, fig11_graph):
        result = fig11_graph.investigate_leak("F4", {"P1"})
        assert result.nodes == set()
        assert result.paths == []

    def test_unknown_nodes_return_empty(self, fig11_graph):
        assert fig11_graph.ancestry("nope") == set()
        assert fig11_graph.descendants("nope") == set()
        assert fig11_graph.paths_between("nope", "F1") == []


class TestGraphFromLog:
    def test_allowed_flows_become_edges(self, audit):
        audit.flow_allowed("sensor", "analyser")
        audit.flow_allowed("analyser", "archive")
        graph = graph_from_log(audit)
        assert "archive" in graph.descendants("sensor")

    def test_denied_flows_are_not_edges_but_annotated(self, audit):
        audit.flow_denied("sensor", "portal", "secrecy")
        graph = graph_from_log(audit)
        assert "portal" not in graph.descendants("sensor")
        attempts = graph.graph.nodes["sensor"].get("denied_attempts")
        assert attempts and attempts[0][1] == "portal"

    def test_context_changes_annotate_nodes(self, audit, ann_device):
        from repro.ifc import SecurityContext

        audit.context_change(
            "anonymiser", ann_device, SecurityContext.of(["stats"], [])
        )
        graph = graph_from_log(audit)
        changes = graph.graph.nodes["anonymiser"].get("context_changes")
        assert changes is not None

    def test_entity_creation_edges(self, audit):
        audit.append(RecordKind.ENTITY_CREATED, "proc", "file")
        graph = graph_from_log(audit)
        assert "file" in graph.descendants("proc")

    def test_derivation_edges_count_for_taint(self):
        graph = ProvenanceGraph()
        graph.add_data("raw")
        graph.add_data("derived")
        graph.add_derivation("raw", "derived")
        assert "derived" in graph.descendants("raw")
