"""Real-thread stress of parallel deep verification.

The verification plane's claim (``docs/audit_storage.md``): a
``verify_strict(deep=True, workers=N)`` fan-out runs entirely under the
maintenance lock, so emitters may stage records and timer threads may
drain/checkpoint/demote while a parallel sweep is in flight — the sweep
checks a consistent frozen history, the worker pool only touches
immutable sealed/cold chunks, and nothing the racers do can make a
clean chain fail (or a verified pass miss the records that were already
committed when it started).
"""

import threading
import time

import pytest

from repro.audit import AuditSpine, RecordKind
from repro.audit.spine import bind_source
from repro.sim import Simulator

pytestmark = pytest.mark.concurrency

N_EMITTERS = 8
PER_EMITTER = 300


def _race(spine, verify, n_emitters=N_EMITTERS, per_emitter=PER_EMITTER):
    """n_emitters emitter threads + a drain timer, racing ``verify()``
    (run repeatedly on the main thread until the emitters finish).
    Returns the verify passes' results."""
    emitters = [bind_source(spine, f"bus.w{i}") for i in range(n_emitters)]
    start = threading.Barrier(n_emitters + 2)
    done = threading.Event()

    def emit(index):
        emitter = emitters[index]
        start.wait()
        for n in range(per_emitter):
            emitter.append(
                RecordKind.FLOW_ALLOWED, f"worker{index}", "sink", {"n": n}
            )

    def maintain():
        start.wait()
        while not done.is_set():
            spine.drain()
            spine.checkpoint()
            time.sleep(0.0005)

    threads = [
        threading.Thread(target=emit, args=(i,)) for i in range(n_emitters)
    ]
    timer = threading.Thread(target=maintain)
    for thread in threads:
        thread.start()
    timer.start()
    start.wait()

    results = []
    while any(t.is_alive() for t in threads):
        results.append(verify())
    for thread in threads:
        thread.join()
    done.set()
    timer.join()
    spine.drain()
    results.append(verify())
    return results


class TestParallelVerifyUnderRacers:
    def test_parallel_deep_verify_racing_emitters(self, tmp_path):
        sim = Simulator()
        spine = AuditSpine(
            clock=sim.now, name="audit@race", ring_capacity=64
        )
        spine.configure_spill(tmp_path, hot_segments=1, seal_every=64)

        stats = _race(
            spine,
            lambda: spine.verify_strict(deep=True, workers=4),
        )
        assert len(stats) >= 1  # every pass returned (none raised)
        assert spine.pending == 0
        assert len(spine) == N_EMITTERS * PER_EMITTER
        assert spine.tier_stats()["cold_segments"] >= 1
        # The final pass covered the whole committed history.
        assert stats[-1].records_verified == N_EMITTERS * PER_EMITTER
        assert stats[-1].segments_skipped == 0

    def test_incremental_verify_racing_emitters_and_demotes(self, tmp_path):
        sim = Simulator()
        spine = AuditSpine(
            clock=sim.now, name="audit@race", ring_capacity=64
        )
        spine.configure_spill(tmp_path, hot_segments=1, seal_every=64)

        def step():
            sim.clock.advance(1.0)
            spine.demote_before(sim.now() - 2.0)
            return spine.verify_strict(deep=False, workers=4)

        stats = _race(spine, step)
        assert len(stats) >= 1
        assert spine.verify(mode="deep", workers=4)
        assert spine.verify(mode="incremental")
        # Cumulative accounting kept pace with every pass.
        assert spine.verify_stats()["verifies"] >= len(stats)
