"""The verification plane: incremental vs deep modes, watermark
cursors, parallel deep sweeps, checkpoint-binding watermarks, and the
consumers that ride them (see the verification-modes section of
docs/audit_storage.md).

The correctness heart is the invalidation rule: any anchor or in-memory
mutation, prune, rebase, re-demote, or spill-file change drops the
watermark — so every tamper class the deep mode catches, the
incremental mode catches too.  The hypothesis property at the bottom
pins exactly that: incremental accepts exactly the histories deep
accepts, under random interleavings of append/drain/seal/demote/prune/
tamper, with tamper injected both before and after a successful verify.
"""

import shutil
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import (
    AuditCollector,
    AuditSpine,
    CheckpointClaim,
    FederationPinboard,
    RecordKind,
    VerifyStats,
)
from repro.audit.log import AuditLog
from repro.errors import IntegrityViolation
from repro.ifc import SecurityContext
from repro.sim import Simulator

CTX = SecurityContext.of(["medical", "ann"], ["hosp-dev"])

#: The racy-stat margin (storage._STAT_MARGIN_NS) plus slack: a
#: watermark is only recorded once the spill file's mtime is safely in
#: the past, so tests sleep this long between demotion and the verify
#: pass that should establish watermarks.
SETTLE = 0.06


def make_spine(**kw):
    sim = Simulator()
    spine = AuditSpine(clock=sim.now, name="audit@test", **kw)
    return sim, spine


def fill(sim, spine, n, source="bus", step=1.0):
    for i in range(n):
        spine.emit(
            source, RecordKind.FLOW_ALLOWED, f"actor{i % 4}", "subj",
            {"i": i}, CTX, CTX,
        )
        sim.clock.advance(step)
    spine.drain()


def cold_spine(tmp_path, n=24, seal_every=8, hot_segments=0):
    sim, spine = make_spine()
    spine.configure_spill(
        tmp_path, hot_segments=hot_segments, seal_every=seal_every
    )
    fill(sim, spine, n)
    assert spine.tier_stats()["cold_segments"] >= 2
    return sim, spine


def settle_and_watermark(spine):
    """Let spill-file mtimes age past the racy-stat margin, then run one
    incremental pass to establish watermarks."""
    time.sleep(SETTLE)
    stats = spine.verify_strict(deep=False)
    assert spine.tier_stats()["watermarked_segments"] > 0
    return stats


class TestWatermarkCursors:
    def test_second_incremental_pass_skips_cold_segments(self, tmp_path):
        __, spine = cold_spine(tmp_path)
        first = settle_and_watermark(spine)
        assert first.segments_skipped == 0
        assert first.cold_verified >= 2
        second = spine.verify_strict(deep=False)
        assert second.mode == "incremental"
        assert second.segments_skipped == first.cold_verified
        assert second.watermark_hits == second.segments_skipped
        assert second.cold_verified == 0
        assert second.records_verified < first.records_verified

    def test_deep_mode_never_skips(self, tmp_path):
        __, spine = cold_spine(tmp_path)
        settle_and_watermark(spine)
        deep = spine.verify_strict(deep=True)
        assert deep.mode == "deep"
        assert deep.segments_skipped == 0
        assert deep.cold_verified >= 2
        assert deep.bytes_hashed > 0

    def test_watermark_not_recorded_inside_stat_margin(self, tmp_path):
        # A verify racing the demotion (file mtime within the margin of
        # "now") must NOT record a watermark: a tamper landing in the
        # same timestamp granule would otherwise be invisible.  This is
        # the git "racily clean" defence.
        __, spine = cold_spine(tmp_path)
        spine.verify_strict(deep=False)  # no sleep: files are fresh
        assert spine.tier_stats()["watermarked_segments"] == 0

    def test_new_records_still_verified_after_watermark(self, tmp_path):
        sim, spine = cold_spine(tmp_path)
        settle_and_watermark(spine)
        fill(sim, spine, 10)
        stats = spine.verify_strict(deep=False)
        # The new tail (and any newly sealed chunk) is re-verified even
        # though the old cold history is skipped.
        assert stats.records_verified >= 10
        assert stats.segments_skipped >= 2

    def test_prune_invalidates_the_straddled_watermark(self, tmp_path):
        __, spine = cold_spine(tmp_path, n=30, seal_every=10)
        settle_and_watermark(spine)
        before = spine.tier_stats()["watermarked_segments"]
        spine.prune_before(13.0)  # mid-second-chunk: rewrite + rebase
        stats = spine.tier_stats()
        assert stats["watermarked_segments"] < before
        assert spine.verify(mode="incremental")
        assert spine.verify(mode="deep")

    def test_rewrite_and_redemote_drop_the_watermark(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=2, seal_every=8)
        fill(sim, spine, 16)
        chunk = spine._store.sealed["bus"][0]
        assert not chunk.is_cold
        spine.demote_before(9.0)
        assert chunk.is_cold
        time.sleep(SETTLE)
        spine.verify_strict(deep=False)
        assert chunk.watermarked
        # Idempotent demote of an already-cold chunk rewrites nothing:
        # the cursor legitimately survives.
        chunk.demote(tmp_path)
        assert chunk.watermarked
        # A cold rewrite (prefix prune rebases and respills) must not.
        chunk.prune_prefix(2)
        assert not chunk.watermarked

    def test_in_memory_anchor_tamper_invalidates(self, tmp_path):
        __, spine = cold_spine(tmp_path)
        settle_and_watermark(spine)
        chunk = spine._store.sealed["bus"][0]
        assert chunk.watermark_valid()
        chunk.head = "f" * 64  # the authoritative in-memory anchor
        assert not chunk.watermark_valid()
        assert not spine.verify(mode="incremental")
        assert not spine.verify(mode="deep")

    def test_verify_stats_rollup_surface(self, tmp_path):
        __, spine = cold_spine(tmp_path)
        settle_and_watermark(spine)
        spine.verify_strict(deep=False)
        rollup = spine.verify_stats()
        assert rollup["verifies"] == spine.stats_verifies == 2
        assert rollup["watermark_hits"] > 0
        assert rollup["last"]["mode"] == "incremental"
        assert isinstance(spine.last_verify_stats, VerifyStats)
        assert spine.last_verify_stats.to_dict() == rollup["last"]

    def test_mode_strings_validated(self, tmp_path):
        __, spine = make_spine()
        with pytest.raises(ValueError):
            spine.verify(mode="shallow")
        log = AuditLog(name="flat")
        with pytest.raises(ValueError):
            log.verify(mode="shallow")
        assert log.verify(mode="incremental")  # accepted, full recompute


TAMPERS = {
    "record_slot": lambda p: p.write_bytes(
        _rreplace(p.read_bytes(), b'"subj"', b'"EVIL"')
    ),
    "header": lambda p: p.write_bytes(
        p.read_bytes().replace(b'"actor0"', b'"actorX"', 1)
    ),
    "truncate": lambda p: p.write_bytes(p.read_bytes()[:40]),
    "missing_file": lambda p: p.unlink(),
}


def _rreplace(blob, old, new):
    at = blob.rfind(old)
    assert at > 0
    return blob[:at] + new + blob[at + len(old):]


class TestEveryTamperClassFlipsBothModes:
    @pytest.mark.parametrize("mode", ["incremental", "deep"])
    @pytest.mark.parametrize("tamper", sorted(TAMPERS))
    def test_cold_tamper_after_watermark(self, tmp_path, mode, tamper):
        # The adversarial shape watermarks must survive: verify
        # succeeds (watermarks established), THEN the file is tampered.
        __, spine = cold_spine(tmp_path)
        settle_and_watermark(spine)
        TAMPERS[tamper](sorted(tmp_path.glob("*.seg"))[0])
        assert not spine.verify(mode=mode)
        with pytest.raises(IntegrityViolation):
            spine.verify_strict(deep=(mode == "deep"))

    @pytest.mark.parametrize("mode", ["incremental", "deep"])
    def test_post_drain_record_mutation(self, tmp_path, mode):
        sim, spine = cold_spine(tmp_path, hot_segments=1)
        settle_and_watermark(spine)
        fill(sim, spine, 3)  # a fresh, chained, hot tail
        # Hot state is never watermarked: mutate a chained hot record.
        spine._store.tails["bus"].records[-1].detail["i"] = 999_999
        assert not spine.verify(mode=mode)

    @pytest.mark.parametrize("mode", ["incremental", "deep"])
    def test_checkpoint_record_tamper(self, tmp_path, mode):
        __, spine = cold_spine(tmp_path)
        spine.checkpoint()
        settle_and_watermark(spine)
        spine._ckpt.records[-1].detail["heads"]["bus"] = "f" * 64
        assert not spine.verify(mode=mode)

    @pytest.mark.parametrize("mode", ["incremental", "deep"])
    def test_segment_truncated_below_checkpoint(self, tmp_path, mode):
        sim, spine = cold_spine(tmp_path)
        settle_and_watermark(spine)
        fill(sim, spine, 3)
        spine.checkpoint()  # pins the head past the new records
        # Shed the newest history wholesale: drop the tail's records
        # below the checkpointed position.
        tail = spine._store.tails["bus"]
        tail.records = tail.records[:0]
        tail.digests = tail.digests[:0]
        if tail.canonicals is not None:
            tail.canonicals = tail.canonicals[:0]
        assert not spine.verify(mode=mode)


class TestParallelDeep:
    def test_parallel_equals_serial(self, tmp_path):
        __, spine = cold_spine(tmp_path, n=40, seal_every=8)
        serial = spine.verify_strict(deep=True, workers=1)
        fanned = spine.verify_strict(deep=True, workers=8)
        assert fanned.workers == 8
        assert fanned.segments_verified == serial.segments_verified
        assert fanned.records_verified == serial.records_verified
        assert fanned.bytes_hashed == serial.bytes_hashed

    @pytest.mark.parametrize("tamper", sorted(TAMPERS))
    def test_parallel_still_detects_tamper(self, tmp_path, tamper):
        __, spine = cold_spine(tmp_path, n=40, seal_every=8)
        TAMPERS[tamper](sorted(tmp_path.glob("*.seg"))[1])
        assert not spine.verify(mode="deep", workers=8)
        with pytest.raises(IntegrityViolation):
            spine.verify_strict(deep=True, workers=8)

    def test_incremental_accepts_workers_knob(self, tmp_path):
        __, spine = cold_spine(tmp_path)
        time.sleep(SETTLE)
        stats = spine.verify_strict(deep=False, workers=4)
        assert stats.workers == 4
        assert spine.verify(mode="incremental", workers=4)


class TestCheckpointBindingWatermark:
    def test_only_new_checkpoints_rewalked(self, tmp_path):
        sim, spine = cold_spine(tmp_path)
        spine.checkpoint()
        first = settle_and_watermark(spine)
        assert first.checkpoints_verified >= 1
        assert first.checkpoints_skipped == 0
        fill(sim, spine, 8)
        spine.checkpoint()
        second = spine.verify_strict(deep=False)
        assert second.checkpoints_skipped >= 1
        assert second.checkpoints_verified >= 1
        deep = spine.verify_strict(deep=True)
        assert deep.checkpoints_skipped == 0
        assert deep.checkpoints_total == deep.checkpoints_verified

    def test_prune_resets_the_binding_watermark(self, tmp_path):
        sim, spine = cold_spine(tmp_path)
        spine.checkpoint()
        settle_and_watermark(spine)
        fill(sim, spine, 4)
        spine.checkpoint()
        spine.prune_before(5.0)
        stats = spine.verify_strict(deep=False)
        # Post-prune, every retained binding is re-walked.
        assert stats.checkpoints_skipped == 0


class TestConsumers:
    def test_collector_incremental_accepts_and_rejects(self, tmp_path):
        __, spine = cold_spine(tmp_path)
        settle_and_watermark(spine)
        collector = AuditCollector(verify_mode="incremental")
        assert collector.submit("alpha", spine) is not None
        TAMPERS["record_slot"](sorted(tmp_path.glob("*.seg"))[0])
        assert collector.submit("alpha", spine) is None
        assert "alpha" in collector.rejected_domains

    def test_collector_falls_back_for_plain_verify_sinks(self):
        class LegacySink(AuditLog):
            def verify(self):  # pre-verification-plane signature
                return super().verify()

        log = LegacySink(name="legacy")
        log.flow_allowed("a", "b", CTX, CTX)
        collector = AuditCollector()
        assert collector.submit("legacy", log) is not None

    def test_pinboard_local_check_catches_cold_tamper(self, tmp_path):
        # Pin comparison alone only sees the (in-memory) checkpoint
        # chain: a record tampered on disk behind an intact checkpoint
        # head still compares "ok".  mode="incremental" adds the local
        # watermark-aware chain check, which demotes it to "tampered".
        __, spine = cold_spine(tmp_path)
        board = FederationPinboard("observer")
        board.pin(CheckpointClaim.of("alpha", spine))
        settle_and_watermark(spine)
        TAMPERS["record_slot"](sorted(tmp_path.glob("*.seg"))[0])
        assert board.verify({"alpha": spine})["alpha"] == "ok"
        verdicts = board.verify({"alpha": spine}, mode="incremental")
        assert verdicts["alpha"] == "tampered"
        assert board.verify({"alpha": spine}, mode="deep")["alpha"] == \
            "tampered"

    def test_pinboard_default_semantics_unchanged(self, tmp_path):
        __, spine = cold_spine(tmp_path)
        board = FederationPinboard("observer")
        board.pin(CheckpointClaim.of("alpha", spine))
        assert board.verify({"alpha": spine}) == {"alpha": "ok"}


#: One step of a random history: (op, payload).
_OPS = st.lists(
    st.sampled_from([
        "append", "drain", "checkpoint", "demote", "prune",
        "verify", "tamper_disk", "tamper_memory",
    ]),
    min_size=3,
    max_size=14,
)


@settings(max_examples=30, deadline=None)
@given(_OPS)
def test_incremental_accepts_exactly_what_deep_accepts(ops):
    """Property: after ANY interleaving of lifecycle and tamper ops —
    including tampers injected after a successful (watermark-noting)
    verify — the incremental verdict equals the deep verdict.

    Incremental runs first, so a stale watermark wrongly honoured would
    show up as incremental=True / deep=False."""
    workdir = Path(tempfile.mkdtemp(prefix="verify-prop-"))
    try:
        sim, spine = make_spine()
        spine.configure_spill(workdir, hot_segments=1, seal_every=4)
        fill(sim, spine, 6)
        for op in ops:
            if op == "append":
                fill(sim, spine, 3)
            elif op == "drain":
                spine.drain()
            elif op == "checkpoint":
                spine.checkpoint()
            elif op == "demote":
                spine.demote_before(sim.now())
            elif op == "prune":
                spine.prune_before(sim.now() - 6.0)
            elif op == "verify":
                time.sleep(SETTLE)  # let watermarks establish
                spine.verify(mode="incremental")
            elif op == "tamper_disk":
                files = sorted(workdir.glob("*.seg"))
                if files:
                    blob = files[0].read_bytes()
                    if blob.rfind(b'"subj"') > 0:
                        files[0].write_bytes(
                            _rreplace(blob, b'"subj"', b'"EVIL"')
                        )
            elif op == "tamper_memory":
                tail = spine._store.tails["bus"]
                if tail.records:
                    tail.records[-1].detail["i"] = 999_999
        incremental = spine.verify(mode="incremental")
        deep = spine.verify(mode="deep")
        assert incremental == deep
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
