"""Buffered audit appends: chunked hash-chaining must preserve the
``verify()`` contract, including across ``prune_before`` interleavings."""

from repro.audit.log import AuditLog, GENESIS_DIGEST
from repro.audit.records import RecordKind
from repro.errors import IntegrityViolation

import pytest


def _fill(log, n, t0=0.0):
    for i in range(n):
        log._clock = (lambda ts: (lambda: ts))(t0 + i)
        log.append(RecordKind.FLOW_ALLOWED, f"actor{i}", "subject")


class TestBufferedAppend:
    def test_records_visible_before_flush(self):
        log = AuditLog(buffer_size=16)
        _fill(log, 5)
        assert len(log) == 5
        assert log.pending == 5
        assert [r.actor for r in log][:2] == ["actor0", "actor1"]

    def test_auto_flush_at_buffer_size(self):
        log = AuditLog(buffer_size=4)
        _fill(log, 4)
        assert log.pending == 0

    def test_verify_flushes_and_matches_unbuffered_chain(self):
        buffered = AuditLog(buffer_size=64)
        plain = AuditLog()
        _fill(buffered, 10)
        _fill(plain, 10)
        assert buffered.verify()
        assert buffered.head_digest == plain.head_digest

    def test_flush_returns_count_and_is_idempotent(self):
        log = AuditLog(buffer_size=64)
        _fill(log, 7)
        assert log.flush() == 7
        assert log.flush() == 0
        assert log.verify()

    def test_unbuffered_log_has_no_pending(self):
        log = AuditLog()
        _fill(log, 3)
        assert log.pending == 0
        assert log.verify()

    def test_tamper_detected_after_buffered_appends(self):
        log = AuditLog(buffer_size=8)
        _fill(log, 8)
        object.__setattr__(log._records[3], "actor", "mallory")
        assert not log.verify()
        with pytest.raises(IntegrityViolation):
            log.verify_strict()

    def test_mutation_before_first_flush_is_detected(self):
        """Regression: digest material is snapshotted at append time, so
        a pending record mutated before its first flush is chained as
        appended — and the mutation breaks verification — instead of
        being silently chained as mutated."""
        log = AuditLog(buffer_size=100)
        record = log.append(RecordKind.FLOW_ALLOWED, "alice", "bob")
        assert log.pending == 1
        object.__setattr__(record, "actor", "mallory")
        log.flush()
        assert not log.verify()
        with pytest.raises(IntegrityViolation):
            log.verify_strict()

    def test_detail_mutation_before_first_flush_is_detected(self):
        log = AuditLog(buffer_size=100)
        record = log.append(
            RecordKind.FLOW_ALLOWED, "alice", "bob", {"rows": 1}
        )
        record.detail["rows"] = 999  # detail dicts are reachable-mutable
        assert not log.verify()


class TestPruneBufferInterleave:
    """Regression: prune_before on a log with pending buffered appends
    must flush first so the retained suffix still authenticates."""

    def test_prune_with_pending_appends_then_verify(self):
        log = AuditLog(buffer_size=100)
        _fill(log, 10, t0=0.0)
        assert log.pending == 10
        pruned = log.prune_before(5.0)
        assert pruned == 5
        assert len(log) == 5
        assert log.pending == 0
        assert log.verify()

    def test_append_prune_append_interleave(self):
        log = AuditLog(buffer_size=100)
        _fill(log, 6, t0=0.0)
        log.prune_before(3.0)
        _fill(log, 6, t0=10.0)
        assert log.pending == 6
        log.prune_before(12.0)
        assert log.verify()
        # seq numbering stays continuous across prunes and buffers
        assert [r.seq for r in log] == list(range(8, 12))

    def test_pruned_chain_base_is_real_digest(self):
        log = AuditLog(buffer_size=100)
        _fill(log, 4, t0=0.0)
        log.prune_before(2.0)
        assert log._base_digest != GENESIS_DIGEST
        assert log.verify()

    def test_export_after_buffered_prune_interleave(self):
        log = AuditLog(buffer_size=100)
        _fill(log, 4, t0=0.0)
        log.prune_before(1.0)
        _fill(log, 2, t0=5.0)
        exported = log.export()
        assert len(exported) == 5
        assert all(e["digest"] for e in exported)
