"""Compliance checkers and report generation (Fig. 1's feedback loop)."""

import pytest

from repro.audit import (
    AuditLog,
    ComplianceAuditor,
    Finding,
    all_accesses_consented,
    declassification_precedes_flows,
    denial_rate_below,
    no_flows_to,
)
from repro.ifc import SecurityContext


class TestNoFlowsTo:
    def test_clean_deployment_passes(self, audit):
        audit.flow_allowed("eu-sensor", "eu-store")
        auditor = ComplianceAuditor()
        auditor.register(no_flows_to({"us-store"}, {"eu-sensor"}, "residency"))
        report = auditor.run(audit)
        assert report.compliant

    def test_direct_violation_caught(self, audit):
        audit.flow_allowed("eu-sensor", "us-store")
        auditor = ComplianceAuditor()
        auditor.register(no_flows_to({"us-store"}, {"eu-sensor"}, "residency"))
        report = auditor.run(audit)
        assert not report.compliant
        assert "us-store" in report.failures()[0].explanation

    def test_transitive_violation_caught(self, audit):
        audit.flow_allowed("eu-sensor", "relay")
        audit.flow_allowed("relay", "us-store")
        auditor = ComplianceAuditor()
        auditor.register(no_flows_to({"us-store"}, {"eu-sensor"}, "residency"))
        assert not auditor.run(audit).compliant


class TestDeclassificationOrder:
    def test_release_after_declassification_ok(self, sim):
        log = AuditLog(clock=sim.now)
        secret = SecurityContext.of(["medical"], [])
        public = SecurityContext.of(["stats"], [])
        log.context_change("generator", secret, public)
        sim.clock.advance(1.0)
        log.flow_allowed("generator", "manager")
        auditor = ComplianceAuditor()
        auditor.register(
            declassification_precedes_flows("generator", "manager", "anon-first")
        )
        assert auditor.run(log).compliant

    def test_release_without_declassification_fails(self, audit):
        audit.flow_allowed("generator", "manager")
        auditor = ComplianceAuditor()
        auditor.register(
            declassification_precedes_flows("generator", "manager", "anon-first")
        )
        report = auditor.run(audit)
        assert not report.compliant
        assert report.failures()[0].evidence  # names the offending records


class TestDenialRate:
    def test_below_threshold_passes(self, audit):
        for __ in range(99):
            audit.flow_allowed("a", "b")
        audit.flow_denied("a", "c", "r")
        auditor = ComplianceAuditor()
        auditor.register(denial_rate_below(0.05, "policy agreement"))
        assert auditor.run(audit).compliant

    def test_above_threshold_fails(self, audit):
        audit.flow_allowed("a", "b")
        audit.flow_denied("a", "c", "r")
        auditor = ComplianceAuditor()
        auditor.register(denial_rate_below(0.10, "policy agreement"))
        report = auditor.run(audit)
        assert not report.compliant
        assert "50.0%" in report.failures()[0].explanation

    def test_empty_log_is_compliant(self, audit):
        auditor = ComplianceAuditor()
        auditor.register(denial_rate_below(0.0, "x"))
        assert auditor.run(audit).compliant


class TestConsent:
    def test_sensitive_flow_with_consent_ok(self, audit):
        ctx = SecurityContext.of(["medical"], ["consent"])
        audit.flow_allowed("sensor", "analyser", ctx, ctx)
        auditor = ComplianceAuditor()
        auditor.register(all_accesses_consented("consent", "consent"))
        assert auditor.run(audit).compliant

    def test_sensitive_flow_without_consent_fails(self, audit):
        ctx = SecurityContext.of(["medical"], [])
        audit.flow_allowed("sensor", "analyser", ctx, ctx)
        auditor = ComplianceAuditor()
        auditor.register(all_accesses_consented("consent", "consent"))
        assert not auditor.run(audit).compliant

    def test_non_sensitive_flows_exempt(self, audit):
        audit.flow_allowed(
            "weather", "portal", SecurityContext.public(), SecurityContext.public()
        )
        auditor = ComplianceAuditor()
        auditor.register(all_accesses_consented("consent", "consent"))
        assert auditor.run(audit).compliant


class TestReport:
    def test_tampered_log_never_compliant(self, audit):
        audit.flow_allowed("a", "b")
        record = audit.records()[0]
        object.__setattr__(record, "actor", "mallory")
        auditor = ComplianceAuditor()
        report = auditor.run(audit)
        assert not report.log_verified
        assert not report.compliant

    def test_summary_lists_failures(self, audit):
        audit.flow_allowed("eu", "us")
        auditor = ComplianceAuditor()
        auditor.register(no_flows_to({"us"}, {"eu"}, "residency"))
        summary = auditor.run(audit).summary()
        assert "NON-COMPLIANT" in summary
        assert "residency" in summary

    def test_compliant_summary(self, audit):
        auditor = ComplianceAuditor()
        auditor.register(denial_rate_below(1.0, "x"))
        assert "COMPLIANT" in auditor.run(audit).summary()
