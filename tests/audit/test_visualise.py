"""DOT and text rendering of provenance graphs (§8.3)."""

import pytest

from repro.audit import AuditLog, ProvenanceGraph, graph_from_log, to_dot, to_text_tree


@pytest.fixture
def small_graph() -> ProvenanceGraph:
    graph = ProvenanceGraph()
    graph.add_data("F1")
    graph.add_process("P1")
    graph.add_agent("A1")
    graph.add_flow("F1", "P1", timestamp=3.0)
    graph.add_control("A1", "P1")
    return graph


class TestDot:
    def test_shapes_follow_fig11_legend(self, small_graph):
        dot = to_dot(small_graph)
        assert 'shape=box' in dot          # data
        assert 'shape=ellipse' in dot      # process
        assert 'shape=diamond' in dot      # agent
        assert dot.startswith('digraph')
        assert dot.rstrip().endswith('}')

    def test_control_edges_dashed(self, small_graph):
        dot = to_dot(small_graph)
        assert 'style="dashed"' in dot

    def test_flow_edges_carry_timestamps(self, small_graph):
        assert 't=3' in to_dot(small_graph)

    def test_highlight_and_denials_marked(self):
        log = AuditLog()
        log.flow_allowed("sensor", "db")
        log.flow_denied("sensor", "portal", "secrecy")
        graph = graph_from_log(log)
        dot = to_dot(graph, highlight={"db"})
        assert 'fillcolor="khaki"' in dot
        assert 'color="red"' in dot

    def test_quoting_of_odd_names(self):
        graph = ProvenanceGraph()
        graph.add_data('weird "name"')
        dot = to_dot(graph)
        assert '\\"name\\"' in dot


class TestTextTree:
    def test_tree_spreads_downstream(self):
        log = AuditLog()
        log.flow_allowed("a", "b")
        log.flow_allowed("b", "c")
        log.flow_allowed("b", "d")
        tree = to_text_tree(graph_from_log(log), "a")
        lines = tree.splitlines()
        assert lines[0] == "a"
        assert any("-> b" in line for line in lines)
        assert any("-> c" in line for line in lines)
        assert any("-> d" in line for line in lines)

    def test_cycles_marked_not_expanded(self):
        graph = ProvenanceGraph()
        graph.add_flow("a", "b")
        graph.add_flow("b", "a")
        tree = to_text_tree(graph, "a")
        assert "(seen)" in tree

    def test_depth_bounded(self):
        graph = ProvenanceGraph()
        for i in range(10):
            graph.add_flow(f"n{i}", f"n{i+1}")
        tree = to_text_tree(graph, "n0", max_depth=3)
        assert "n3" in tree
        assert "n9" not in tree
