"""The audit-query plane: AuditQuery over tiered spines and flat logs,
index-probe accounting, and the tiered ≡ flat equivalence property
(see docs/audit_storage.md)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import (
    AuditLog,
    AuditQuery,
    AuditSpine,
    ComplianceAuditor,
    RecordKind,
    denial_rate_below,
    no_flows_to,
    record_matches,
)
from repro.ifc import SecurityContext
from repro.sim import Simulator

CTX = SecurityContext.of(["medical", "ann"], ["hosp-dev"])
STATS_CTX = SecurityContext.of(["stats"], [])


def make_spine(tmp_path=None, **kw):
    sim = Simulator()
    spine = AuditSpine(clock=sim.now, name="audit@test", **kw)
    if tmp_path is not None:
        spine.configure_spill(tmp_path, hot_segments=1, seal_every=8)
    return sim, spine


def seed_events(sim, spine, n=40):
    for i in range(n):
        kind = (
            RecordKind.FLOW_DENIED if i % 5 == 0 else RecordKind.FLOW_ALLOWED
        )
        ctx = CTX if i % 3 == 0 else STATS_CTX
        spine.emit(
            "bus", kind, f"actor{i % 4}", f"dev{i % 7}", {"i": i}, ctx, ctx
        )
        sim.clock.advance(1.0)
    spine.drain()


class TestAuditQueryOverTiers:
    def test_results_equal_flat_filter(self, tmp_path):
        sim, spine = make_spine(tmp_path)
        seed_events(sim, spine)
        q = AuditQuery(spine)
        flat = list(spine)
        for filters in (
            dict(actor="actor1"),
            dict(entity="dev3"),
            dict(kind=RecordKind.FLOW_DENIED),
            dict(tag="local:ann"),
            dict(since=10.0, until=25.0),
            dict(actor="actor2", tag="local:stats", since=5.0),
        ):
            expect = [r for r in flat if record_matches(r, **filters)]
            assert q.query(**filters) == expect

    def test_index_probes_skip_segments(self, tmp_path):
        sim, spine = make_spine(tmp_path)
        seed_events(sim, spine)
        q = AuditQuery(spine)
        q.time_range(since=0.0, until=5.0)  # lives in the first segment
        stats = q.last_stats
        assert stats.segments_total >= 4
        assert stats.segments_scanned < stats.segments_total
        assert stats.segments_skipped > 0

    def test_cold_loads_counted(self, tmp_path):
        sim, spine = make_spine(tmp_path)
        seed_events(sim, spine)
        assert spine.tier_stats()["cold_segments"] > 0
        q = AuditQuery(spine)
        q.query(tag="local:medical")  # present in every segment
        assert q.last_stats.cold_loads > 0
        assert spine.tier_stats()["cold_loads"] > 0

    def test_impossible_filter_scans_no_segments(self, tmp_path):
        sim, spine = make_spine(tmp_path)
        seed_events(sim, spine)
        q = AuditQuery(spine)
        assert q.by_actor("mallory") == []
        assert q.last_stats.segments_scanned == 0

    def test_query_sees_staged_records(self, tmp_path):
        sim, spine = make_spine(tmp_path)
        spine.emit("bus", RecordKind.FLOW_ALLOWED, "late", "dev", {}, CTX)
        q = AuditQuery(spine)
        assert [r.actor for r in q.by_actor("late")] == ["late"]

    def test_flat_log_fallback(self):
        sim = Simulator()
        log = AuditLog(clock=sim.now)
        log.flow_allowed("a", "b", CTX, CTX)
        log.flow_denied("a", "c", "no", CTX, CTX)
        q = AuditQuery(log)
        assert len(q.by_kind(RecordKind.FLOW_DENIED)) == 1
        assert q.last_stats.records_scanned == 2
        assert q.by_entity("b")[0].subject == "b"

    def test_by_tag_accepts_tag_objects(self, tmp_path):
        sim, spine = make_spine(tmp_path)
        seed_events(sim, spine, n=6)
        tag = next(iter(CTX.secrecy))
        q = AuditQuery(spine)
        assert q.by_tag(tag) == q.by_tag(tag.qualified)


class TestCompliancePortability:
    def _violating(self, sink):
        sink.flow_allowed("eu-sensor", "us-store", CTX, CTX)
        for __ in range(3):
            sink.flow_allowed("eu-sensor", "eu-store", CTX, CTX)

    def test_checkers_agree_across_sink_kinds(self, tmp_path):
        sim = Simulator()
        log = AuditLog(clock=sim.now)
        spine = AuditSpine(clock=sim.now, name="audit@test")
        spine.configure_spill(tmp_path, hot_segments=0, seal_every=2)
        self._violating(log)
        self._violating(spine.emitter("bus"))
        spine.drain()
        assert spine.tier_stats()["cold_segments"] > 0
        auditor = ComplianceAuditor()
        auditor.register(no_flows_to({"us-store"}, {"eu-sensor"}, "residency"))
        auditor.register(denial_rate_below(0.5, "healthy"))
        flat, tiered = auditor.run(log), auditor.run(spine)
        assert [f.satisfied for f in flat.findings] == \
            [f.satisfied for f in tiered.findings]
        assert not tiered.compliant  # the cold-tier flow is still seen


SOURCES = ["bus", "kernel"]
ACTORS = ["alice", "bob", "carol"]
SUBJECTS = ["hr-monitor", "dashboard"]
KINDS = [RecordKind.FLOW_ALLOWED, RecordKind.FLOW_DENIED]
CTXS = [None, CTX, STATS_CTX]

ops = st.one_of(
    st.tuples(
        st.just("append"),
        st.integers(0, len(SOURCES) - 1),
        st.integers(0, len(KINDS) - 1),
        st.integers(0, len(ACTORS) - 1),
        st.integers(0, len(SUBJECTS) - 1),
        st.integers(0, len(CTXS) - 1),
    ),
    st.tuples(st.just("drain")),
    st.tuples(st.just("advance"), st.integers(1, 5)),
    st.tuples(st.just("prune"), st.integers(0, 30)),
    st.tuples(st.just("demote"), st.integers(0, 30)),
)

queries = st.one_of(
    st.tuples(st.just("actor"), st.sampled_from(ACTORS)),
    st.tuples(st.just("entity"), st.sampled_from(ACTORS + SUBJECTS)),
    st.tuples(st.just("kind"), st.sampled_from(KINDS)),
    st.tuples(st.just("tag"), st.sampled_from(
        ["local:medical", "local:stats", "local:nowhere"]
    )),
    st.tuples(st.just("range"), st.integers(0, 40), st.integers(0, 40)),
)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(ops, min_size=1, max_size=50),
    st.lists(queries, min_size=1, max_size=4),
)
def test_tiered_query_equals_flat_filter(tmp_path_factory, script, probes):
    """The tiering property: whatever interleaving of append / drain /
    seal / spill / prune the spine went through, AuditQuery answers
    exactly like filtering the flat record stream."""
    spill = tmp_path_factory.mktemp("spill")
    sim = Simulator()
    spine = AuditSpine(clock=sim.now, name="audit@prop")
    spine.configure_spill(spill, hot_segments=1, seal_every=4)
    for op in script:
        if op[0] == "append":
            __, s, k, a, sub, c = op
            spine.emit(
                SOURCES[s], KINDS[k], ACTORS[a], SUBJECTS[sub],
                {"t": sim.now()}, CTXS[c], CTXS[c],
            )
        elif op[0] == "drain":
            spine.drain()
        elif op[0] == "advance":
            sim.clock.advance(float(op[1]))
        elif op[0] == "prune":
            spine.prune_before(float(op[1]))
        elif op[0] == "demote":
            spine.demote_before(float(op[1]))
    q = AuditQuery(spine)
    flat = list(spine)  # drains; the reference semantics
    for probe in probes:
        if probe[0] == "actor":
            filters = dict(actor=probe[1])
        elif probe[0] == "entity":
            filters = dict(entity=probe[1])
        elif probe[0] == "kind":
            filters = dict(kind=probe[1])
        elif probe[0] == "tag":
            filters = dict(tag=probe[1])
        else:
            lo, hi = sorted((float(probe[1]), float(probe[2])))
            filters = dict(since=lo, until=hi)
        expect = [r for r in flat if record_matches(r, **filters)]
        assert q.query(**filters) == expect
    assert spine.verify()
