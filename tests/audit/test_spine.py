"""The audit spine: staged emission, segment chains, checkpoints,
pruning, and the enforcement-column wiring (see docs/audit_plane.md)."""

import pytest

from repro.audit import (
    AuditCollector,
    AuditLog,
    AuditSpine,
    RecordKind,
    SpineEmitter,
    bind_source,
)
from repro.errors import IntegrityViolation
from repro.ifc import SecurityContext
from repro.sim import Simulator

CTX = SecurityContext.of(["medical", "ann"], ["hosp-dev"])


def make_spine(**kw):
    sim = Simulator()
    spine = AuditSpine(clock=sim.now, name="audit@test", **kw)
    return sim, spine


class TestStagedEmission:
    def test_emit_is_staged_not_chained(self):
        __, spine = make_spine()
        spine.emit("bus", RecordKind.FLOW_ALLOWED, "a", "b")
        assert spine.pending == 1
        assert len(spine) == 1  # staged records are already visible
        assert spine.drain() == 1
        assert spine.pending == 0

    def test_records_keep_emission_order_across_sources(self):
        sim, spine = make_spine()
        bus = spine.emitter("bus")
        kernel = spine.emitter("kernel")
        for i in range(6):
            (bus if i % 2 == 0 else kernel).flow_allowed(f"actor{i}", "dst")
            sim.clock.advance(1.0)
        spine.drain()
        assert [r.actor for r in spine] == [f"actor{i}" for i in range(6)]
        assert [r.seq for r in spine] == list(range(6))

    def test_ring_capacity_forces_inline_drain(self):
        __, spine = make_spine(ring_capacity=4)
        bus = spine.emitter("bus")
        for i in range(4):
            bus.flow_allowed(f"a{i}", "b")
        assert spine.pending == 0  # capacity reached -> drained
        assert len(spine.segment("bus").records) == 4

    def test_clock_tick_drains_in_background(self):
        sim = Simulator()
        spine = AuditSpine(clock=sim.now)
        spine.attach_clock(sim.clock)
        spine.emitter("bus").flow_allowed("a", "b")
        assert spine.pending == 1
        sim.clock.advance(1.0)
        assert spine.pending == 0
        assert spine.verify()

    def test_detach_clock_stops_background_drains(self):
        sim = Simulator()
        spine = AuditSpine(clock=sim.now)
        spine.attach_clock(sim.clock)
        assert spine.detach_clock(sim.clock)
        assert not spine.detach_clock(sim.clock)  # already detached
        spine.emitter("bus").flow_allowed("a", "b")
        sim.clock.advance(1.0)
        assert spine.pending == 1  # no longer tick-drained

    def test_emitters_are_shared_per_source(self):
        __, spine = make_spine()
        assert spine.emitter("bus") is spine.emitter("bus")

    def test_direct_append_uses_default_source(self):
        __, spine = make_spine()
        spine.append(RecordKind.CUSTOM, "a")
        spine.drain()
        assert spine.sources() == ["main"]


class TestSegmentsAndVerify:
    def test_segments_shard_by_source(self):
        sim, spine = make_spine()
        for source in ("bus", "kernel", "substrate"):
            for i in range(3):
                spine.emit(source, RecordKind.FLOW_ALLOWED, f"{source}{i}", "x")
        spine.drain()
        assert spine.sources() == ["bus", "kernel", "substrate"]
        heads = spine.segment_heads()
        assert all(count == 3 for count, __ in heads.values())
        # Distinct sources chain from distinct genesis digests.
        assert len({digest for __, digest in heads.values()}) == 3

    def test_verify_detects_post_drain_mutation(self):
        __, spine = make_spine()
        record = spine.emitter("bus").flow_allowed("a", "b", CTX, CTX)
        spine.drain()
        assert spine.verify()
        object.__setattr__(record, "actor", "mallory")
        assert not spine.verify()
        with pytest.raises(IntegrityViolation):
            spine.verify_strict()

    def test_checkpoint_pins_segment_against_truncation(self):
        __, spine = make_spine()
        bus = spine.emitter("bus")
        for i in range(5):
            bus.flow_allowed(f"a{i}", "b")
        spine.checkpoint()
        # Truncate the segment behind the spine's back (not via prune).
        seg = spine.segment("bus")
        seg.records.pop()
        seg.digests.pop()
        assert not spine.verify()

    def test_checkpoint_chain_itself_is_tamper_evident(self):
        __, spine = make_spine()
        spine.emitter("bus").flow_allowed("a", "b")
        record = spine.checkpoint()
        assert record is not None and record.kind == RecordKind.CHECKPOINT
        object.__setattr__(record, "actor", "mallory")
        assert not spine.verify()

    def test_checkpoint_noop_when_nothing_new(self):
        __, spine = make_spine()
        spine.emitter("bus").flow_allowed("a", "b")
        assert spine.checkpoint() is not None
        assert spine.checkpoint() is None
        assert spine.stats_checkpoints == 1

    def test_checkpoint_cadence_follows_drains(self):
        __, spine = make_spine(checkpoint_every=2)
        bus = spine.emitter("bus")
        for __ in range(2):
            bus.flow_allowed("a", "b")
            spine.drain()
        assert spine.stats_checkpoints == 1

    def test_head_digest_checkpoints_on_demand(self):
        __, spine = make_spine()
        spine.emitter("bus").flow_allowed("a", "b")
        head = spine.head_digest
        assert spine.stats_checkpoints == 1
        assert spine.head_digest == head  # stable until new records

    def test_checkpoints_never_appear_in_record_stream(self):
        __, spine = make_spine()
        spine.emitter("bus").flow_allowed("a", "b")
        spine.checkpoint()
        assert all(r.kind != RecordKind.CHECKPOINT for r in spine.records())
        assert len(spine) == 1
        assert len(spine.checkpoints()) == 1


class TestPruning:
    def _filled(self, n=10):
        sim, spine = make_spine(checkpoint_every=1)
        bus = spine.emitter("bus")
        kernel = spine.emitter("kernel")
        for i in range(n):
            bus.flow_allowed(f"a{i}", "b")
            kernel.flow_denied(f"k{i}", "obj", "no", CTX, CTX)
            sim.clock.advance(1.0)
        spine.drain()
        return sim, spine

    def test_prune_before_keeps_suffix_verifiable(self):
        __, spine = self._filled(10)
        spine.checkpoint()
        pruned = spine.prune_before(5.0)
        assert pruned == 10  # 5 from each segment
        assert len(spine) == 10
        assert spine.verify()
        assert all(r.timestamp >= 5.0 for r in spine)

    def test_prune_then_append_then_verify(self):
        sim, spine = self._filled(6)
        spine.prune_before(3.0)
        spine.emitter("bus").flow_allowed("late", "b")
        assert spine.verify()
        assert "late" in [r.actor for r in spine]

    def test_prune_segment_survives_verification(self):
        __, spine = self._filled(4)
        spine.checkpoint()
        pruned = spine.prune_segment("kernel")
        assert pruned == 4
        assert spine.verify()
        assert len(spine.records(kind=RecordKind.FLOW_DENIED)) == 0
        # the segment's history (position, actors) is retained
        assert spine.segment_heads()["kernel"][0] == 4
        assert "k0" in spine.known_actors()

    def test_prune_prunes_old_checkpoints_too(self):
        sim, spine = make_spine(checkpoint_every=1)
        bus = spine.emitter("bus")
        for i in range(10):
            bus.flow_allowed(f"a{i}", "b")
            spine.drain()  # checkpoint_every=1: one checkpoint per drain
            sim.clock.advance(1.0)
        assert len(spine.checkpoints()) > 1
        spine.prune_before(9.0)
        assert all(c.timestamp >= 9.0 for c in spine.checkpoints())
        assert spine.verify()

    def test_export_carries_segment_attribution(self):
        __, spine = self._filled(2)
        exported = spine.export()
        assert len(exported) == 4
        assert {e["segment"] for e in exported} == {"bus", "kernel"}
        assert all(e["digest"] for e in exported)
        assert spine.export_checkpoints()


class TestBindSource:
    def test_none_stays_none(self):
        assert bind_source(None, "bus") is None

    def test_spine_binds_emitter(self):
        __, spine = make_spine()
        emitter = bind_source(spine, "bus")
        assert isinstance(emitter, SpineEmitter)
        assert emitter.source == "bus"

    def test_emitter_rebinds_to_new_source(self):
        __, spine = make_spine()
        bus = bind_source(spine, "bus")
        channel = bind_source(bus, "channel")
        assert channel.source == "channel"
        assert channel.spine is spine

    def test_plain_log_passes_through(self):
        log = AuditLog()
        assert bind_source(log, "bus") is log

    def test_emitter_is_submittable_as_a_segmented_log(self):
        """An enforcement site's emitter hands the collector the full
        segmented view — receipts over segment heads, pruned reporters
        vouched for — exactly as submitting the spine itself would."""
        __, spine = make_spine()
        bus = spine.emitter("bus")
        spine.emitter("kernel").flow_allowed("mobile-thing", "store")
        bus.flow_allowed("sensor", "mobile-thing")
        spine.prune_segment("kernel")
        collector = AuditCollector(key="k")
        receipt = collector.submit("home", bus)  # the emitter, not the spine
        assert dict(receipt.segment_heads).keys() == {"bus", "kernel"}
        assert all(g.component != "mobile-thing" for g in collector.detect_gaps())
        assert bus.sources() == ["bus", "kernel"]
        assert "mobile-thing" in bus.known_actors()
        assert bus.checkpoint() is None  # submit already checkpointed

    def test_empty_spine_head_digest_is_genesis(self):
        from repro.audit import GENESIS_DIGEST

        __, spine = make_spine()
        assert spine.head_digest == GENESIS_DIGEST
        assert spine.stats_checkpoints == 0  # reading mints no checkpoint
        assert spine.verify()

    def test_emitter_reads_see_whole_spine(self):
        __, spine = make_spine()
        bus = spine.emitter("bus")
        kernel = spine.emitter("kernel")
        bus.flow_allowed("a", "b")
        kernel.flow_denied("x", "y", "no")
        assert len(bus) == 2
        assert len(bus.denials()) == 1
        assert bus.verify()
        assert bus.records(kind=RecordKind.FLOW_ALLOWED)[0].actor == "a"
        assert bus.flush() == 0  # verify() drained already
        assert bus.head_digest == spine.head_digest


class TestSpineEquivalence:
    """A spine and a plain unbuffered log fed the same events tell the
    same story (the hypothesis test in test_spine_properties.py
    generalises this)."""

    def test_record_streams_match(self):
        sim = Simulator()
        spine = AuditSpine(clock=sim.now)
        log = AuditLog(clock=sim.now)
        sources = ["bus", "kernel", "pep:gate"]
        for i in range(12):
            source = sources[i % 3]
            spine.emit(source, RecordKind.FLOW_ALLOWED, f"a{i}", "b", None, CTX, CTX)
            log.flow_allowed(f"a{i}", "b", CTX, CTX)
            sim.clock.advance(1.0)
        spine.drain()
        spine_view = [(r.seq, r.timestamp, r.kind, r.actor) for r in spine]
        log_view = [(r.seq, r.timestamp, r.kind, r.actor) for r in log]
        assert spine_view == log_view
        assert spine.verify() and log.verify()


class TestEnforcementColumnWiring:
    """The sites named in the audit-spine refactor stage through
    per-source segments — no synchronous chaining on the delivery path."""

    def test_decommissioned_machine_detaches_from_the_clock(self):
        from repro.cloud.machine import Machine

        sim = Simulator()
        machine = Machine("churned", clock=sim.clock)
        machine.audit.emitter("kernel").flow_allowed("a", "b")
        machine.decommission()
        machine.decommission()  # idempotent
        assert machine.audit.pending == 0  # final checkpoint drained
        assert machine.audit.verify()
        assert sim.clock.off_advance(machine.audit._on_tick) is False

    def test_machine_kernel_audits_into_kernel_segment(self):
        from repro.cloud.kernel import ObjectKind
        from repro.cloud.machine import Machine

        sim = Simulator()
        machine = Machine("host", clock=sim.clock)
        proc = machine.launch("app", CTX)
        machine.kernel.create_object(proc.pid, ObjectKind.FILE, "f")
        assert isinstance(machine.audit, AuditSpine)
        assert machine.audit.pending > 0  # staged, not chained
        sim.clock.advance(1.0)  # background drain
        assert machine.audit.pending == 0
        assert "kernel" in machine.audit.sources()
        assert machine.audit.verify()

    def test_bus_and_channel_share_the_spine_in_segments(self):
        from repro.middleware.bus import MessageBus
        from repro.middleware.component import Component, EndpointKind
        from repro.middleware.message import AttributeSpec, MessageType

        sim, spine = make_spine()
        bus = MessageBus(audit=spine, clock=sim.now)
        mt = MessageType("reading", [AttributeSpec("v", int)])
        sensor = Component("sensor", owner="ann", context=CTX)
        sensor.add_endpoint("out", EndpointKind.SOURCE, mt)
        sink = Component("sink", owner="ann", context=CTX)
        sink.add_endpoint("in", EndpointKind.SINK, mt)
        bus.register(sensor)
        bus.register(sink)
        channel = bus.connect("ann", sensor, "out", sink, "in")
        bus.publish(sensor, "out", v=1)
        bus.disconnect(channel)
        spine.drain()
        assert "bus" in spine.sources()
        assert "channel" in spine.sources()
        assert spine.verify()
        kinds = [r.kind for r in spine]
        assert RecordKind.CHANNEL_ESTABLISHED in kinds
        assert RecordKind.FLOW_ALLOWED in kinds
        assert RecordKind.CHANNEL_TORN_DOWN in kinds

    def test_substrate_and_kernel_share_machine_shard(self):
        from repro.cloud.machine import Machine
        from repro.middleware.substrate import MessagingSubstrate
        from repro.net.network import Network

        sim = Simulator()
        network = Network(sim)
        machine = Machine("host", clock=sim.clock)
        substrate = MessagingSubstrate(machine, network)
        assert substrate.plane.cache is machine.shard.cache
        assert machine.kernel.security.plane.cache is machine.shard.cache
        assert substrate.audit.source == "substrate"

    def test_datastore_and_pep_claim_their_segments(self):
        from repro.accesscontrol.pep import EnforcementPoint
        from repro.cloud.datastore import LabelledStore

        sim, spine = make_spine()
        store = LabelledStore("patients", audit=spine, clock=sim.now)
        store.insert("app", {"hr": 72}, CTX)
        pep = EnforcementPoint("gate", audit=spine)
        pep.check(None, "read", "patients", CTX, CTX)
        spine.drain()
        assert "datastore:patients" in spine.sources()
        assert "pep:gate" in spine.sources()
        assert spine.verify()


class TestSpineOffload:
    def test_collector_accepts_spine_with_segment_receipt(self):
        sim, spine = make_spine()
        spine.emitter("bus").flow_allowed("a", "b", CTX, CTX)
        spine.emitter("kernel").flow_allowed("k", "obj", CTX, CTX)
        collector = AuditCollector(key="regulator")
        receipt = collector.submit("home", spine)
        assert receipt is not None
        assert receipt.record_count == 2
        assert dict(receipt.segment_heads).keys() == {"bus", "kernel"}
        assert receipt.verify("regulator")
        assert not receipt.verify("imposter")
        # The receipt head is the checkpoint-chain head binding the
        # segment heads it lists.
        assert receipt.head_digest == spine.head_digest

    def test_collector_rejects_tampered_spine(self):
        __, spine = make_spine()
        record = spine.emitter("bus").flow_allowed("a", "b")
        spine.drain()
        object.__setattr__(record, "subject", "mallory")
        collector = AuditCollector()
        assert collector.submit("evil", spine) is None
        assert "evil" in collector.rejected_domains

    def test_pruned_segment_is_not_a_false_gap(self):
        sim, spine = make_spine()
        # mobile-thing reports through the kernel segment...
        spine.emitter("kernel").flow_allowed("mobile-thing", "store", CTX, CTX)
        # ...and is referenced as a subject in the bus segment.
        spine.emitter("bus").flow_allowed("sensor", "mobile-thing", CTX, CTX)
        spine.prune_segment("kernel")
        assert spine.verify()
        collector = AuditCollector()
        collector.submit("home", spine)
        gaps = collector.detect_gaps()
        assert all(g.component != "mobile-thing" for g in gaps)

    def test_never_reporting_component_is_still_a_gap(self):
        sim, spine = make_spine()
        spine.emitter("bus").flow_allowed("sensor", "ghost")
        collector = AuditCollector()
        collector.submit("home", spine)
        assert [g.component for g in collector.detect_gaps()] == ["ghost"]
