"""Property: a segmented/deferred spine and a plain unbuffered AuditLog
fed the same event stream are order-equivalent and verify-clean under any
interleaving of append / drain / verify / prune operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import AuditLog, AuditSpine, RecordKind
from repro.ifc import SecurityContext
from repro.sim import Simulator

SOURCES = ["bus", "kernel", "substrate", "pep:gate"]
KINDS = [
    RecordKind.FLOW_ALLOWED,
    RecordKind.FLOW_DENIED,
    RecordKind.ACCESS_ALLOWED,
    RecordKind.RECONFIGURATION,
]
CTXS = [
    None,
    SecurityContext.of(["medical"], ["dev"]),
    SecurityContext.of(["medical", "ann"], []),
]

#: One scripted operation against both stores.
ops = st.one_of(
    st.tuples(
        st.just("append"),
        st.integers(0, len(SOURCES) - 1),
        st.integers(0, len(KINDS) - 1),
        st.integers(0, 7),           # actor id
        st.integers(0, len(CTXS) - 1),
    ),
    st.tuples(st.just("drain")),
    st.tuples(st.just("verify")),
    st.tuples(st.just("advance"), st.integers(1, 5)),
    st.tuples(st.just("prune"), st.integers(0, 20)),
)


def view(store):
    return [
        (r.seq, r.timestamp, r.kind, r.actor, r.subject)
        for r in store
    ]


@settings(max_examples=60, deadline=None)
@given(st.lists(ops, min_size=1, max_size=40))
def test_spine_matches_plain_log_under_interleaving(script):
    sim = Simulator()
    spine = AuditSpine(clock=sim.now, ring_capacity=8, checkpoint_every=2)
    log = AuditLog(clock=sim.now)  # unbuffered: the reference semantics

    for op in script:
        if op[0] == "append":
            __, s, k, a, c = op
            source, kind, actor, ctx = SOURCES[s], KINDS[k], f"actor{a}", CTXS[c]
            spine.emit(source, kind, actor, "subj", {"n": a}, ctx, ctx)
            log.append(kind, actor, "subj", {"n": a}, ctx, ctx)
        elif op[0] == "drain":
            spine.drain()
            log.flush()
        elif op[0] == "verify":
            assert spine.verify()
            assert log.verify()
        elif op[0] == "advance":
            sim.clock.advance(float(op[1]))
        elif op[0] == "prune":
            cutoff = float(op[1])
            spine.prune_before(cutoff)
            log.prune_before(cutoff)

    # Same records, same order, same seq/timestamps — segment sharding
    # and deferred chaining never change the story the audit tells.
    assert view(spine) == view(log)
    assert spine.verify()
    assert log.verify()
    # And the spine's checkpoint head still authenticates after the run.
    assert spine.head_digest
    assert spine.verify()
