"""Distributed audit across federated domains (Challenge 6)."""

import pytest

from repro.audit import AuditCollector, AuditLog, OffloadReceipt
from repro.sim import Simulator


def make_log(clock=None) -> AuditLog:
    return AuditLog(clock=clock)


class TestCollection:
    def test_valid_log_accepted_with_receipt(self):
        collector = AuditCollector(key="k")
        log = make_log()
        log.flow_allowed("a", "b")
        receipt = collector.submit("domain-1", log)
        assert receipt is not None
        assert receipt.record_count == 1
        assert receipt.verify("k")
        assert not receipt.verify("wrong-key")

    def test_tampered_log_rejected(self):
        collector = AuditCollector()
        log = make_log()
        log.flow_allowed("a", "b")
        record = log.records()[0]
        object.__setattr__(record, "actor", "mallory")
        assert collector.submit("domain-evil", log) is None
        assert "domain-evil" in collector.rejected_domains

    def test_merged_is_time_ordered(self):
        sim = Simulator()
        log1 = make_log(sim.now)
        log2 = make_log(sim.now)
        log1.flow_allowed("a", "b")           # t=0
        sim.clock.advance(5.0)
        log2.flow_allowed("c", "d")           # t=5
        sim.clock.advance(5.0)
        log1.flow_allowed("e", "f")           # t=10
        collector = AuditCollector()
        collector.submit("d1", log1)
        collector.submit("d2", log2)
        merged = collector.merged()
        actors = [record.actor for __, record in merged]
        assert actors == ["a", "c", "e"]

    def test_receipts_accumulate(self):
        collector = AuditCollector()
        log = make_log()
        log.flow_allowed("a", "b")
        collector.submit("d", log)
        collector.submit("d", log)
        assert len(collector.receipts()) == 2


class TestCrossDomainFlows:
    def test_handoff_points_found(self):
        home = make_log()
        cloud = make_log()
        # gateway appears as actor in both domains' logs
        home.flow_allowed("sensor", "gateway")
        home.flow_allowed("gateway", "cloud-app")
        cloud.flow_allowed("cloud-app", "analytics")
        collector = AuditCollector()
        collector.submit("home", home)
        collector.submit("cloud", cloud)
        handoffs = collector.cross_domain_flows()
        assert any(
            record.subject == "cloud-app" and src == "home" and dst == "cloud"
            for src, dst, record in handoffs
        )

    def test_intra_domain_flows_not_reported(self):
        home = make_log()
        home.flow_allowed("sensor", "hub")
        home.flow_allowed("hub", "store")
        collector = AuditCollector()
        collector.submit("home", home)
        assert collector.cross_domain_flows() == []


class TestGapDetection:
    def test_silent_component_is_a_gap(self):
        sim = Simulator()
        log = make_log(sim.now)
        log.flow_allowed("sensor", "mobile-thing")
        sim.clock.advance(100.0)
        log.flow_allowed("sensor", "mobile-thing")
        collector = AuditCollector()
        collector.submit("home", log)
        gaps = collector.detect_gaps()
        assert len(gaps) == 1
        gap = gaps[0]
        assert gap.component == "mobile-thing"
        assert gap.first_seen == 0.0
        assert gap.last_seen == 100.0
        assert gap.referenced_by == {"home"}

    def test_reporting_component_is_not_a_gap(self):
        log = make_log()
        log.flow_allowed("sensor", "hub")
        log.flow_allowed("hub", "store")  # hub reports its own records
        collector = AuditCollector()
        collector.submit("home", log)
        assert all(g.component != "hub" for g in collector.detect_gaps())

    def test_gap_referenced_from_multiple_domains(self):
        log1 = make_log()
        log2 = make_log()
        log1.flow_allowed("a", "wanderer")
        log2.flow_allowed("b", "wanderer")
        collector = AuditCollector()
        collector.submit("d1", log1)
        collector.submit("d2", log2)
        gaps = collector.detect_gaps()
        assert gaps[0].referenced_by == {"d1", "d2"}
