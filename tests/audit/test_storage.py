"""The tiered segment store: seal cadence, demotion to spill files,
cold-tier verification (header + chain), pruning across tier
boundaries, and hot/cold export identity (see docs/audit_storage.md)."""

import pytest

from repro.audit import AuditRecord, AuditSpine, RecordKind, record_matches
from repro.audit.storage import (
    SealedSegment,
    SegmentIndex,
    SegmentStore,
    read_spill,
    read_spill_header,
    write_spill,
)
from repro.errors import IntegrityViolation
from repro.ifc import SecurityContext
from repro.sim import Simulator

CTX = SecurityContext.of(["medical", "ann"], ["hosp-dev"])


def make_spine(**kw):
    sim = Simulator()
    spine = AuditSpine(clock=sim.now, name="audit@test", **kw)
    return sim, spine


def fill(sim, spine, n, source="bus", step=1.0, actor=None):
    for i in range(n):
        spine.emit(
            source,
            RecordKind.FLOW_ALLOWED,
            actor or f"actor{i % 4}",
            "subj",
            {"i": i},
            CTX,
            CTX,
        )
        sim.clock.advance(step)
    spine.drain()


class TestSealLifecycle:
    def test_seal_cadence_without_spill_dir(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=100, seal_every=10)
        fill(sim, spine, 35)
        stats = spine.tier_stats()
        assert stats["seals"] == 3
        assert stats["sealed_segments"] == 3
        assert stats["cold_segments"] == 0  # all within hot_segments
        assert len(spine) == 35

    def test_sealed_chain_is_continuous_with_tail(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=100, seal_every=8)
        fill(sim, spine, 20)
        store = spine._store
        chunks = store.sealed["bus"]
        assert chunks[0].base_count == 0
        assert chunks[1].base_digest == chunks[0].head
        tail = store.tails["bus"]
        assert tail.base_digest == chunks[-1].head
        assert store.total("bus") == 20
        assert spine.verify()

    def test_digest_at_spans_tiers(self, tmp_path):
        sim, spine = make_spine()
        plain_sim, plain = make_spine()
        spine.configure_spill(tmp_path, hot_segments=1, seal_every=5)
        fill(sim, spine, 23)
        fill(plain_sim, plain, 23)
        for pos in (1, 5, 6, 10, 15, 20, 23):
            assert spine._store.digest_at("bus", pos) == \
                plain._store.digest_at("bus", pos)

    def test_records_preserved_across_seal(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=50, seal_every=4)
        fill(sim, spine, 10)
        details = [r.detail["i"] for r in spine.records()]
        assert details == list(range(10))


class TestDemotion:
    def test_excess_segments_spill_to_disk(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=1, seal_every=10)
        fill(sim, spine, 45)
        stats = spine.tier_stats()
        assert stats["seals"] == 4
        assert stats["cold_segments"] == 3
        assert stats["spill_bytes"] > 0
        assert len(list(tmp_path.glob("*.seg"))) == 3

    def test_cold_records_reload_identically(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=0, seal_every=6)
        fill(sim, spine, 18)
        records = spine.records()
        assert [r.detail["i"] for r in records] == list(range(18))
        assert all(isinstance(r, AuditRecord) for r in records)
        assert records[0].source_context is not None
        assert records[0].source_context.secrecy == CTX.secrecy

    def test_export_identical_to_unspilled_twin(self, tmp_path):
        sim, spine = make_spine()
        twin_sim, twin = make_spine()
        spine.configure_spill(tmp_path, hot_segments=1, seal_every=7)
        fill(sim, spine, 30, source="bus")
        fill(twin_sim, twin, 30, source="bus")
        fill(sim, spine, 9, source="kernel")
        fill(twin_sim, twin, 9, source="kernel")
        assert spine.export() == twin.export()
        assert spine.segment_heads() == twin.segment_heads()

    def test_demote_before_pushes_old_hot_segments_cold(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=100, seal_every=10)
        fill(sim, spine, 40)
        assert spine.tier_stats()["cold_segments"] == 0
        demoted = spine.demote_before(sim.now() - 15.0)
        assert demoted == 20  # two full segments' worth of records
        assert spine.tier_stats()["cold_segments"] == 2
        assert spine.verify()

    def test_checkpoints_bind_across_tiers(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=1, seal_every=5)
        fill(sim, spine, 13)
        spine.checkpoint()  # pins a head that will go cold
        fill(sim, spine, 13)
        spine.checkpoint()
        assert spine.tier_stats()["cold_segments"] >= 1
        assert len(spine.checkpoints()) == 2
        assert spine.verify()  # ckpt digests resolved from cold files


class TestColdVerification:
    def _cold_spine(self, tmp_path, n=24):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=0, seal_every=8)
        fill(sim, spine, n)
        assert spine.tier_stats()["cold_segments"] >= 2
        return sim, spine

    def test_clean_cold_tier_verifies(self, tmp_path):
        __, spine = self._cold_spine(tmp_path)
        assert spine.verify()
        spine.verify_strict()

    def test_record_slot_tamper_detected(self, tmp_path):
        __, spine = self._cold_spine(tmp_path)
        victim = sorted(tmp_path.glob("*.seg"))[0]
        blob = victim.read_bytes()
        assert b'"subj"' in blob
        victim.write_bytes(blob.replace(b'"subj"', b'"EVIL"', 1))
        assert not spine.verify()
        with pytest.raises(IntegrityViolation):
            spine.verify_strict()

    def test_header_tamper_detected(self, tmp_path):
        # Tampering the spill *header* (where the query index lives)
        # must fail verification even though the chain bytes are intact:
        # a doctored index could silently hide records from queries.
        __, spine = self._cold_spine(tmp_path)
        victim = sorted(tmp_path.glob("*.seg"))[0]
        blob = victim.read_bytes()
        assert b'"actor0"' in blob  # indexed actor set, in the header
        victim.write_bytes(blob.replace(b'"actor0"', b'"actorX"', 1))
        assert not spine.verify()

    def test_undecodable_slot_bytes_detected(self, tmp_path):
        # A tamper that leaves the canonical bytes invalid UTF-8 must
        # still report as a violation, not crash the reader.
        __, spine = self._cold_spine(tmp_path)
        victim = sorted(tmp_path.glob("*.seg"))[0]
        blob = victim.read_bytes()
        at = blob.rfind(b'"subj"')  # last occurrence: a record slot,
        assert at > 0               # past the (indexed) header
        victim.write_bytes(
            blob[:at] + b'"\xa2\xa2\xa2j"' + blob[at + 6:]
        )
        assert not spine.verify()
        with pytest.raises(IntegrityViolation):
            spine.verify_strict()

    def test_truncated_spill_file_detected(self, tmp_path):
        __, spine = self._cold_spine(tmp_path)
        victim = sorted(tmp_path.glob("*.seg"))[0]
        victim.write_bytes(victim.read_bytes()[:40])
        assert not spine.verify()

    def test_missing_spill_file_detected(self, tmp_path):
        __, spine = self._cold_spine(tmp_path)
        sorted(tmp_path.glob("*.seg"))[0].unlink()
        assert not spine.verify()


class TestPruneAcrossTiers:
    def test_prune_drops_whole_cold_chunks(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=0, seal_every=5)
        fill(sim, spine, 25)
        files_before = len(list(tmp_path.glob("*.seg")))
        dropped = spine.prune_before(10.0)  # first two chunks end < 10s
        assert dropped == 10
        assert len(spine) == 15
        assert len(list(tmp_path.glob("*.seg"))) < files_before
        assert spine.verify()

    def test_prune_straddling_a_cold_chunk_rewrites_it(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=0, seal_every=10)
        fill(sim, spine, 30)
        dropped = spine.prune_before(13.0)  # mid-second-chunk cutoff
        assert dropped == 13
        assert len(spine) == 17
        assert spine.verify()
        assert [r.detail["i"] for r in spine.records()] == \
            list(range(13, 30))

    def test_prune_segment_clears_cold_files(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=0, seal_every=5)
        fill(sim, spine, 12, source="bus")
        fill(sim, spine, 3, source="kernel")
        dropped = spine.prune_segment("bus")
        assert dropped == 12
        assert len(spine) == 3
        assert spine.verify()
        # chain head survives the prune (rebase, not reset)
        heads = spine.segment_heads()
        assert heads["bus"][0] == 12


class TestSpillCodec:
    def _entries(self, n):
        sim, spine = make_spine()
        fill(sim, spine, n)
        seg = spine._store.tails["bus"]
        return seg, [
            (seg.records[i].canonical(), seg.digest_at(i + 1))
            for i in range(n)
        ]

    def test_round_trip(self, tmp_path):
        seg, entries = self._entries(7)
        index = SegmentIndex.over(list(seg.records))
        path = tmp_path / "seg.seg"
        size, header_digest = write_spill(
            path, "bus", seg.base_digest, 0, seg.head, entries, index
        )
        assert size == path.stat().st_size
        header, got = read_spill(path)
        assert got == entries
        assert header["source"] == "bus"
        assert header["base_digest"] == seg.base_digest
        assert header["head"] == seg.head
        assert header["count"] == 7

    def test_header_carries_index(self, tmp_path):
        seg, entries = self._entries(5)
        index = SegmentIndex.over(list(seg.records))
        path = tmp_path / "seg.seg"
        write_spill(path, "bus", seg.base_digest, 0, seg.head, entries, index)
        loaded = SegmentIndex.from_dict(read_spill_header(path)["index"])
        assert loaded.actors == index.actors
        assert loaded.kinds == index.kinds
        assert loaded.time_min == index.time_min
        assert loaded.time_max == index.time_max

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.seg"
        path.write_bytes(b"NOTASEG!" + b"\x00" * 64)
        with pytest.raises(IntegrityViolation):
            read_spill(path)


class TestSegmentIndex:
    def _records(self):
        sim, spine = make_spine()
        fill(sim, spine, 6, actor="alice")
        return list(spine._store.tails["bus"].records)

    def test_may_match_is_sound(self):
        records = self._records()
        index = SegmentIndex.over(records)
        # Anything that actually matches must be admitted by the index.
        assert index.may_match(actor="alice")
        assert index.may_match(entity="alice")
        assert index.may_match(entity="subj")
        assert index.may_match(kind_value=RecordKind.FLOW_ALLOWED.value)
        assert index.may_match(tag="local:medical")
        assert index.may_match(since=0.0, until=100.0)

    def test_may_match_prunes_definitively(self):
        records = self._records()
        index = SegmentIndex.over(records)
        assert not index.may_match(actor="mallory")
        assert not index.may_match(entity="mallory")
        assert not index.may_match(kind_value=RecordKind.FLOW_DENIED.value)
        assert not index.may_match(tag="local:finance")
        assert not index.may_match(since=1e9)
        assert not index.may_match(until=-1.0)

    def test_record_matches_agrees_with_index_admission(self):
        records = self._records()
        index = SegmentIndex.over(records)
        for actor in ("alice", "mallory"):
            if any(record_matches(r, actor=actor) for r in records):
                assert index.may_match(actor=actor)


class TestStoreDirectly:
    def test_hot_segments_zero_keeps_only_tail_in_memory(self, tmp_path):
        store = SegmentStore(genesis=lambda s: "g:" + s)
        store.configure_spill(tmp_path, hot_segments=0, seal_every=4)
        sim, spine = make_spine()
        fill(sim, spine, 12)
        for rec in spine.records():
            tail = store.tail("bus")
            tail.chain(rec)
            store.maybe_seal("bus")
        assert all(c.is_cold for c in store.sealed["bus"])
        assert store.total("bus") == 12
        store.verify()

    def test_seal_prefix_noop_on_short_tail(self):
        store = SegmentStore(genesis=lambda s: "g:" + s)
        assert store.seal_prefix("bus", 5) is None

    def test_tier_stats_shape(self, tmp_path):
        store = SegmentStore(genesis=lambda s: "g:" + s)
        store.configure_spill(tmp_path, hot_segments=2, seal_every=4)
        stats = store.tier_stats()
        for key in (
            "hot_records", "cold_records", "sealed_segments",
            "cold_segments", "spill_bytes", "seals", "demotions",
            "cold_loads", "spill_dir",
        ):
            assert key in stats
        assert stats["spill_dir"] == str(tmp_path)


class TestSealedSegmentUnit:
    def test_demote_then_records_reload(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=100, seal_every=6)
        fill(sim, spine, 12)
        chunk = spine._store.sealed["bus"][0]
        assert not chunk.is_cold
        hot_entries = chunk.entries()
        chunk.demote(tmp_path)
        assert chunk.is_cold
        assert chunk.entries() == hot_entries
        assert [r.detail["i"] for r in chunk.records()] == list(range(6))
        chunk.verify()

    def test_cold_prune_prefix_rewrites_file(self, tmp_path):
        sim, spine = make_spine()
        spine.configure_spill(tmp_path, hot_segments=0, seal_every=8)
        fill(sim, spine, 8)
        chunk = spine._store.sealed["bus"][0]
        head_before = chunk.head
        dropped = chunk.prune_prefix(3)
        assert dropped == 3
        assert chunk.count == 5
        assert chunk.total == 8  # absolute end position is unchanged
        assert chunk.head == head_before  # head never moves on prune
        assert chunk.base_count == 3
        chunk.verify()
        assert [r.detail["i"] for r in chunk.records()] == [3, 4, 5, 6, 7]
