"""End-to-end integration: every substrate in one deployment.

The Fig. 1 big picture as a single test scenario: an IoT domain (home
sensors) feeds a PaaS cloud through the cross-machine substrate; a CEP
detector recognises a situation; the policy engine reconfigures the
middleware; the legal obligation register audits the result; and the
federated collector assembles compliance evidence from every layer.
"""

import pytest

from repro.audit import AuditCollector, ComplianceAuditor, RecordKind
from repro.cloud import Machine, ObjectKind, PaaSCloud
from repro.ifc import PrivilegeSet, SecurityContext, TagOntology, semantic_can_flow
from repro.iot import App, IoTWorld, Sensor
from repro.middleware import (
    Message,
    MessageType,
    MessagingSubstrate,
    Reconfigurator,
)
from repro.policy import (
    Event,
    EventProcessor,
    ObligationRegister,
    PolicyEngine,
    SlidingWindowDetector,
    consent_obligation,
    standard_library,
)

READING = MessageType.simple("reading", value=float)


class TestFullStack:
    def test_iot_to_cloud_to_policy_to_audit(self):
        # ---- the IoT side: a home domain with a wearable --------------
        world = IoTWorld(seed=21)
        home = world.create_domain("home")
        ctx = SecurityContext.of(["personal", "ada"], ["home-dev", "consent"])
        wearable = Sensor("wearable", source=lambda t: 150.0, interval=60.0,
                          context=ctx, owner="ada")
        hub = App("hub", context=ctx, owner="ada")
        home.adopt(wearable, owner="ada")
        home.adopt(hub, owner="ada")
        home.bus.connect("ada", wearable, "out", hub, "in")
        wearable.start(world.sim, home.bus)

        # ---- the cloud side: CamFlow machine + substrate ----------------
        cloud_machine = Machine("cloud-host", clock=world.sim.now)
        home_machine = Machine("home-hub-host", clock=world.sim.now)
        substrate_home = MessagingSubstrate(home_machine, world.network)
        substrate_cloud = MessagingSubstrate(cloud_machine, world.network)
        hub_process = home_machine.launch("hub-proc", ctx)
        analyser_process = cloud_machine.launch("cloud-analyser", ctx)
        substrate_home.register(hub_process, lambda a, m: None)
        cloud_received = []
        substrate_cloud.register(
            analyser_process, lambda a, m: cloud_received.append(m)
        )

        # ---- CEP + policy: sustained high reading triggers response -----
        engine = PolicyEngine(
            home.engine.name, home.reconfigurator,
            context=home.context, audit=home.audit,
        )
        emergency_app = App("emergency-team", context=ctx, owner="ambulance")
        home.adopt(emergency_app, owner="ambulance")
        emergency_app.allow_controller(engine.name)
        for rule in standard_library().instantiate(
            "emergency-replug", engine=engine.name,
            stream="wearable", team="emergency-team",
        ):
            engine.add_rule(rule)
        processor = EventProcessor()
        processor.add(SlidingWindowDetector(
            "sustained-high", engine.handle_event,
            event_type="reading", attribute="value",
            window=300.0, aggregate="mean",
            predicate=lambda v: v > 120.0,
            derived_type="emergency",
        ))

        # Drive: each hub delivery becomes a CEP event and a cloud upload.
        def pump(app, message):
            processor.process(Event(
                "reading", dict(message.values),
                source="wearable", timestamp=world.sim.now(),
            ))
            substrate_home.send(
                hub_process, substrate_cloud, "cloud-analyser",
                Message(READING, {"value": message.values["value"]},
                        context=ctx),
            )

        hub.process = pump
        world.run(seconds=600.0)

        # ---- assertions across every layer ------------------------------
        # CEP recognised the situation and policy replugged the stream:
        assert home.context.get("emergency.active") is True
        assert home.bus.channels_of(emergency_app)
        # The cloud received the uploads through the enforcing substrate:
        assert cloud_received
        assert substrate_cloud.stats.delivered == len(cloud_received)
        # Kernel-side: a co-tenant on the cloud host cannot read a file
        # created by the analyser process:
        store = cloud_machine.kernel.create_object(
            analyser_process.pid, ObjectKind.FILE, "ada-data")
        snoop = cloud_machine.launch("co-tenant")
        from repro.errors import FlowError

        with pytest.raises(FlowError):
            cloud_machine.kernel.read(snoop.pid, store.oid)

        # ---- compliance: obligations checked over federated evidence ----
        register = ObligationRegister()
        register.register(consent_obligation())
        auditor = ComplianceAuditor()
        for checker in register.all_checkers():
            auditor.register(checker)
        report = auditor.run(home.audit)
        assert report.compliant  # every flow carried the consent tag

        collector = AuditCollector(key="regulator")
        collector.submit("home", home.audit)
        collector.submit("home-hub-host", home_machine.audit)
        collector.submit("cloud-host", cloud_machine.audit)
        assert collector.rejected_domains == set()
        merged = collector.merged()
        assert len(merged) > 10
        # The cross-layer story is reconstructable: policy firing and the
        # reconfiguration it caused both appear in the merged stream.
        kinds = {record.kind for __, record in merged}
        assert RecordKind.POLICY_FIRED in kinds
        assert RecordKind.RECONFIGURATION in kinds
        assert RecordKind.FLOW_ALLOWED in kinds

    def test_ontology_semantics_compose_with_flat_enforcement(self):
        """Semantic clearances reconcile specialised tags with general
        policy without weakening flat checks."""
        onto = TagOntology()
        onto.declare_subtype("cardiology", "medical")
        cardio_data = SecurityContext.of(["cardiology"], [])
        medical_sink = SecurityContext.of(["medical"], [])
        public_sink = SecurityContext.public()
        assert semantic_can_flow(onto, cardio_data, medical_sink)
        assert not semantic_can_flow(onto, cardio_data, public_sink)
