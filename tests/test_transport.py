"""Coalescing transport: outbox batching with per-datagram semantics.

The contract under test (``docs/transport_plane.md``): coalescing may
only change *when* a cleared datagram is delivered (by at most the
flight window, never early) — every per-datagram outcome (loss roll,
partition block, offline drop, counters, stamps) must match the
uncoalesced path exactly.
"""

import pytest

from repro.net import Network, TransportConfig
from repro.sim import Simulator


@pytest.fixture
def net(sim):
    return Network(sim, default_latency=0.5)


def wired_pair(net, window=0.0, max_batch=64):
    """Hosts a → b with a's sends coalescing; returns the b inbox."""
    received = []
    net.add_host("a")
    net.add_host("b", receiver=lambda d: received.append(d))
    net.configure_transport(window, max_batch, host="a")
    return received


class TestCoalescing:
    def test_same_instant_sends_share_one_batch(self, sim, net):
        received = wired_pair(net)
        for i in range(5):
            net.send("a", "b", i)
        sim.run_for(1.0)
        assert [d.payload for d in received] == [0, 1, 2, 3, 4]
        assert net.transport_stats.batches == 1
        assert net.transport_stats.batched_datagrams == 5
        assert net.transport_stats.mean_batch_size == 5.0

    def test_window_zero_delivers_at_uncoalesced_time(self, sim, net):
        received = wired_pair(net, window=0.0)
        net.send("a", "b", "x")
        sim.run_for(1.0)
        assert received[0].delivered_at == 0.5  # exactly send + latency

    def test_window_admits_joiners_and_flushes_once(self, sim, net):
        received = wired_pair(net, window=0.2)
        net.send("a", "b", "first")
        sim.run_for(0.1)
        net.send("a", "b", "joiner")  # inside the window
        sim.run_for(2.0)
        assert [d.payload for d in received] == ["first", "joiner"]
        # Both share the opener's deadline: t0 + window + latency.
        assert received[0].delivered_at == received[1].delivered_at == 0.7
        assert net.transport_stats.batches == 1
        assert net.transport_stats.flush_window == 1

    def test_send_after_window_opens_new_batch(self, sim, net):
        received = wired_pair(net, window=0.2)
        net.send("a", "b", "first")
        sim.run_for(0.3)  # window lapsed (batch still in flight)
        net.send("a", "b", "late")
        sim.run_for(2.0)
        assert net.transport_stats.batches == 2
        assert [d.payload for d in received] == ["first", "late"]
        assert received[0].delivered_at == 0.7
        assert received[1].delivered_at == pytest.approx(1.0)

    def test_never_early_and_per_key_fifo(self, sim, net):
        received = wired_pair(net, window=0.2)
        for offset in (0.0, 0.05, 0.25):
            sim.run_until(offset)
            net.send("a", "b", offset)
        sim.run_for(2.0)
        assert [d.payload for d in received] == [0.0, 0.05, 0.25]
        for d in received:
            # No datagram beats its uncoalesced delivery time...
            assert d.delivered_at >= d.sent_at + 0.5
            # ...and pays at most the window on top.
            assert d.delivered_at <= d.sent_at + 0.5 + 0.2

    def test_max_batch_closes_but_flushes_at_deadline(self, sim, net):
        received = wired_pair(net, window=0.2, max_batch=2)
        for i in range(3):
            net.send("a", "b", i)
        sim.run_for(1.0)
        assert [d.payload for d in received] == [0, 1, 2]
        # The full batch closed to joiners (third opened a fresh one)
        # but still delivered at its own window deadline, never early.
        assert received[0].delivered_at == received[2].delivered_at == 0.7
        assert net.transport_stats.batches == 2
        assert net.transport_stats.flush_size == 1
        assert net.transport_stats.flush_window == 1

    def test_distinct_kinds_do_not_share_batches(self, sim, net):
        received = wired_pair(net)
        net.send("a", "b", "d", kind="data")
        net.send("a", "b", "g", kind="gossip")
        sim.run_for(1.0)
        assert net.transport_stats.batches == 2

    def test_unconfigured_host_keeps_per_datagram_path(self, sim, net):
        received = wired_pair(net)
        net.send("b", "a", "reverse")  # b has no transport config
        sim.run_for(1.0)
        assert net.transport_stats.batches == 0
        assert net.stats.delivered == 0  # a has no receiver → dropped
        assert net.stats.dropped == 1

    def test_default_config_covers_every_host(self, sim, net):
        received = wired_pair(net)
        net.configure_transport(0.1, 8)  # host=None → default
        assert net.transport_for("b").coalesce_window == 0.1
        # An explicit per-host config wins over the default.
        assert net.transport_for("a").coalesce_window == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(coalesce_window=-0.1)
        with pytest.raises(ValueError):
            TransportConfig(max_batch=0)


class TestPerDatagramSemantics:
    def test_loss_rolls_match_uncoalesced_exactly(self):
        """Same seed, same send sequence → identical per-datagram fate."""
        outcomes = []
        for coalesce in (False, True):
            sim = Simulator(seed=1234)
            net = Network(sim, default_latency=0.5)
            received = []
            net.add_host("a")
            net.add_host("b", receiver=lambda d: received.append(d))
            net.link("a", "b", loss_probability=0.4)
            if coalesce:
                net.configure_transport(0.2, 16, host="a")
            for i in range(50):
                net.send("a", "b", i)
                sim.run_for(0.01)
            sim.run_for(5.0)
            outcomes.append(
                (
                    [d.payload for d in received],
                    net.stats.sent,
                    net.stats.dropped,
                    net.stats.delivered,
                )
            )
        assert outcomes[0] == outcomes[1]
        assert 0 < outcomes[0][2] < 50  # the loss roll actually bit

    def test_partition_mid_window_blocks_only_later_sends(self, sim, net):
        received = wired_pair(net, window=0.3)
        net.send("a", "b", "pre")
        sim.run_for(0.1)
        net.partition({"a"}, {"b"})
        net.send("a", "b", "post")  # blocked at send time
        sim.run_for(2.0)
        # The pre-partition datagram was already cleared and in flight;
        # only the post-partition send is blocked.
        assert [d.payload for d in received] == ["pre"]
        assert net.stats.blocked_partition == 1
        assert net.stats.delivered == 1

    def test_host_offline_mid_batch_drops_remainder(self, sim, net):
        received = wired_pair(net, window=0.0)

        def receive_then_die(d):
            received.append(d)
            net.host("b").online = False

        net.set_receiver("b", receive_then_die)
        for i in range(4):
            net.send("a", "b", i)
        sim.run_for(1.0)
        # First delivery knocks the host offline; the rest of the batch
        # drops per datagram, exactly as individual events would.
        assert [d.payload for d in received] == [0]
        assert net.stats.delivered == 1
        assert net.stats.dropped == 3

    def test_offline_before_flush_drops_whole_batch(self, sim, net):
        received = wired_pair(net, window=0.2)
        net.send("a", "b", "x")
        net.send("a", "b", "y")
        net.host("b").online = False
        sim.run_for(1.0)
        assert received == []
        assert net.stats.dropped == 2
        assert net.transport_stats.batches == 1  # flush still accounted

    def test_send_during_flush_opens_fresh_batch(self, sim, net):
        """A receiver replying to the same key mid-flush must not append
        to the firing batch (its deadline already passed)."""
        received = wired_pair(net, window=0.1)
        net.add_host("c", receiver=lambda d: received.append(d))
        net.configure_transport(0.1, 64, host="b")
        replies = []
        net.set_receiver(
            "b",
            lambda d: (received.append(d), net.send("b", "a", f"re:{d.payload}")),
        )
        net.set_receiver("a", lambda d: replies.append(d.payload))
        net.send("a", "b", "ping")
        sim.run_for(3.0)
        assert [d.payload for d in received] == ["ping"]
        assert replies == ["re:ping"]

    def test_delivered_bytes_ledger_counts_only_deliveries(self, sim, net):
        received = wired_pair(net, window=0.0)
        net.link("a", "b", loss_probability=1.0, symmetric=False)
        net.send("a", "b", "lost", kind="gossip", size=100)
        net.link("a", "b", loss_probability=0.0, symmetric=False)
        net.send("a", "b", "kept", kind="gossip", size=40)
        sim.run_for(1.0)
        assert net.stats.bytes_by_kind["gossip"] == 140  # attempted
        assert net.stats.bytes_delivered_by_kind["gossip"] == 40
