"""Shared fixtures: the paper's canonical contexts and small worlds."""

from __future__ import annotations

import pytest

from repro.audit import AuditLog
from repro.ifc import PrivilegeSet, SecurityContext, TagRegistry
from repro.iot import IoTWorld
from repro.middleware import Component, EndpointKind, MessageBus, MessageType
from repro.sim import Simulator


@pytest.fixture
def ann_device() -> SecurityContext:
    """Ann's hospital-issued home monitoring sensors (Fig. 4)."""
    return SecurityContext.of(["medical", "ann"], ["hosp-dev", "consent"])


@pytest.fixture
def ann_analyser() -> SecurityContext:
    """Ann's hospital-based data analyser (Fig. 4)."""
    return SecurityContext.of(["medical", "ann"], ["hosp-dev", "consent"])


@pytest.fixture
def zeb_device() -> SecurityContext:
    """Zeb's third-party home monitoring sensors (Fig. 4)."""
    return SecurityContext.of(["medical", "zeb"], ["zeb-dev", "consent"])


@pytest.fixture
def registry() -> TagRegistry:
    return TagRegistry()


@pytest.fixture
def audit() -> AuditLog:
    return AuditLog()


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def world() -> IoTWorld:
    return IoTWorld(seed=1234)


@pytest.fixture
def reading_type() -> MessageType:
    return MessageType.simple("reading", value=float)


def make_component(
    name: str,
    context: SecurityContext,
    reading_type: MessageType,
    owner: str = "op",
) -> Component:
    """A component with one source and one sink endpoint."""
    component = Component(name, context, owner=owner)
    component.add_endpoint("out", EndpointKind.SOURCE, reading_type)
    component.add_endpoint("in", EndpointKind.SINK, reading_type)
    return component
