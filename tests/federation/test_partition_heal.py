"""Partition healing: anti-entropy re-converges once the network heals.

The ROADMAP's PR 4 follow-up: gossip is self-healing by construction —
``wants`` are always computed from what a node *really* stores — so a
federation split by a :meth:`~repro.net.network.Network.partition`
must make no cross-boundary progress while split, and must converge
(vocabularies, confirmations *and* checkpoint pins) after
:meth:`~repro.net.network.Network.heal_partitions`, with no state reset
or special-case recovery code.
"""

import pytest

from repro.audit.records import RecordKind
from repro.audit.spine import AuditSpine
from repro.deploy import Deployment
from repro.federation import GossipMesh
from repro.ifc import SecurityContext, TagInterner, WireCodec


def split_mesh(n=4, tags_per_node=5, interval=0.5, seed=3):
    """N codec-only members, partitioned into two halves."""
    from repro.net import Network
    from repro.sim import Simulator

    sim = Simulator(seed=seed)
    net = Network(sim, default_latency=0.001)
    mesh = GossipMesh(net, sim, interval=interval)
    spines = {}
    for i in range(n):
        interner = TagInterner()
        for t in range(tags_per_node):
            interner.intern(f"d{i}:tag{t}")
        host = f"host-{i:02d}"
        spine = AuditSpine(name=f"audit@{host}", checkpoint_every=1)
        spine.append(RecordKind.CUSTOM, host, "", {"boot": True})
        spine.checkpoint()
        spines[host] = spine
        mesh.join(host, WireCodec(interner), spine=spine)
    hosts = sorted(spines)
    left, right = set(hosts[: n // 2]), set(hosts[n // 2:])
    net.partition(left, right)
    return mesh, sim, net, left, right


class TestPartitionHealing:
    def test_no_cross_boundary_progress_while_partitioned(self):
        mesh, sim, net, left, right = split_mesh()
        for __ in range(8):
            mesh._round()
            sim.run_for(mesh.interval)
        assert not mesh.converged()
        assert net.stats.blocked_partition > 0
        # Within each side, everything converged; across, nothing moved.
        for node in mesh.nodes():
            side = left if node.host in left else right
            far = right if node.host in left else left
            for peer in sorted(side - {node.host}):
                assert node.version_of(peer) >= mesh.node(peer).baseline
            for peer in sorted(far):
                assert node.version_of(peer) == 0

    def test_vocabularies_reconverge_after_heal(self):
        mesh, sim, net, left, right = split_mesh()
        for __ in range(4):
            mesh._round()
            sim.run_for(mesh.interval)
        net.heal_partitions()
        rounds = mesh.run_until_converged(max_rounds=16)
        assert mesh.converged()
        assert rounds >= 1

    def test_checkpoint_pins_cross_the_healed_boundary(self):
        mesh, sim, net, left, right = split_mesh()
        for __ in range(4):
            mesh._round()
            sim.run_for(mesh.interval)
        some_left = sorted(left)[0]
        some_right = sorted(right)[0]
        assert some_right not in mesh.node(some_left).pinboard.domains()
        net.heal_partitions()
        mesh.run_until_converged(max_rounds=16)
        for __ in range(2):  # claims ride every round; give them two more
            mesh._round()
            sim.run_for(mesh.interval)
        assert some_right in mesh.node(some_left).pinboard.domains()
        spines = {node.host: node.spine for node in mesh.nodes()}
        for node in mesh.nodes():
            verdicts = node.pinboard.verify(spines)
            assert all(v == "ok" for v in verdicts.values()), verdicts

    def test_deployment_facade_survives_partition_and_heal(self):
        """The substrate-level path: masked traffic resumes after heal."""
        from repro.middleware import Message, MessageType

        MT = MessageType.simple("ph", value=float)
        ctx = SecurityContext.of(["shared"], [])
        deploy = Deployment(seed=5, mesh_interval=0.5)
        alpha = deploy.node("alpha").with_mesh()
        beta = deploy.node("beta").with_mesh()
        sender = alpha.launch("s", ctx, handler=lambda a, m: None)
        got = []
        beta.launch("r", ctx, handler=lambda a, m: got.append(m))
        deploy.network.partition({"alpha"}, {"beta"})
        with pytest.raises(RuntimeError):
            deploy.converge(max_rounds=4)
        deploy.network.heal_partitions()
        deploy.converge(max_rounds=16)
        alpha.substrate.send(
            sender, beta.substrate, "r", Message(MT, {"value": 1.0}, context=ctx)
        )
        deploy.run(seconds=5)
        assert len(got) == 1
        assert alpha.substrate.stats.sent_masked == 1
