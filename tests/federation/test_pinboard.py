"""Cross-domain checkpoint pinning: claims, conflicts, verification."""

import pytest

from repro.audit.distributed import CheckpointClaim, FederationPinboard
from repro.audit.records import RecordKind
from repro.audit.spine import AuditSpine


def spine_with(n_records=6, name="audit@dom", checkpoint_every=2):
    spine = AuditSpine(name=name, checkpoint_every=checkpoint_every)
    for i in range(n_records):
        spine.append(RecordKind.CUSTOM, f"actor-{i % 2}", "", {"i": i})
        spine.drain()
    return spine


class TestClaims:
    def test_claim_matches_what_verify_reads_back(self):
        spine = spine_with()
        claim = CheckpointClaim.of("dom", spine)
        assert claim.position == spine.checkpoint_position
        assert spine.checkpoint_digest_at(claim.position) == claim.head_digest

    def test_claim_of_empty_spine_is_position_zero_and_stable(self):
        spine = AuditSpine(name="audit@empty")
        claim = CheckpointClaim.of("dom", spine)
        assert claim.position == 0
        board = FederationPinboard("peer")
        board.pin(claim)
        assert board.verify({"dom": spine}) == {"dom": "ok"}

    def test_claim_works_through_an_emitter(self):
        spine = spine_with()
        emitter = spine.emitter("bus")
        claim = CheckpointClaim.of("dom", emitter)
        assert claim.position == spine.checkpoint_position


class TestPinning:
    def test_identical_repin_is_accepted(self):
        spine = spine_with()
        board = FederationPinboard("peer")
        claim = CheckpointClaim.of("dom", spine)
        assert board.pin(claim)
        assert board.pin(claim)
        assert len(board) == 1
        assert board.conflicts == []

    def test_conflicting_claim_for_same_position_is_rejected(self):
        board = FederationPinboard("peer")
        assert board.pin(CheckpointClaim("dom", 3, "aa" * 32))
        assert not board.pin(CheckpointClaim("dom", 3, "bb" * 32))
        assert len(board.conflicts) == 1
        conflict = board.conflicts[0]
        assert conflict.domain == "dom" and conflict.position == 3
        # The first-pinned digest stays authoritative.
        assert board.pinned("dom").head_digest == "aa" * 32

    def test_own_domain_claims_are_ignored(self):
        board = FederationPinboard("dom")
        assert board.pin(CheckpointClaim("dom", 1, "aa" * 32))
        assert len(board) == 0

    def test_pinned_returns_freshest(self):
        board = FederationPinboard("peer")
        board.pin(CheckpointClaim("dom", 1, "aa" * 32))
        board.pin(CheckpointClaim("dom", 5, "cc" * 32))
        board.pin(CheckpointClaim("dom", 3, "bb" * 32))
        assert board.pinned("dom").position == 5
        assert [c.position for c in board.claims("dom")] == [1, 3, 5]


class TestVerification:
    def _pinned_board(self, spine):
        board = FederationPinboard("peer")
        board.pin(CheckpointClaim.of("dom", spine))
        return board

    def test_honest_growth_stays_ok(self):
        spine = spine_with()
        board = self._pinned_board(spine)
        for i in range(4):
            spine.append(RecordKind.CUSTOM, "actor-0", "", {"later": i})
        spine.checkpoint()
        assert board.verify({"dom": spine}) == {"dom": "ok"}

    def test_rewritten_history_is_tampered(self):
        spine = spine_with()
        board = self._pinned_board(spine)
        # A re-chained forgery with the same checkpoint position but
        # different content: locally consistent, globally caught.
        forged = spine_with(n_records=6, checkpoint_every=2)
        forged._segments["main"].records[0].detail["i"] = 99  # pre-rechain
        rebuilt = AuditSpine(name="audit@dom", checkpoint_every=10**9)
        for record in forged:
            rebuilt.emit("main", record.kind, record.actor, record.subject,
                         record.detail)
            rebuilt.drain()
            if rebuilt.checkpoint_position < spine.checkpoint_position:
                rebuilt.checkpoint()
        assert rebuilt.verify()
        assert board.verify({"dom": rebuilt}) == {"dom": "tampered"}

    def test_truncated_history_is_truncated(self):
        spine = spine_with()
        board = self._pinned_board(spine)
        shorter = AuditSpine(name="audit@dom")
        shorter.append(RecordKind.CUSTOM, "actor-0", "", {})
        shorter.checkpoint()
        assert board.verify({"dom": shorter}) == {"dom": "truncated"}

    def test_unpinned_domain_is_reported(self):
        board = FederationPinboard("peer")
        assert board.verify({"ghost": spine_with()}) == {"ghost": "unpinned"}

    def test_owner_spine_is_skipped(self):
        spine = spine_with()
        board = FederationPinboard("peer")
        assert board.verify({"peer": spine}) == {}

    def test_older_pruned_positions_stay_vouched_while_fresh_pin_checks(self):
        # A domain prunes honestly; an old pin predates the prune but a
        # fresher pin is still checkable — the pruned position is
        # vouched for by its pin, the checkable one endorses the chain.
        spine = spine_with(n_records=8, checkpoint_every=1)
        board = self._pinned_board(spine)
        prune_cutoff = 100.0
        clock = {"now": 0.0}
        spine._clock = lambda: clock["now"]
        clock["now"] = 200.0
        for i in range(4):
            spine.append(RecordKind.CUSTOM, "actor-1", "", {"late": i})
            spine.drain()
            spine.checkpoint()
        board.pin(CheckpointClaim.of("dom", spine))
        spine.prune_before(prune_cutoff)
        assert spine.checkpoint_digest_at(1) is None  # old pin really pruned
        assert board.verify({"dom": spine}) == {"dom": "ok"}

    def test_pruning_past_every_pin_is_unverifiable_not_ok(self):
        # The prune-evasion attack: rewrite history, grow past every
        # pinned position, prune everything pinned.  Nothing is
        # checkable, which must withhold endorsement — from digests
        # alone it cannot be told apart from an aggressive honest prune.
        spine = spine_with()
        board = self._pinned_board(spine)
        evader = AuditSpine(name="audit@dom", checkpoint_every=1)
        for i in range(spine.checkpoint_position + 2):
            evader.append(RecordKind.CUSTOM, "innocent", "", {"i": i})
            evader.drain()
            evader.checkpoint()
        assert evader.checkpoint_position > spine.checkpoint_position
        evader.prune_before(float("inf"))
        assert evader.verify()  # locally consistent
        assert board.verify({"dom": evader}) == {"dom": "unverifiable"}


class TestPinRetention:
    """The pin-retention policy: keep every k-th position plus the newest."""

    def claim(self, position, digest="aa"):
        return CheckpointClaim("dom", position, digest * 32)

    def test_retention_keeps_every_kth_and_the_newest(self):
        board = FederationPinboard("peer", retain_every=3)
        for position in range(1, 9):  # 1..8, newest is 8
            assert board.pin(self.claim(position))
        kept = [c.position for c in board.claims("dom")]
        assert kept == [3, 6, 8]  # multiples of 3, plus the newest
        assert board.stats_retired == 5

    def test_newest_pin_always_survives_between_multiples(self):
        board = FederationPinboard("peer", retain_every=4)
        board.pin(self.claim(4))
        board.pin(self.claim(5))
        assert [c.position for c in board.claims("dom")] == [4, 5]
        board.pin(self.claim(6))
        # 5 was only retained for being newest; 6 displaces it.
        assert [c.position for c in board.claims("dom")] == [4, 6]

    def test_retention_is_per_domain(self):
        board = FederationPinboard("peer", retain_every=2)
        board.pin(self.claim(1))
        board.pin(CheckpointClaim("other", 1, "cc" * 32))
        assert [c.position for c in board.claims("dom")] == [1]
        assert [c.position for c in board.claims("other")] == [1]

    def test_retained_pins_still_catch_tampering(self):
        spine = spine_with(n_records=10, checkpoint_every=1)
        board = FederationPinboard("peer", retain_every=2)
        tracked = AuditSpine(name="audit@dom", checkpoint_every=1)
        for i in range(10):
            tracked.append(RecordKind.CUSTOM, "actor", "", {"i": i})
            tracked.drain()
            tracked.checkpoint()
            board.pin(CheckpointClaim.of("dom", tracked))
        assert board.verify({"dom": tracked}) == {"dom": "ok"}
        # A re-chained replay changes the digest at every retained pin.
        forged = AuditSpine(name="audit@dom", checkpoint_every=1)
        for i in range(tracked.checkpoint_position):
            forged.append(RecordKind.CUSTOM, "actor", "", {"i": i, "x": 1})
            forged.drain()
            forged.checkpoint()
        assert board.verify({"dom": forged}) == {"dom": "tampered"}

    def test_conflict_at_a_retired_position_goes_undetected_by_design(self):
        # The documented trade: a retired pin can no longer contradict a
        # late conflicting claim; the position simply re-pins.
        board = FederationPinboard("peer", retain_every=3)
        for position in (1, 2, 3, 4):
            board.pin(self.claim(position))
        assert board.pin(self.claim(2, digest="bb"))  # 2 was retired
        assert board.conflicts == []
        # ...whereas a retained position still conflicts.
        assert not board.pin(self.claim(3, digest="bb"))
        assert len(board.conflicts) == 1

    def test_retain_every_must_be_positive(self):
        with pytest.raises(ValueError):
            FederationPinboard("peer", retain_every=0)

    def test_default_keeps_everything(self):
        board = FederationPinboard("peer")
        for position in range(1, 20):
            board.pin(self.claim(position))
        assert len(board.claims("dom")) == 19
        assert board.stats_retired == 0
