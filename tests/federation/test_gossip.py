"""Federation plane: gossip mesh convergence, piggybacking, pinning."""

import math

import pytest

from repro.audit.spine import AuditSpine
from repro.federation import GossipDigest, GossipMesh
from repro.ifc import SecurityContext, TagInterner, WireCodec
from repro.middleware import Message, MessageType, MessagingSubstrate
from repro.middleware.discovery import ResourceDiscovery
from repro.net import Network
from repro.sim import Simulator


def build_mesh(n, tags_per_node=6, interval=0.5, latency=0.001, seed=1):
    """N codec-only members over private interners with disjoint tags."""
    sim = Simulator(seed=seed)
    net = Network(sim, default_latency=latency)
    mesh = GossipMesh(net, sim, interval=interval)
    for i in range(n):
        interner = TagInterner()
        for t in range(tags_per_node):
            interner.intern(f"d{i}:tag{t}")
        mesh.join(f"host-{i:02d}", WireCodec(interner))
    return mesh, sim, net


class TestConvergence:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_converges_within_log_bound(self, n):
        mesh, sim, net = build_mesh(n)
        rounds = mesh.run_until_converged(max_rounds=32)
        assert mesh.converged()
        assert rounds <= math.ceil(math.log2(n)) + 2

    def test_all_vocabularies_identical_after_convergence(self):
        mesh, sim, net = build_mesh(4)
        mesh.run_until_converged()
        # Every node holds every origin's full brought table, and the
        # interner tag *sets* are identical federation-wide.
        vocabularies = [
            {t.qualified for t in node.codec.interner.tags_of(
                (1 << len(node.codec.interner)) - 1)}
            for node in mesh.nodes()
        ]
        assert all(v == vocabularies[0] for v in vocabularies[1:])
        for node in mesh.nodes():
            for other in mesh.nodes():
                if node is other:
                    continue
                assert node.version_of(other.host) >= other.baseline

    def test_every_ordered_pair_masks_and_round_trips(self):
        mesh, sim, net = build_mesh(3)
        mesh.run_until_converged()
        for node in mesh.nodes():
            mask = (1 << node.baseline) - 1  # everything this node brought
            for other in mesh.nodes():
                if node is other:
                    continue
                encoded = node.codec.encode_masks(other.host, mask)
                assert encoded is not None, "pair must be masking"
                decoded = other.codec.decode_mask(node.host, encoded[0])
                assert {
                    t.qualified for t in other.codec.interner.tags_of(decoded)
                } == {t.qualified for t in node.codec.interner.tags_of(mask)}

    def test_gossip_traffic_is_counted_by_kind(self):
        mesh, sim, net = build_mesh(3)
        mesh.run_until_converged()
        assert net.stats.gossip_sent > 0
        assert net.stats.bytes_by_kind["gossip"] == mesh.control_bytes()

    def test_scheduled_rounds_converge_in_background(self):
        mesh, sim, net = build_mesh(4, interval=1.0)
        mesh.start()
        sim.run_for(10.0)
        assert mesh.converged()
        mesh.stop()
        rounds = mesh.stats.rounds
        sim.run_for(5.0)
        assert mesh.stats.rounds == rounds  # stop() really stops

    def test_late_joiner_catches_up(self):
        mesh, sim, net = build_mesh(3)
        mesh.run_until_converged()
        interner = TagInterner()
        for t in range(4):
            interner.intern(f"late:tag{t}")
        mesh.join("host-99", WireCodec(interner))
        assert not mesh.converged()
        mesh.run_until_converged(max_rounds=16)
        late = mesh.node("host-99")
        assert late.version_of("host-00") >= mesh.node("host-00").baseline


class TestDeltaRobustness:
    def test_gapped_delta_is_dropped_not_guessed(self):
        mesh, sim, net = build_mesh(2)
        a, b = mesh.nodes()
        from repro.ifc.wire import TagBlock

        block = TagBlock.compress(("d9:x", "d9:y"), base=10)  # gap: holds 0
        from repro.federation import GossipDelta

        b.handle_delta(GossipDelta("host-09", {}, {"host-09": block}))
        assert b.version_of("host-09") == 0
        assert b.stats.delta_gaps == 1

    def test_duplicate_delta_is_idempotent(self):
        mesh, sim, net = build_mesh(2)
        a, b = mesh.nodes()
        from repro.federation import GossipDelta
        from repro.ifc.wire import TagBlock

        block = TagBlock.compress(a.tags_known(a.host), base=0)
        delta = GossipDelta(a.host, {}, {a.host: block})
        b.handle_delta(delta)
        version = b.version_of(a.host)
        b.handle_delta(delta)
        assert b.version_of(a.host) == version


class TestDiscoveryPiggyback:
    def test_find_introduces_querier_to_result_hosts(self, reading_type):
        from tests.conftest import make_component

        mesh, sim, net = build_mesh(3)
        rdc = ResourceDiscovery()
        rdc.attach_federation(mesh)
        remote = make_component("remote-svc", SecurityContext.public(), reading_type)
        rdc.register(remote, {"kind": "svc"}, host="host-01")
        assert mesh.stats.introductions == 0
        found = rdc.find(querier_host="host-00", kind="svc")
        assert [c.name for c in found] == ["remote-svc"]
        assert mesh.stats.introductions == 1
        sim.drain()
        # One discovery-triggered exchange, no scheduled rounds: the
        # querier and the discovered host have already synced.
        a, b = mesh.node("host-00"), mesh.node("host-01")
        assert a.version_of("host-01") >= b.baseline
        assert b.version_of("host-00") >= a.baseline
        assert a.codec.peer("host-01").masking
        assert rdc.stats.introductions == 1

    def test_find_without_querier_host_introduces_nothing(self, reading_type):
        from tests.conftest import make_component

        mesh, sim, net = build_mesh(2)
        rdc = ResourceDiscovery()
        rdc.attach_federation(mesh)
        remote = make_component("remote-svc", SecurityContext.public(), reading_type)
        rdc.register(remote, {"kind": "svc"}, host="host-01")
        rdc.find(kind="svc")
        assert mesh.stats.introductions == 0


class TestSubstrateIntegration:
    def _substrate_mesh(self, n, interval=0.5):
        from repro.cloud import Machine

        sim = Simulator(seed=3)
        net = Network(sim, default_latency=0.001)
        mesh = GossipMesh(net, sim, interval=interval)
        subs = []
        for i in range(n):
            machine = Machine(f"fed-sub{i}", clock=sim.now)
            substrate = MessagingSubstrate(machine, net)
            mesh.join_substrate(substrate)
            subs.append(substrate)
        return mesh, sim, net, subs

    def test_first_data_message_masks_without_any_handshake(self):
        mesh, sim, net, subs = self._substrate_mesh(3)
        ctx = SecurityContext.of(["fed:a", "fed:b"], [])
        mesh.run_until_converged(max_rounds=16)
        src, dst = subs[0], subs[2]
        p_src = src.machine.launch("tx", ctx)
        p_dst = dst.machine.launch("rx", ctx)
        got = []
        src.register(p_src, lambda a, m: None)
        dst.register(p_dst, lambda a, m: got.append(m))
        mtype = MessageType.simple("fed-ping", value=float)
        assert src.send(p_src, dst, "rx", Message(mtype, {"value": 1.0}, context=ctx))
        sim.drain()
        assert src.stats.sent_masked == 1
        assert src.stats.sent_tagset == 0
        assert net.stats.handshake_sent == 0  # gossip replaced the 3-step
        assert len(got) == 1
        assert {t.qualified for t in got[0].context.secrecy.tags} == {
            "fed:a", "fed:b",
        }

    def test_checkpoint_claims_cross_pin_through_gossip(self):
        from repro.audit.records import RecordKind

        mesh, sim, net, subs = self._substrate_mesh(3)
        # Give each spine some history before gossiping.
        for substrate in subs:
            substrate.audit.append(
                RecordKind.CUSTOM, substrate.machine.hostname, "", {"warm": True}
            )
        mesh.run_until_converged(max_rounds=16)
        boards = mesh.pinboards()
        hosts = sorted(boards)
        for host, board in boards.items():
            assert set(board.domains()) == set(hosts) - {host}
        verdicts = mesh.verify_federation()
        for host, view in verdicts.items():
            assert all(v == "ok" for v in view.values()), (host, view)

    def test_tampered_spine_detected_federation_wide(self):
        from repro.apps import censored_replay
        from repro.audit.records import RecordKind

        mesh, sim, net, subs = self._substrate_mesh(3)
        for substrate in subs:
            for i in range(8):
                substrate.audit.append(
                    RecordKind.FLOW_DENIED if i % 4 == 0 else RecordKind.CUSTOM,
                    substrate.machine.hostname,
                    "peer",
                    {"i": i},
                )
            substrate.machine.audit.checkpoint()
        mesh.run_until_converged(max_rounds=16)
        victim = mesh.node(subs[1].machine.hostname)
        forged = censored_replay(victim.spine)
        assert forged.verify()  # locally consistent...
        victim.spine = forged
        verdicts = mesh.verify_federation()
        for host, view in verdicts.items():
            if host == subs[1].machine.hostname:
                continue
            assert view[subs[1].machine.hostname] == "tampered"
