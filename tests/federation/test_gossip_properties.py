"""Property: gossip converges all N codecs to identical vocabularies —
every pair masking — regardless of exchange ordering, duplicate
delivery, and dropped control datagrams.

The mesh's recovery story differs from the pairwise wire plane's
REOFFER counter but serves the same role: every anti-entropy round
re-offers the digest, and a node's ``wants`` are always computed from
what it *really* stores, so dropped replies/deltas only delay
convergence; duplicates are absorbed by max-merge and base-checked
extends.  The handlers are driven directly here (no network), which
lets hypothesis choose pairings, drops and duplications adversarially.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import MeshNode
from repro.ifc import TagInterner, WireCodec

TAG_POOL = [f"fed{i % 4}:tag{i}" for i in range(20)]


def build_nodes(tag_lists):
    nodes = []
    for i, tags in enumerate(tag_lists):
        interner = TagInterner()
        for t in tags:
            interner.intern(t)
        nodes.append(MeshNode(f"n{i}", WireCodec(interner)))
    return nodes


def baseline_converged(nodes):
    for node in nodes:
        for other in nodes:
            if node is other:
                continue
            if node.version_of(other.host) < other.baseline:
                return False
            state = node.codec.peer(other.host)
            if state.confirmed is None or state.confirmed < node.baseline:
                return False
    return True


@settings(max_examples=40, deadline=None)
@given(
    tag_lists=st.lists(
        st.lists(st.sampled_from(TAG_POOL), unique=True, max_size=8),
        min_size=2,
        max_size=5,
    ),
    chaos=st.data(),
)
def test_convergence_despite_drops_duplicates_and_orderings(tag_lists, chaos):
    nodes = build_nodes(tag_lists)
    n = len(nodes)
    # Enough rounds that even adversarial loss cannot starve anti-entropy
    # (each round is an independent chance to exchange).
    max_rounds = 8 * (math.ceil(math.log2(n)) + 2)

    for round_no in range(max_rounds):
        lossy = round_no < max_rounds // 2  # last rounds run clean
        for index, node in enumerate(nodes):
            offset = chaos.draw(
                st.integers(min_value=1, max_value=n - 1), label="partner"
            )
            partner = nodes[(index + offset) % n]
            digest = node.make_digest()
            if lossy and chaos.draw(st.booleans(), label="drop_digest"):
                continue
            reply = partner.handle_digest(digest)
            if lossy and chaos.draw(st.booleans(), label="dup_reply"):
                node.handle_reply(reply)
            if lossy and chaos.draw(st.booleans(), label="drop_reply"):
                continue
            delta = node.handle_reply(reply)
            if delta is None:
                continue
            if lossy and chaos.draw(st.booleans(), label="drop_delta"):
                continue
            partner.handle_delta(delta)
            if lossy and chaos.draw(st.booleans(), label="dup_delta"):
                partner.handle_delta(delta)
        if baseline_converged(nodes):
            break

    assert baseline_converged(nodes)
    # Identical vocabularies: every interner ends holding the same tag set.
    vocabularies = [
        {t.qualified for t in node.codec.interner.tags_of(
            (1 << len(node.codec.interner)) - 1)}
        for node in nodes
    ]
    assert all(v == vocabularies[0] for v in vocabularies[1:])
    # Every ordered pair masks the sender's brought vocabulary, and it
    # round-trips to exactly the same tag set.
    for node in nodes:
        mask = (1 << node.baseline) - 1
        for other in nodes:
            if node is other:
                continue
            encoded = node.codec.encode_masks(other.host, mask)
            assert encoded is not None
            decoded = other.codec.decode_mask(node.host, encoded[0])
            assert {
                t.qualified for t in other.codec.interner.tags_of(decoded)
            } == {t.qualified for t in node.codec.interner.tags_of(mask)}
