"""Substrate wire plane: handshake, mask envelopes, parity, misrouting.

These run the real transfer path — two machines, the simulated network,
handshake datagrams and all — where `tests/ifc/test_wire.py` exercises
the codec state machine directly.
"""

import pytest

from repro.audit import RecordKind
from repro.cloud import Machine
from repro.errors import NetworkError
from repro.ifc import SecurityContext, as_tags
from repro.middleware import (
    AttributeSpec,
    MaskEnvelope,
    Message,
    MessageType,
    MessagingSubstrate,
    TagSetEnvelope,
)
from repro.net import Network
from repro.sim import Simulator

READING = MessageType.simple("reading", value=float)


def _pair(sim, enforce=True, wire_masks=True):
    net = Network(sim)
    m1 = Machine("wh1", clock=sim.now)
    m2 = Machine("wh2", clock=sim.now)
    s1 = MessagingSubstrate(m1, net, enforce=enforce, wire_masks=wire_masks)
    s2 = MessagingSubstrate(m2, net, enforce=enforce, wire_masks=wire_masks)
    return net, m1, m2, s1, s2


class TestHandshake:
    def test_first_message_falls_back_then_masks(self, sim):
        net, m1, m2, s1, s2 = _pair(sim)
        ctx = SecurityContext.of(["w-s"], ["w-i"])
        p1 = m1.launch("a", ctx)
        p2 = m2.launch("b", ctx)
        s1.register(p1, lambda a, m: None)
        got = []
        s2.register(p2, lambda a, m: got.append(m))

        s1.send(p1, s2, "b", Message(READING, {"value": 1.0}, context=ctx))
        assert s1.stats.sent_tagset == 1 and s1.stats.sent_masked == 0
        sim.drain()  # handshake completes alongside delivery

        s1.send(p1, s2, "b", Message(READING, {"value": 2.0}, context=ctx))
        sim.drain()
        assert s1.stats.sent_masked == 1
        assert len(got) == 2
        assert got[0].context == ctx and got[1].context == ctx
        assert net.stats.handshake_sent >= 3  # HELLO, ACK, FIN
        # Handshake datagrams are sized (compressed tables), so the
        # control-plane byte budget is observable per traffic kind.
        assert net.stats.bytes_by_kind["handshake"] > 0
        assert any(r.kind == RecordKind.WIRE_HANDSHAKE for r in m1.audit)
        assert any(r.kind == RecordKind.WIRE_HANDSHAKE for r in m2.audit)

    def test_post_handshake_envelopes_carry_masks_not_tag_sets(self, sim):
        net, m1, m2, s1, s2 = _pair(sim)
        ctx = SecurityContext.of(["w-mask-only"], [])
        p1 = m1.launch("a", ctx)
        p2 = m2.launch("b", ctx)
        s1.register(p1, lambda a, m: None)
        s2.register(p2, lambda a, m: None)
        s1.send(p1, s2, "b", Message(READING, {"value": 0.0}, context=ctx))
        sim.drain()

        kinds = []
        original = s2._receive

        def spy(datagram):
            kinds.append(type(datagram.payload).__name__)
            original(datagram)

        net.set_receiver("wh2", spy)
        for i in range(5):
            s1.send(p1, s2, "b", Message(READING, {"value": float(i)}, context=ctx))
        sim.drain()
        assert kinds == ["MaskEnvelope"] * 5
        assert s2.stats.delivered == 6

    def test_wire_masks_disabled_stays_on_tag_sets(self, sim):
        net, m1, m2, s1, s2 = _pair(sim, wire_masks=False)
        ctx = SecurityContext.of(["w-off"], [])
        p1 = m1.launch("a", ctx)
        p2 = m2.launch("b", ctx)
        s1.register(p1, lambda a, m: None)
        s2.register(p2, lambda a, m: None)
        for i in range(3):
            s1.send(p1, s2, "b", Message(READING, {"value": float(i)}, context=ctx))
            sim.drain()
        assert s1.stats.sent_tagset == 3 and s1.stats.sent_masked == 0
        assert net.stats.handshake_sent == 0
        assert s2.stats.delivered == 3

    def test_new_tag_triggers_table_sync_not_mislabel(self, sim):
        net, m1, m2, s1, s2 = _pair(sim)
        base = SecurityContext.of(["w-base"], [])
        p1 = m1.launch("a", base)
        p2 = m2.launch("b", base)
        s1.register(p1, lambda a, m: None)
        got = []
        s2.register(p2, lambda a, m: got.append(m))
        s1.send(p1, s2, "b", Message(READING, {"value": 0.0}, context=base))
        sim.drain()
        assert s1.stats.sent_masked == 0 and s1.stats.sent_tagset == 1

        # A tag interned only after the handshake: the envelope must fall
        # back to tag sets and ship a table delta — never guess at bits.
        late = base.add_secrecy("w-late")
        p1.security = late
        p2.security = late  # receiver may take the new tag
        s1.send(p1, s2, "b", Message(READING, {"value": 1.0}, context=late))
        assert s1.stats.table_syncs == 1
        assert s1.stats.sent_tagset == 2
        sim.drain()
        assert any(r.kind == RecordKind.TABLE_SYNC for r in m1.audit)
        assert any(r.kind == RecordKind.TABLE_SYNC for r in m2.audit)

        # Delta acked: the same label now travels as a mask and decodes
        # to the identical context.
        s1.send(p1, s2, "b", Message(READING, {"value": 2.0}, context=late))
        sim.drain()
        assert s1.stats.sent_masked == 1
        assert len(got) == 3
        assert got[2].context == late

    def test_undecodable_mask_envelope_dropped_and_audited(self, sim):
        net, m1, m2, s1, s2 = _pair(sim)
        p2 = m2.launch("b")
        s2.register(p2, lambda a, m: None)
        # A mask envelope from a host s2 never handshaked with.
        net.send(
            "wh1",
            "wh2",
            MaskEnvelope(
                source_host="wh1",
                source_process="rogue",
                dest_host="wh2",
                dest_process="b",
                type=READING,
                values={"value": 1.0},
                msg_id=999,
                sent_at=0.0,
                msg_secrecy_mask=0b1011,
                msg_integrity_mask=0,
                src_secrecy_mask=0b1011,
                src_integrity_mask=0,
                table_version=4,
            ),
        )
        sim.drain()
        assert s2.stats.dropped_undecodable == 1
        assert s2.stats.delivered == 0
        syncs = [r for r in m2.audit if r.kind == RecordKind.TABLE_SYNC]
        assert syncs and syncs[0].detail["step"] == "undecodable"


class TestParity:
    """Receiver-side re-check parity: the mask path must deny exactly
    the flows the tag-set path denies."""

    CASES = [
        (["p-a"], [], ["p-a"], []),               # equal: allowed
        (["p-a"], [], ["p-a", "p-b"], []),        # receiver dominates: allowed
        (["p-a", "p-b"], [], ["p-a"], []),        # secrecy leak: denied
        ([], ["p-i"], [], []),                    # integrity demanded: allowed
        ([], [], [], ["p-i"]),                    # receiver wants integrity: denied
        (["p-a"], ["p-i"], ["p-a"], ["p-i"]),     # equal both: allowed
    ]

    def _run(self, wire_masks):
        sim = Simulator(seed=7)
        net, m1, m2, s1, s2 = _pair(sim, wire_masks=wire_masks)
        outcomes = []
        for i, (src_s, src_i, dst_s, dst_i) in enumerate(self.CASES):
            src = SecurityContext.of(src_s, src_i)
            dst = SecurityContext.of(dst_s, dst_i)
            p1 = m1.launch(f"src{i}", src)
            p2 = m2.launch(f"dst{i}", dst)
            s1.register(p1, lambda a, m: None)
            s2.register(p2, lambda a, m: None)
            s1.send(p1, s2, f"dst{i}", Message(READING, {"value": 1.0}, context=src))
            sim.drain()  # handshake completes during the first case
            # Repeat on the (now possibly masked) steady-state path.
            s1.send(p1, s2, f"dst{i}", Message(READING, {"value": 2.0}, context=src))
            sim.drain()
            outcomes.append((s2.stats.delivered, s2.stats.denied_remote))
        return outcomes, s1.stats

    def test_mask_and_tagset_paths_deny_identically(self):
        masked_outcomes, masked_stats = self._run(wire_masks=True)
        tagset_outcomes, tagset_stats = self._run(wire_masks=False)
        assert masked_outcomes == tagset_outcomes
        assert masked_stats.sent_masked > 0       # the A-side really masked
        assert tagset_stats.sent_masked == 0

    def test_quenching_parity_over_masks(self, sim):
        net, m1, m2, s1, s2 = _pair(sim)
        typed = MessageType(
            "person",
            [
                AttributeSpec("name", str, extra_secrecy=as_tags(["p-C"])),
                AttributeSpec("country", str),
            ],
        )
        base = SecurityContext.of(["p-A"], [])
        p1 = m1.launch("a", base)
        p2 = m2.launch("b", base)
        s1.register(p1, lambda a, m: None)
        got = []
        s2.register(p2, lambda a, m: got.append(m))
        s1.send(p1, s2, "b", Message(typed, {"name": "Ann", "country": "UK"}, context=base))
        sim.drain()
        s1.send(p1, s2, "b", Message(typed, {"name": "Ann", "country": "UK"}, context=base))
        sim.drain()
        assert s1.stats.sent_masked == 1  # second message took the mask path
        assert len(got) == 2
        for msg in got:
            assert "name" not in msg.values       # C quenched on both paths
            assert msg.values["country"] == "UK"
        assert s2.stats.quenched_attributes == 2


    def test_translator_keyed_by_transport_source_not_envelope_header(self, sim):
        """A mask envelope is decoded through the table of the host that
        actually sent the datagram — a forged/forwarded source_host must
        not select another peer's translator (silent relabel)."""
        net, m1, m2, s1, s2 = _pair(sim)
        ctx = SecurityContext.of(["k-a"], [])
        p1 = m1.launch("a", ctx)
        p2 = m2.launch("b", ctx)
        s1.register(p1, lambda a, m: None)
        s2.register(p2, lambda a, m: None)
        s1.send(p1, s2, "b", Message(READING, {"value": 0.0}, context=ctx))
        sim.drain()  # wh2 now holds a translator for wh1

        net.add_host("wh3")  # never handshaked with wh2
        net.send(
            "wh3",
            "wh2",
            MaskEnvelope(
                source_host="wh1",  # header claims the handshaked peer
                source_process="a",
                dest_host="wh2",
                dest_process="b",
                type=READING,
                values={"value": 66.6},
                msg_id=1000,
                sent_at=0.0,
                msg_secrecy_mask=ctx.secrecy.mask,
                msg_integrity_mask=0,
                src_secrecy_mask=ctx.secrecy.mask,
                src_integrity_mask=0,
                table_version=1,
            ),
        )
        sim.drain()
        assert s2.stats.dropped_undecodable == 1
        assert s2.stats.delivered == 1  # only the legitimate message

    def test_quenched_substrate_delivery_audits_what_receiver_got(self, sim):
        """As on the bus: the flow-allowed record carries the effective
        context of the delivered (quenched) message, not the base."""
        net, m1, m2, s1, s2 = _pair(sim)
        typed = MessageType(
            "person",
            [
                AttributeSpec("name", str, extra_secrecy=as_tags(["q-pii"])),
                AttributeSpec("country", str, extra_secrecy=as_tags(["q-geo"])),
            ],
        )
        base = SecurityContext.of(["q-A"], [])
        p1 = m1.launch("a", base)
        p2 = m2.launch("b", base.add_secrecy("q-geo"))  # takes geo, not pii
        s1.register(p1, lambda a, m: None)
        got = []
        s2.register(p2, lambda a, m: got.append(m))
        s1.send(p1, s2, "b", Message(typed, {"name": "Ann", "country": "UK"}, context=base))
        sim.drain()
        assert s2.stats.quenched_attributes == 1

        flow = [r for r in m2.audit if r.kind == RecordKind.FLOW_ALLOWED][-1]
        assert flow.detail["quenched"] == ["name"]
        assert flow.source_context == got[0].effective_context()
        logged = {t.qualified for t in flow.source_context.secrecy}
        assert "local:q-geo" in logged and "local:q-pii" not in logged


class TestSatelliteFixes:
    def test_failed_send_does_not_count_as_sent(self, sim):
        """stats.sent must not include sends that raised before reaching
        the network — it is the F9/F10 denial-ratio denominator."""
        net, m1, m2, s1, s2 = _pair(sim)
        p1 = m1.launch("unregistered")
        with pytest.raises(NetworkError):
            s1.send(p1, s2, "b", Message(READING, {"value": 1.0}))
        assert s1.stats.sent == 0

    def test_unroutable_envelope_counted_and_audited(self, sim):
        net, m1, m2, s1, s2 = _pair(sim)
        p1 = m1.launch("a")
        s1.register(p1, lambda a, m: None)
        s1.send(p1, s2, "ghost", Message(READING, {"value": 1.0}))
        sim.drain()
        assert s2.stats.delivered == 0
        assert s2.stats.dropped_unroutable == 1
        records = [r for r in m2.audit if r.kind == RecordKind.MISDELIVERY]
        assert len(records) == 1
        assert records[0].actor == "wh1/a"
        assert records[0].subject == "wh2/ghost"
