"""Batched publish: amortised fan-out must keep per-message enforcement."""

from repro.audit.log import AuditLog
from repro.ifc import PrivilegeSet, SecurityContext
from repro.middleware.bus import MessageBus
from repro.middleware.component import Component, EndpointKind
from repro.middleware.message import MessageType

READING = MessageType.simple("reading", value=float)


def _wire(bus, ctx, n_sinks=2):
    sensor = Component(
        "sensor", ctx, owner="ann",
        privileges=PrivilegeSet.of(add_secrecy=["spike"]),
    )
    sensor.add_endpoint("out", EndpointKind.SOURCE, READING)
    bus.register(sensor)
    sinks = []
    for i in range(n_sinks):
        sink = Component(f"sink{i}", ctx, owner="ann")
        sink.add_endpoint("in", EndpointKind.SINK, READING)
        bus.register(sink)
        bus.connect("ann", sensor, "out", sink, "in")
        sinks.append(sink)
    return sensor, sinks


class TestPublishBatch:
    def test_batch_matches_repeated_publish(self):
        ctx = SecurityContext.of(["medical"], [])
        audit_a, audit_b = AuditLog(), AuditLog(buffer_size=64)
        bus_a, bus_b = MessageBus(audit=audit_a), MessageBus(audit=audit_b)
        sensor_a, sinks_a = _wire(bus_a, ctx)
        sensor_b, sinks_b = _wire(bus_b, ctx)
        batch = [{"value": float(i)} for i in range(10)]

        for values in batch:
            bus_a.publish(sensor_a, "out", **values)
        report = bus_b.publish_batch(sensor_b, "out", batch)

        assert report.delivered == bus_a.stats.delivered == 20
        assert [m.values for m in sinks_b[0].inbox] == [m.values for m in sinks_a[0].inbox]
        assert audit_b.pending == 0  # plane.flush() ran at batch end
        assert audit_a.verify() and audit_b.verify()

    def test_empty_batch_is_noop(self):
        bus = MessageBus()
        sensor, __ = _wire(bus, SecurityContext.public())
        report = bus.publish_batch(sensor, "out", [])
        assert (report.sent, report.delivered) == (0, 0)

    def test_channel_suspended_mid_batch_stops_delivery(self):
        """A handler that raises the sender's secrecy mid-batch suspends
        the channels; the rest of the batch must not be delivered."""
        ctx = SecurityContext.public()
        bus = MessageBus(audit=AuditLog(buffer_size=64))
        sensor, sinks = _wire(bus, ctx)

        seen = []

        def spike_once(component, endpoint, message):
            seen.append(message.values["value"])
            if len(seen) == 1:
                # Sender raises its secrecy: public sinks can no longer
                # accept, so every channel suspends immediately.
                sensor.add_secrecy("spike")

        sinks[0].endpoints["in"].handler = spike_once

        report = bus.publish_batch(
            sensor, "out", [{"value": float(i)} for i in range(5)]
        )
        # First delivery triggered the suspension; nothing after it flows.
        assert seen == [0.0]
        assert report.delivered == 1
        assert all(not c.active for c in bus.channels)
