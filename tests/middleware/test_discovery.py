"""Resource discovery with policy-respecting visibility."""

import pytest

from repro.audit.log import AuditLog
from repro.audit.records import RecordKind
from repro.errors import DiscoveryError
from repro.ifc import SecurityContext
from repro.middleware import EndpointKind, ResourceDiscovery
from tests.conftest import make_component


@pytest.fixture
def rdc(reading_type):
    rdc = ResourceDiscovery()
    thermo = make_component(
        "kitchen-thermo", SecurityContext.public(), reading_type
    )
    rdc.register(thermo, {"kind": "thermometer", "room": "kitchen"})
    cam = make_component(
        "bedroom-cam", SecurityContext.public(), reading_type
    )
    rdc.register(
        cam,
        {"kind": "camera", "room": "bedroom"},
        visibility=SecurityContext.of(["private"], []),
    )
    return rdc


class TestQueries:
    def test_metadata_match(self, rdc):
        found = rdc.find(kind="thermometer")
        assert [c.name for c in found] == ["kitchen-thermo"]

    def test_no_match(self, rdc):
        assert rdc.find(kind="doorbell") == []

    def test_endpoint_filter(self, rdc):
        found = rdc.find(message_type="reading", endpoint_kind=EndpointKind.SOURCE)
        assert "kitchen-thermo" in [c.name for c in found]

    def test_endpoint_filter_excludes(self, rdc):
        assert rdc.find(message_type="alert") == []

    def test_lookup_by_name(self, rdc):
        assert rdc.lookup("kitchen-thermo").name == "kitchen-thermo"
        with pytest.raises(DiscoveryError):
            rdc.lookup("ghost")

    def test_deregister(self, rdc):
        component = rdc.lookup("kitchen-thermo")
        rdc.deregister(component)
        assert rdc.find(kind="thermometer") == []


class TestVisibility:
    def test_sensitive_entry_hidden_from_anonymous(self, rdc):
        found = rdc.find(kind="camera")
        assert found == []

    def test_sensitive_entry_visible_to_cleared_querier(self, rdc):
        cleared = SecurityContext.of(["private"], [])
        found = rdc.find(querier_context=cleared, kind="camera")
        assert [c.name for c in found] == ["bedroom-cam"]

    def test_public_entries_visible_to_everyone(self, rdc):
        cleared = SecurityContext.of(["private"], [])
        found = rdc.find(querier_context=cleared)
        assert {c.name for c in found} == {"kitchen-thermo", "bedroom-cam"}


class TestReRegistration:
    """Regression: registering a taken name used to silently overwrite."""

    def test_replace_policy_swaps_audits_and_counts(self, reading_type):
        audit = AuditLog()
        rdc = ResourceDiscovery(audit=audit)
        original = make_component("svc", SecurityContext.public(), reading_type)
        rdc.register(original, {"v": "1"}, host="host-a")
        impostor = make_component("svc", SecurityContext.public(), reading_type)
        rdc.register(impostor, {"v": "2"}, host="host-b")
        assert rdc.lookup("svc") is impostor
        assert rdc.stats.replaced == 1
        records = audit.records(kind=RecordKind.DISCOVERY)
        assert len(records) == 1
        detail = records[0].detail
        assert detail["event"] == "re-registration"
        assert detail["replaced_same_component"] is False
        assert (detail["old_host"], detail["new_host"]) == ("host-a", "host-b")

    def test_error_policy_rejects_and_keeps_original(self, reading_type):
        audit = AuditLog()
        rdc = ResourceDiscovery(audit=audit)
        original = make_component("svc", SecurityContext.public(), reading_type)
        rdc.register(original)
        impostor = make_component("svc", SecurityContext.public(), reading_type)
        with pytest.raises(DiscoveryError):
            rdc.register(impostor, on_existing="error")
        assert rdc.lookup("svc") is original
        assert rdc.stats.rejected_existing == 1
        records = audit.records(kind=RecordKind.DISCOVERY)
        assert records and records[-1].detail["event"] == "register-rejected"

    def test_same_component_refresh_is_still_audited(self, reading_type):
        rdc = ResourceDiscovery(audit=AuditLog())
        component = make_component("svc", SecurityContext.public(), reading_type)
        rdc.register(component)
        entry = rdc.register(component, {"extra": "yes"})
        assert entry.metadata["extra"] == "yes"
        assert rdc.stats.replaced == 1

    def test_unknown_policy_raises(self, reading_type):
        rdc = ResourceDiscovery()
        component = make_component("svc", SecurityContext.public(), reading_type)
        with pytest.raises(ValueError):
            rdc.register(component, on_existing="upsert")

    def test_entry_exposes_host(self, reading_type):
        rdc = ResourceDiscovery()
        component = make_component("svc", SecurityContext.public(), reading_type)
        rdc.register(component, host="host-a")
        assert rdc.entry("svc").host == "host-a"
        with pytest.raises(DiscoveryError):
            rdc.entry("ghost")
