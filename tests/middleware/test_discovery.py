"""Resource discovery with policy-respecting visibility."""

import pytest

from repro.errors import DiscoveryError
from repro.ifc import SecurityContext
from repro.middleware import EndpointKind, ResourceDiscovery
from tests.conftest import make_component


@pytest.fixture
def rdc(reading_type):
    rdc = ResourceDiscovery()
    thermo = make_component(
        "kitchen-thermo", SecurityContext.public(), reading_type
    )
    rdc.register(thermo, {"kind": "thermometer", "room": "kitchen"})
    cam = make_component(
        "bedroom-cam", SecurityContext.public(), reading_type
    )
    rdc.register(
        cam,
        {"kind": "camera", "room": "bedroom"},
        visibility=SecurityContext.of(["private"], []),
    )
    return rdc


class TestQueries:
    def test_metadata_match(self, rdc):
        found = rdc.find(kind="thermometer")
        assert [c.name for c in found] == ["kitchen-thermo"]

    def test_no_match(self, rdc):
        assert rdc.find(kind="doorbell") == []

    def test_endpoint_filter(self, rdc):
        found = rdc.find(message_type="reading", endpoint_kind=EndpointKind.SOURCE)
        assert "kitchen-thermo" in [c.name for c in found]

    def test_endpoint_filter_excludes(self, rdc):
        assert rdc.find(message_type="alert") == []

    def test_lookup_by_name(self, rdc):
        assert rdc.lookup("kitchen-thermo").name == "kitchen-thermo"
        with pytest.raises(DiscoveryError):
            rdc.lookup("ghost")

    def test_deregister(self, rdc):
        component = rdc.lookup("kitchen-thermo")
        rdc.deregister(component)
        assert rdc.find(kind="thermometer") == []


class TestVisibility:
    def test_sensitive_entry_hidden_from_anonymous(self, rdc):
        found = rdc.find(kind="camera")
        assert found == []

    def test_sensitive_entry_visible_to_cleared_querier(self, rdc):
        cleared = SecurityContext.of(["private"], [])
        found = rdc.find(querier_context=cleared, kind="camera")
        assert [c.name for c in found] == ["bedroom-cam"]

    def test_public_entries_visible_to_everyone(self, rdc):
        cleared = SecurityContext.of(["private"], [])
        found = rdc.find(querier_context=cleared)
        assert {c.name for c in found} == {"kitchen-thermo", "bedroom-cam"}
