"""Channel lifecycle: monitoring, suspend/resume, teardown (§8.2.2)."""

import pytest

from repro.audit import RecordKind
from repro.ifc import PrivilegeSet, SecurityContext
from repro.middleware import ChannelState, MessageBus
from tests.conftest import make_component


@pytest.fixture
def wired(audit, reading_type, ann_device):
    bus = MessageBus(audit=audit)
    source = make_component("src", ann_device, reading_type, owner="op")
    source.privileges = PrivilegeSet.of(
        add_secrecy=["extra"], remove_secrecy=["extra"]
    )
    sink = make_component("dst", ann_device, reading_type, owner="op")
    bus.register(source)
    bus.register(sink)
    channel = bus.connect("op", source, "out", sink, "in")
    return bus, source, sink, channel


class TestMonitoring:
    def test_context_change_suspends(self, wired, audit):
        bus, source, sink, channel = wired
        source.add_secrecy("extra")
        assert channel.state == ChannelState.SUSPENDED
        assert not channel.active
        assert channel.alive

    def test_restoring_context_resumes(self, wired):
        bus, source, sink, channel = wired
        source.add_secrecy("extra")
        source.remove_secrecy("extra")
        assert channel.state == ChannelState.ACTIVE

    def test_suspension_and_resume_audited(self, wired, audit):
        bus, source, sink, channel = wired
        source.add_secrecy("extra")
        source.remove_secrecy("extra")
        suspensions = [
            r for r in audit
            if r.kind == RecordKind.CHANNEL_TORN_DOWN
            and r.detail.get("suspended")
        ]
        resumes = [
            r for r in audit
            if r.kind == RecordKind.CHANNEL_ESTABLISHED
            and r.detail.get("resumed")
        ]
        assert suspensions and resumes

    def test_no_delivery_while_suspended(self, wired):
        bus, source, sink, channel = wired
        source.add_secrecy("extra")
        report = bus.publish(source, "out", value=1.0)
        assert report.delivered == 0

    def test_sink_escalation_keeps_channel_legal(self, wired):
        """Sink becoming *more* constrained keeps source→sink legal."""
        bus, source, sink, channel = wired
        sink.privileges = PrivilegeSet.of(add_secrecy=["extra2"])
        sink.add_secrecy("extra2")
        assert channel.state == ChannelState.ACTIVE


class TestTeardown:
    def test_teardown_is_terminal(self, wired):
        bus, source, sink, channel = wired
        channel.teardown("test")
        source.add_secrecy("extra")
        source.remove_secrecy("extra")
        assert channel.state == ChannelState.TORN_DOWN

    def test_teardown_idempotent(self, wired, audit):
        bus, source, sink, channel = wired
        channel.teardown("first")
        count = len(audit)
        channel.teardown("second")
        assert len(audit) == count

    def test_suspended_channel_can_be_torn_down(self, wired):
        bus, source, sink, channel = wired
        source.add_secrecy("extra")
        channel.teardown("policy")
        assert channel.state == ChannelState.TORN_DOWN

    def test_teardown_callbacks_fire(self, wired):
        bus, source, sink, channel = wired
        reasons = []
        channel.on_teardown.append(lambda ch, reason: reasons.append(reason))
        channel.teardown("unplugged")
        assert reasons == ["unplugged"]

    def test_torn_down_channel_stops_observing(self, wired):
        bus, source, sink, channel = wired
        channel.teardown("done")
        # further context changes must not resurrect or error
        source.add_secrecy("extra")
        assert channel.state == ChannelState.TORN_DOWN
