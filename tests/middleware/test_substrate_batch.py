"""Cross-machine send batching: MaskBatchEnvelope and send_batch parity.

``send_batch`` must behave, per (message, sink), exactly like a
``send`` loop — same counters, denials, quenching and audit records —
while hoisting the fixed costs (attestation per host, flow decision per
context, envelope header per group) and shipping one coalesced envelope
per destination host.
"""

import pytest

from repro.audit import RecordKind
from repro.cloud import Machine
from repro.errors import NetworkError
from repro.ifc import SecurityContext, as_tags
from repro.middleware import (
    AttributeSpec,
    MaskBatchEnvelope,
    Message,
    MessageType,
    MessagingSubstrate,
)
from repro.net import Network
from repro.sim import Simulator

READING = MessageType.simple("reading", value=float)


def _world(n_hosts=2, enforce=True, wire_masks=True, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    machines = [Machine(f"bh{i}", clock=sim.now) for i in range(n_hosts)]
    subs = [
        MessagingSubstrate(m, net, enforce=enforce, wire_masks=wire_masks)
        for m in machines
    ]
    return sim, net, machines, subs


def _warm(sim, sub, process, sinks):
    """Complete the wire handshake with every sink host."""
    for peer, name in sinks:
        sub.send(process, peer, name, Message(READING, {"value": 0.0},
                                              context=process.security))
    sim.drain()


class TestSendBatch:
    def test_batch_delivers_to_every_sink(self, ):
        sim, net, (m1, m2), (s1, s2) = _world()
        ctx = SecurityContext.of(["bt-s"], [])
        p1 = m1.launch("src", ctx)
        pa = m2.launch("a", ctx)
        pb = m2.launch("b", ctx)
        s1.register(p1, lambda a, m: None)
        got = []
        s2.register(pa, lambda a, m: got.append(("a", m.values["value"])))
        s2.register(pb, lambda a, m: got.append(("b", m.values["value"])))
        sinks = [(s2, "a"), (s2, "b")]
        _warm(sim, s1, p1, sinks)
        base = len(got)

        messages = [
            Message(READING, {"value": float(i)}, context=ctx) for i in range(3)
        ]
        assert s1.send_batch(p1, sinks, messages) == 6
        sim.drain()
        assert got[base:] == [
            ("a", 0.0), ("b", 0.0), ("a", 1.0),
            ("b", 1.0), ("a", 2.0), ("b", 2.0),
        ]
        # One shared-context, shared-type group → one coalesced envelope.
        assert s1.stats.sent_batches == 1
        assert s1.stats.sent_masked >= 6

    def test_one_envelope_per_host_context_type_group(self):
        sim, net, (m1, m2), (s1, s2) = _world()
        ctx_a = SecurityContext.of(["bt-a"], [])
        ctx_b = SecurityContext.of(["bt-b"], [])
        p1 = m1.launch("src", SecurityContext.public())
        pa = m2.launch("a", SecurityContext.of(["bt-a", "bt-b"], []))
        s1.register(p1, lambda a, m: None)
        s2.register(pa, lambda a, m: None)
        sinks = [(s2, "a")]
        _warm(sim, s1, p1, sinks)

        payloads = []
        original = s2._receive

        def spy(datagram):
            payloads.append(type(datagram.payload).__name__)
            original(datagram)

        net.set_receiver("bh1", spy)
        s1.send_batch(
            p1,
            sinks,
            [
                Message(READING, {"value": 1.0}, context=ctx_a),
                Message(READING, {"value": 2.0}, context=ctx_a),
                Message(READING, {"value": 3.0}, context=ctx_b),
            ],
        )
        sim.drain()
        # Two contexts → two groups → exactly two batch envelopes.
        assert payloads.count("MaskBatchEnvelope") == 2
        assert s1.stats.sent_batches == 2

    def test_unregistered_sender_raises(self):
        sim, net, (m1, m2), (s1, s2) = _world()
        p1 = m1.launch("ghost")
        with pytest.raises(NetworkError):
            s1.send_batch(p1, [(s2, "x")],
                          [Message(READING, {"value": 1.0})])
        assert s1.stats.sent == 0

    def test_empty_batch_is_a_noop(self):
        sim, net, (m1, m2), (s1, s2) = _world()
        p1 = m1.launch("src")
        s1.register(p1, lambda a, m: None)
        assert s1.send_batch(p1, [], []) == 0
        assert s1.stats.sent == 0

    def test_local_denial_counted_per_message_sink_pair(self):
        sim, net, (m1, m2), (s1, s2) = _world()
        secret = SecurityContext.of(["bt-secret"], [])
        p1 = m1.launch("src", secret)
        pa = m2.launch("a")
        pb = m2.launch("b")
        s1.register(p1, lambda a, m: None)
        s2.register(pa, lambda a, m: None)
        s2.register(pb, lambda a, m: None)
        laundered = [
            Message(READING, {"value": float(i)},
                    context=SecurityContext.public())
            for i in range(2)
        ]
        assert s1.send_batch(p1, [(s2, "a"), (s2, "b")], laundered) == 0
        assert s1.stats.denied_local == 4  # every (message, sink) pair
        assert s1.stats.sent == 4
        denials = [r for r in m1.audit if r.kind == RecordKind.FLOW_DENIED]
        assert len(denials) == 4

    def test_remote_denial_per_row(self):
        sim, net, (m1, m2), (s1, s2) = _world()
        secret = SecurityContext.of(["bt-leak"], [])
        p1 = m1.launch("src", secret)
        pa = m2.launch("a")  # public: may not receive
        s1.register(p1, lambda a, m: None)
        s2.register(pa, lambda a, m: None)
        # Warm the handshake with a context both sides accept.
        ok = SecurityContext.public()
        p_ok = m1.launch("warm", ok)
        s1.register(p_ok, lambda a, m: None)
        _warm(sim, s1, p_ok, [(s2, "a")])
        denied_before = s2.stats.denied_remote

        s1.send_batch(
            p1, [(s2, "a")],
            [Message(READING, {"value": float(i)}, context=secret)
             for i in range(3)],
        )
        sim.drain()
        assert s2.stats.denied_remote - denied_before == 3
        assert s1.stats.sent_batches == 1  # one envelope, three denied rows

    def test_quenching_per_row_matches_send(self):
        typed = MessageType(
            "person",
            [
                AttributeSpec("name", str, extra_secrecy=as_tags(["bt-C"])),
                AttributeSpec("country", str),
            ],
        )
        base = SecurityContext.of(["bt-q"], [])

        def run(batched):
            sim, net, (m1, m2), (s1, s2) = _world()
            p1 = m1.launch("src", base)
            pa = m2.launch("a", base)
            s1.register(p1, lambda a, m: None)
            got = []
            s2.register(pa, lambda a, m: got.append(m))
            _warm(sim, s1, p1, [(s2, "a")])
            messages = [
                Message(typed, {"name": "Ann", "country": "UK"}, context=base)
                for _ in range(3)
            ]
            if batched:
                s1.send_batch(p1, [(s2, "a")], messages)
            else:
                for message in messages:
                    s1.send(p1, s2, "a", message)
            sim.drain()
            flows = [r for r in m2.audit if r.kind == RecordKind.FLOW_ALLOWED]
            return got, s2.stats.quenched_attributes, flows

        got_b, quenched_b, flows_b = run(batched=True)
        got_s, quenched_s, flows_s = run(batched=False)
        assert quenched_b == quenched_s == 3
        for msg in got_b[1:]:
            assert "name" not in msg.values
            assert msg.values["country"] == "UK"
        # The effective-context audit trail matches the send loop.
        essence = lambda flows: [
            (r.actor, r.subject,
             {t.qualified for t in r.source_context.secrecy},
             r.detail.get("quenched"))
            for r in flows
        ]
        assert essence(flows_b) == essence(flows_s)

    def test_deregister_mid_batch_turns_rows_unroutable(self):
        sim, net, (m1, m2), (s1, s2) = _world()
        ctx = SecurityContext.of(["bt-d"], [])
        p1 = m1.launch("src", ctx)
        pa = m2.launch("a", ctx)
        pb = m2.launch("b", ctx)
        s1.register(p1, lambda a, m: None)
        s2.register(pa, lambda a, m: s2.deregister(pb))
        s2.register(pb, lambda a, m: None)
        sinks = [(s2, "a"), (s2, "b")]
        _warm(sim, s1, p1, sinks)
        unroutable_before = s2.stats.dropped_unroutable

        s1.send_batch(p1, sinks,
                      [Message(READING, {"value": 9.0}, context=ctx)])
        sim.drain()
        # Row order is a then b: a's handler deregisters b, so b's row —
        # registry re-read per row — goes unroutable, as per-datagram
        # delivery would have it.
        assert s2.stats.dropped_unroutable - unroutable_before == 1
        assert any(
            r.kind == RecordKind.MISDELIVERY and r.subject == "bh1/b"
            for r in m2.audit
        )

    def test_before_handshake_falls_back_to_tagsets(self):
        sim, net, (m1, m2), (s1, s2) = _world()
        ctx = SecurityContext.of(["bt-f"], [])
        p1 = m1.launch("src", ctx)
        pa = m2.launch("a", ctx)
        s1.register(p1, lambda a, m: None)
        got = []
        s2.register(pa, lambda a, m: got.append(m))

        s1.send_batch(
            p1, [(s2, "a")],
            [Message(READING, {"value": float(i)}, context=ctx)
             for i in range(2)],
        )
        assert s1.stats.sent_tagset == 2
        assert s1.stats.sent_batches == 0
        sim.drain()
        assert len(got) == 2
        # Handshake done: the next batch coalesces.
        s1.send_batch(
            p1, [(s2, "a")],
            [Message(READING, {"value": 9.0}, context=ctx)],
        )
        sim.drain()
        assert s1.stats.sent_batches == 1
        assert len(got) == 3

    def test_stats_parity_with_send_loop(self):
        """Identical worlds, send loop vs send_batch: every per-message
        counter on both sides must agree."""
        ctx = SecurityContext.of(["bt-p"], [])

        def run(batched):
            sim, net, (m1, m2, m3), (s1, s2, s3) = _world(n_hosts=3)
            p1 = m1.launch("src", ctx)
            s1.register(p1, lambda a, m: None)
            for sub, machine in ((s2, m2), (s3, m3)):
                proc = machine.launch("sink", ctx)
                sub.register(proc, lambda a, m: None)
            sinks = [(s2, "sink"), (s3, "sink")]
            _warm(sim, s1, p1, sinks)
            messages = [
                Message(READING, {"value": float(i)}, context=ctx)
                for i in range(5)
            ]
            if batched:
                s1.send_batch(p1, sinks, messages)
            else:
                for message in messages:
                    for peer, name in sinks:
                        s1.send(p1, peer, name, message)
            sim.drain()
            keys = ("sent", "delivered", "denied_local", "denied_remote",
                    "sent_masked", "quenched_attributes")
            return [
                tuple(getattr(sub.stats, k) for k in keys)
                for sub in (s1, s2, s3)
            ]

        assert run(batched=True) == run(batched=False)
