"""Bus: registration, channel establishment, per-message enforcement."""

import pytest

from repro.accesscontrol import EnforcementMode
from repro.audit import AuditLog, RecordKind
from repro.errors import AccessDenied, DiscoveryError, FlowError, SchemaError
from repro.ifc import SecurityContext
from repro.middleware import (
    Component,
    EndpointKind,
    MessageBus,
    MessageType,
)
from tests.conftest import make_component


@pytest.fixture
def bus(audit):
    return MessageBus(audit=audit)


class TestRegistry:
    def test_duplicate_names_rejected(self, bus, reading_type, ann_device):
        bus.register(make_component("a", ann_device, reading_type))
        with pytest.raises(DiscoveryError):
            bus.register(make_component("a", ann_device, reading_type))

    def test_unknown_component_lookup(self, bus):
        with pytest.raises(DiscoveryError):
            bus.component("ghost")

    def test_deregister_tears_channels(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="op"))
        channel = bus.connect("op", a, "out", b, "in")
        bus.deregister(a)
        assert not channel.alive


class TestConnect:
    def test_endpoint_type_mismatch(self, bus, ann_device):
        readings = MessageType.simple("reading", value=float)
        alerts = MessageType.simple("alert", text=str)
        a = Component("a", ann_device, owner="op")
        a.add_endpoint("out", EndpointKind.SOURCE, readings)
        b = Component("b", ann_device, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, alerts)
        bus.register(a)
        bus.register(b)
        with pytest.raises(SchemaError):
            bus.connect("op", a, "out", b, "in")

    def test_sink_cannot_be_source(self, bus, reading_type, ann_device):
        a = make_component("a", ann_device, reading_type, owner="op")
        b = make_component("b", ann_device, reading_type, owner="op")
        bus.register(a)
        bus.register(b)
        with pytest.raises(SchemaError):
            bus.connect("op", a, "in", b, "out")

    def test_unauthorised_initiator_rejected(self, bus, reading_type, ann_device, audit):
        a = bus.register(make_component("a", ann_device, reading_type, owner="alice"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="bob"))
        with pytest.raises(AccessDenied):
            bus.connect("mallory", a, "out", b, "in")
        assert any(r.kind == RecordKind.ACCESS_DENIED for r in audit)

    def test_controller_of_either_end_may_connect(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="alice"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="bob"))
        bus.connect("alice", a, "out", b, "in")  # alice controls the source

    def test_ifc_check_at_establishment(self, bus, reading_type, zeb_device, ann_analyser, audit):
        zeb = bus.register(make_component("zeb", zeb_device, reading_type, owner="op"))
        ann = bus.register(make_component("ann", ann_analyser, reading_type, owner="op"))
        with pytest.raises(FlowError):
            bus.connect("op", zeb, "out", ann, "in")
        assert audit.denials()

    def test_establishment_audited(self, bus, reading_type, ann_device, audit):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="op"))
        bus.connect("op", a, "out", b, "in")
        assert any(r.kind == RecordKind.CHANNEL_ESTABLISHED for r in audit)


class TestDelivery:
    def _wired(self, bus, reading_type, ctx_a, ctx_b):
        a = bus.register(make_component("a", ctx_a, reading_type, owner="op"))
        received = []
        b = Component("b", ctx_b, owner="op")
        b.add_endpoint(
            "in", EndpointKind.SINK, reading_type,
            handler=lambda c, e, m: received.append(m),
        )
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        return a, b, received

    def test_publish_delivers(self, bus, reading_type, ann_device):
        a, b, received = self._wired(bus, reading_type, ann_device, ann_device)
        report = bus.publish(a, "out", value=1.0)
        assert report.delivered == 1
        assert received[0].values["value"] == 1.0

    def test_message_carries_sender_context(self, bus, reading_type, ann_device):
        a, b, received = self._wired(bus, reading_type, ann_device, ann_device)
        bus.publish(a, "out", value=1.0)
        assert received[0].context == ann_device

    def test_per_message_denial_when_context_escalates(
        self, bus, reading_type, ann_device
    ):
        from repro.ifc import PrivilegeSet

        a = Component(
            "a", ann_device, PrivilegeSet.of(add_secrecy=["extra"]), owner="op"
        )
        a.add_endpoint("out", EndpointKind.SOURCE, reading_type)
        received = []
        b = Component("b", ann_device, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, reading_type,
                       handler=lambda c, e, m: received.append(m))
        bus.register(a)
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        # Source escalates: the standing channel suspends, deliveries stop.
        a.add_secrecy("extra")
        report = bus.publish(a, "out", value=2.0)
        assert report.delivered == 0
        assert received == []

    def test_publish_without_channels_goes_nowhere(self, bus, reading_type, ann_device):
        a = bus.register(make_component("lonely", ann_device, reading_type))
        report = bus.publish(a, "out", value=1.0)
        assert report.sent == 0

    def test_fanout_counts(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        sinks = []
        for i in range(3):
            sink = make_component(f"s{i}", ann_device, reading_type, owner="op")
            bus.register(sink)
            bus.connect("op", a, "out", sink, "in")
            sinks.append(sink)
        report = bus.publish(a, "out", value=1.0)
        assert report.sent == 3
        assert report.delivered == 3

    def test_ac_only_mode_skips_ifc(self, reading_type, zeb_device, ann_analyser):
        bus = MessageBus(mode=EnforcementMode.AC_ONLY)
        zeb = bus.register(make_component("zeb", zeb_device, reading_type, owner="op"))
        ann = bus.register(make_component("ann", ann_analyser, reading_type, owner="op"))
        bus.connect("op", zeb, "out", ann, "in")  # AC-only: allowed
        report = bus.publish(zeb, "out", value=1.0)
        assert report.delivered == 1  # the leak the paper warns about

    def test_quenched_delivery_audits_what_receiver_actually_got(
        self, bus, ann_device, audit
    ):
        """The flow-allowed record must carry the effective context of the
        *delivered* (quenched) message, not the base context — the
        quenched case is exactly when the trail must show the reduced
        view."""
        from repro.ifc import as_tags
        from repro.middleware import AttributeSpec

        typed = MessageType(
            "person",
            [
                AttributeSpec("name", str, extra_secrecy=as_tags(["pii"])),
                AttributeSpec("country", str, extra_secrecy=as_tags(["geo"])),
            ],
        )
        receiver_ctx = ann_device.add_secrecy("geo")  # takes geo, not pii
        a = Component("a", ann_device, owner="op")
        a.add_endpoint("out", EndpointKind.SOURCE, typed)
        received = []
        b = Component("b", receiver_ctx, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, typed,
                       handler=lambda c, e, m: received.append(m))
        bus.register(a)
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        report = bus.publish(a, "out", name="Ann", country="UK")
        assert report.quenched_attributes == 1

        flow = [r for r in audit if r.kind == RecordKind.FLOW_ALLOWED][-1]
        assert flow.detail["quenched"] == ["name"]
        # Logged context == effective context of the delivered message:
        # base + geo (country kept), without pii (name quenched).
        assert flow.source_context == received[0].effective_context()
        assert "local:geo" in {t.qualified for t in flow.source_context.secrecy}
        assert "local:pii" not in {t.qualified for t in flow.source_context.secrecy}

    def test_unquenched_delivery_still_audits_effective_context(
        self, bus, ann_device, audit
    ):
        from repro.ifc import as_tags
        from repro.middleware import AttributeSpec

        typed = MessageType(
            "person", [AttributeSpec("name", str, extra_secrecy=as_tags(["pii"]))]
        )
        rich = ann_device.add_secrecy("pii")
        a = Component("a", ann_device, owner="op")
        a.add_endpoint("out", EndpointKind.SOURCE, typed)
        b = Component("b", rich, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, typed, handler=lambda c, e, m: None)
        bus.register(a)
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        report = bus.publish(a, "out", name="Ann")
        assert report.quenched_attributes == 0
        flow = [r for r in audit if r.kind == RecordKind.FLOW_ALLOWED][-1]
        assert "local:pii" in {t.qualified for t in flow.source_context.secrecy}

    def test_quenching_counted_in_stats(self, bus, ann_device):
        from repro.ifc import as_tags
        from repro.middleware import AttributeSpec

        typed = MessageType(
            "person",
            [
                AttributeSpec("name", str, extra_secrecy=as_tags(["pii"])),
                AttributeSpec("country", str),
            ],
        )
        a = Component("a", ann_device, owner="op")
        a.add_endpoint("out", EndpointKind.SOURCE, typed)
        received = []
        b = Component("b", ann_device, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, typed,
                       handler=lambda c, e, m: received.append(m))
        bus.register(a)
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        report = bus.publish(a, "out", name="Ann", country="UK")
        assert report.delivered == 1
        assert report.quenched_attributes == 1
        assert "name" not in received[0].values


class TestChannelCompaction:
    """Torn-down channels must leave the scan list (unbounded growth and
    O(dead) route cost on long-running buses otherwise)."""

    def test_teardown_removes_channel_from_bus(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="op"))
        channel = bus.connect("op", a, "out", b, "in")
        assert channel in bus.channels
        bus.disconnect(channel)
        assert channel not in bus.channels

    def test_long_running_bus_does_not_accumulate_dead_channels(
        self, bus, reading_type, ann_device
    ):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="op"))
        for __ in range(100):
            channel = bus.connect("op", a, "out", b, "in")
            channel.teardown("churn")
        assert len(bus.channels) == 0

    def test_deregister_compacts(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="op"))
        bus.connect("op", a, "out", b, "in")
        bus.deregister(a)
        assert bus.channels == []

    def test_suspended_channels_stay(self, bus, reading_type, ann_device):
        from repro.ifc import PrivilegeSet

        a = Component(
            "a", ann_device, PrivilegeSet.of(add_secrecy=["extra"]), owner="op"
        )
        a.add_endpoint("out", EndpointKind.SOURCE, reading_type)
        b = make_component("b", ann_device, reading_type, owner="op")
        bus.register(a)
        bus.register(b)
        channel = bus.connect("op", a, "out", b, "in")
        a.add_secrecy("extra")  # suspends (alive, not active)
        assert not channel.active and channel.alive
        assert channel in bus.channels

    def test_mid_route_teardown_does_not_disturb_fanout(
        self, bus, reading_type, ann_device
    ):
        """A handler tearing down channels mid-delivery must not change
        which of the remaining channels see the message (deferred
        compaction, not list mutation under the iterator)."""
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        channels = []
        received = []

        def make_sink(i):
            sink = Component(f"s{i}", ann_device, owner="op")

            def handler(c, e, m):
                received.append(i)
                if i == 0:
                    # First sink collapses the LAST channel mid-fan-out …
                    channels[-1].teardown("mid-route")

            sink.add_endpoint("in", EndpointKind.SINK, reading_type, handler=handler)
            bus.register(sink)
            channels.append(bus.connect("op", a, "out", sink, "in"))

        for i in range(4):
            make_sink(i)
        report = bus.publish(a, "out", value=1.0)
        # … so sinks 0-2 deliver, 3 is skipped (same as pre-compaction
        # semantics: the torn-down channel is inactive when reached) …
        assert received == [0, 1, 2]
        assert report.delivered == 3
        # … and compaction happens once the route finishes.
        assert channels[-1] not in bus.channels
        assert len(bus.channels) == 3

    def test_mid_batch_teardown_keeps_later_messages_flowing(
        self, bus, reading_type, ann_device
    ):
        """publish_batch: a handler disconnecting its own channel on the
        first message must stop deliveries to it without disturbing the
        other channel's remaining messages."""
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        seen = {"keep": 0, "drop": 0}

        keep = Component("keep", ann_device, owner="op")
        keep.add_endpoint(
            "in", EndpointKind.SINK, reading_type,
            handler=lambda c, e, m: seen.__setitem__("keep", seen["keep"] + 1),
        )
        bus.register(keep)
        bus.connect("op", a, "out", keep, "in")

        drop = Component("drop", ann_device, owner="op")

        def drop_handler(c, e, m):
            seen["drop"] += 1
            bus.disconnect(drop_channel, "one and done")

        drop.add_endpoint("in", EndpointKind.SINK, reading_type, handler=drop_handler)
        bus.register(drop)
        drop_channel = bus.connect("op", a, "out", drop, "in")

        report = bus.publish_batch(a, "out", [{"value": float(i)} for i in range(5)])
        assert seen["keep"] == 5
        assert seen["drop"] == 1
        assert report.delivered == 6
        assert drop_channel not in bus.channels
