"""Bus: registration, channel establishment, per-message enforcement."""

import pytest

from repro.accesscontrol import EnforcementMode
from repro.audit import AuditLog, RecordKind
from repro.errors import AccessDenied, DiscoveryError, FlowError, SchemaError
from repro.ifc import SecurityContext
from repro.middleware import (
    Component,
    EndpointKind,
    MessageBus,
    MessageType,
)
from tests.conftest import make_component


@pytest.fixture
def bus(audit):
    return MessageBus(audit=audit)


class TestRegistry:
    def test_duplicate_names_rejected(self, bus, reading_type, ann_device):
        bus.register(make_component("a", ann_device, reading_type))
        with pytest.raises(DiscoveryError):
            bus.register(make_component("a", ann_device, reading_type))

    def test_unknown_component_lookup(self, bus):
        with pytest.raises(DiscoveryError):
            bus.component("ghost")

    def test_deregister_tears_channels(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="op"))
        channel = bus.connect("op", a, "out", b, "in")
        bus.deregister(a)
        assert not channel.alive


class TestConnect:
    def test_endpoint_type_mismatch(self, bus, ann_device):
        readings = MessageType.simple("reading", value=float)
        alerts = MessageType.simple("alert", text=str)
        a = Component("a", ann_device, owner="op")
        a.add_endpoint("out", EndpointKind.SOURCE, readings)
        b = Component("b", ann_device, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, alerts)
        bus.register(a)
        bus.register(b)
        with pytest.raises(SchemaError):
            bus.connect("op", a, "out", b, "in")

    def test_sink_cannot_be_source(self, bus, reading_type, ann_device):
        a = make_component("a", ann_device, reading_type, owner="op")
        b = make_component("b", ann_device, reading_type, owner="op")
        bus.register(a)
        bus.register(b)
        with pytest.raises(SchemaError):
            bus.connect("op", a, "in", b, "out")

    def test_unauthorised_initiator_rejected(self, bus, reading_type, ann_device, audit):
        a = bus.register(make_component("a", ann_device, reading_type, owner="alice"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="bob"))
        with pytest.raises(AccessDenied):
            bus.connect("mallory", a, "out", b, "in")
        assert any(r.kind == RecordKind.ACCESS_DENIED for r in audit)

    def test_controller_of_either_end_may_connect(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="alice"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="bob"))
        bus.connect("alice", a, "out", b, "in")  # alice controls the source

    def test_ifc_check_at_establishment(self, bus, reading_type, zeb_device, ann_analyser, audit):
        zeb = bus.register(make_component("zeb", zeb_device, reading_type, owner="op"))
        ann = bus.register(make_component("ann", ann_analyser, reading_type, owner="op"))
        with pytest.raises(FlowError):
            bus.connect("op", zeb, "out", ann, "in")
        assert audit.denials()

    def test_establishment_audited(self, bus, reading_type, ann_device, audit):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        b = bus.register(make_component("b", ann_device, reading_type, owner="op"))
        bus.connect("op", a, "out", b, "in")
        assert any(r.kind == RecordKind.CHANNEL_ESTABLISHED for r in audit)


class TestDelivery:
    def _wired(self, bus, reading_type, ctx_a, ctx_b):
        a = bus.register(make_component("a", ctx_a, reading_type, owner="op"))
        received = []
        b = Component("b", ctx_b, owner="op")
        b.add_endpoint(
            "in", EndpointKind.SINK, reading_type,
            handler=lambda c, e, m: received.append(m),
        )
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        return a, b, received

    def test_publish_delivers(self, bus, reading_type, ann_device):
        a, b, received = self._wired(bus, reading_type, ann_device, ann_device)
        report = bus.publish(a, "out", value=1.0)
        assert report.delivered == 1
        assert received[0].values["value"] == 1.0

    def test_message_carries_sender_context(self, bus, reading_type, ann_device):
        a, b, received = self._wired(bus, reading_type, ann_device, ann_device)
        bus.publish(a, "out", value=1.0)
        assert received[0].context == ann_device

    def test_per_message_denial_when_context_escalates(
        self, bus, reading_type, ann_device
    ):
        from repro.ifc import PrivilegeSet

        a = Component(
            "a", ann_device, PrivilegeSet.of(add_secrecy=["extra"]), owner="op"
        )
        a.add_endpoint("out", EndpointKind.SOURCE, reading_type)
        received = []
        b = Component("b", ann_device, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, reading_type,
                       handler=lambda c, e, m: received.append(m))
        bus.register(a)
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        # Source escalates: the standing channel suspends, deliveries stop.
        a.add_secrecy("extra")
        report = bus.publish(a, "out", value=2.0)
        assert report.delivered == 0
        assert received == []

    def test_publish_without_channels_goes_nowhere(self, bus, reading_type, ann_device):
        a = bus.register(make_component("lonely", ann_device, reading_type))
        report = bus.publish(a, "out", value=1.0)
        assert report.sent == 0

    def test_fanout_counts(self, bus, reading_type, ann_device):
        a = bus.register(make_component("a", ann_device, reading_type, owner="op"))
        sinks = []
        for i in range(3):
            sink = make_component(f"s{i}", ann_device, reading_type, owner="op")
            bus.register(sink)
            bus.connect("op", a, "out", sink, "in")
            sinks.append(sink)
        report = bus.publish(a, "out", value=1.0)
        assert report.sent == 3
        assert report.delivered == 3

    def test_ac_only_mode_skips_ifc(self, reading_type, zeb_device, ann_analyser):
        bus = MessageBus(mode=EnforcementMode.AC_ONLY)
        zeb = bus.register(make_component("zeb", zeb_device, reading_type, owner="op"))
        ann = bus.register(make_component("ann", ann_analyser, reading_type, owner="op"))
        bus.connect("op", zeb, "out", ann, "in")  # AC-only: allowed
        report = bus.publish(zeb, "out", value=1.0)
        assert report.delivered == 1  # the leak the paper warns about

    def test_quenching_counted_in_stats(self, bus, ann_device):
        from repro.ifc import as_tags
        from repro.middleware import AttributeSpec

        typed = MessageType(
            "person",
            [
                AttributeSpec("name", str, extra_secrecy=as_tags(["pii"])),
                AttributeSpec("country", str),
            ],
        )
        a = Component("a", ann_device, owner="op")
        a.add_endpoint("out", EndpointKind.SOURCE, typed)
        received = []
        b = Component("b", ann_device, owner="op")
        b.add_endpoint("in", EndpointKind.SINK, typed,
                       handler=lambda c, e, m: received.append(m))
        bus.register(a)
        bus.register(b)
        bus.connect("op", a, "out", b, "in")
        report = bus.publish(a, "out", name="Ann", country="UK")
        assert report.delivered == 1
        assert report.quenched_attributes == 1
        assert "name" not in received[0].values
