"""Automatic chain composition with gateway interposition (§8.1)."""

import pytest

from repro.audit import AuditLog
from repro.errors import DiscoveryError, FlowError
from repro.ifc import PrivilegeSet, SecurityContext
from repro.middleware import (
    ChainComposer,
    Component,
    EndpointKind,
    MessageBus,
    MessageType,
    Reconfigurator,
    RelaySpec,
)

READING = MessageType.simple("reading", value=float)

ZEB_CTX = SecurityContext.of(["medical", "zeb"], ["zeb-dev"])
HOSP_CTX = SecurityContext.of(["medical", "zeb"], ["hosp-dev"])
STATS_CTX = SecurityContext.of(["stats"], ["anon"])


def relay_component(name: str, input_ctx, output_ctx) -> Component:
    """A sanitiser-style relay that flips context per message."""
    privileges = PrivilegeSet.of(
        add_secrecy=[t.qualified for t in output_ctx.secrecy]
        + [t.qualified for t in input_ctx.secrecy],
        remove_secrecy=[t.qualified for t in input_ctx.secrecy]
        + [t.qualified for t in output_ctx.secrecy],
        add_integrity=[t.qualified for t in output_ctx.integrity]
        + [t.qualified for t in input_ctx.integrity],
        remove_integrity=[t.qualified for t in input_ctx.integrity]
        + [t.qualified for t in output_ctx.integrity],
    )
    component = Component(name, input_ctx, privileges, owner="op")
    component.add_endpoint("in", EndpointKind.SINK, READING)
    component.add_endpoint("out", EndpointKind.SOURCE, READING)
    return component


@pytest.fixture
def setup():
    audit = AuditLog()
    bus = MessageBus(audit=audit)
    rc = Reconfigurator(bus)
    composer = ChainComposer(bus, rc)

    source = Component("zeb-sensor", ZEB_CTX, owner="op")
    source.add_endpoint("out", EndpointKind.SOURCE, READING)
    sink = Component("analyser", HOSP_CTX, owner="op")
    sink.add_endpoint("in", EndpointKind.SINK, READING)
    bus.register(source)
    bus.register(sink)

    sanitiser = relay_component("sanitiser", ZEB_CTX, HOSP_CTX)
    bus.register(sanitiser)
    composer.register_relay(RelaySpec(sanitiser, "in", "out", ZEB_CTX, HOSP_CTX))
    return bus, composer, source, sink, sanitiser


class TestPlanning:
    def test_direct_flow_plans_empty_chain(self, setup):
        bus, composer, *_ = setup
        assert composer.plan(HOSP_CTX, HOSP_CTX) == []

    def test_single_relay_plan(self, setup):
        bus, composer, *_ = setup
        plan = composer.plan(ZEB_CTX, HOSP_CTX)
        assert plan is not None
        assert [r.component.name for r in plan] == ["sanitiser"]

    def test_impossible_plan_returns_none(self, setup):
        bus, composer, *_ = setup
        assert composer.plan(ZEB_CTX, STATS_CTX) is None

    def test_plan_is_minimal_hops(self, setup):
        """With a redundant two-hop alternative available, BFS picks the
        single-hop chain."""
        bus, composer, source, sink, __ = setup
        mid = SecurityContext.of(["medical", "zeb"], ["half-done"])
        a = relay_component("half-sanitiser", ZEB_CTX, mid)
        b = relay_component("finisher", mid, HOSP_CTX)
        bus.register(a)
        bus.register(b)
        composer.register_relay(RelaySpec(a, "in", "out", ZEB_CTX, mid))
        composer.register_relay(RelaySpec(b, "in", "out", mid, HOSP_CTX))
        plan = composer.plan(ZEB_CTX, HOSP_CTX)
        assert len(plan) == 1


class TestComposition:
    def test_composition_wires_and_delivers(self, setup):
        bus, composer, source, sink, sanitiser = setup
        received = []
        sink.endpoints["in"].handler = lambda c, e, m: received.append(m)
        composition = composer.compose("op", source, "out", sink, "in")
        assert composition.hop_count == 2
        assert len(composition.channels) == 2

        # Drive a message along the chain: source -> sanitiser (which
        # must flip to its output context and re-emit) -> sink.
        forwarded = []

        def relay_handler(component, endpoint, message):
            component.change_context(HOSP_CTX)
            out = component.make_message("out", **message.values)
            bus.route(component, "out", out)
            component.change_context(ZEB_CTX)

        sanitiser.endpoints["in"].handler = relay_handler
        bus.publish(source, "out", value=72.0)
        assert len(received) == 1
        assert "hosp-dev" in received[0].context.integrity

    def test_direct_composition_when_contexts_accord(self, setup):
        bus, composer, __, sink, ___ = setup
        other = Component("hospital-sensor", HOSP_CTX, owner="op")
        other.add_endpoint("out", EndpointKind.SOURCE, READING)
        bus.register(other)
        composition = composer.compose("op", other, "out", sink, "in")
        assert composition.relays == []
        assert composition.hop_count == 1

    def test_impossible_composition_raises(self, setup):
        bus, composer, source, __, ___ = setup
        stats_sink = Component("stats", STATS_CTX, owner="op")
        stats_sink.add_endpoint("in", EndpointKind.SINK, READING)
        bus.register(stats_sink)
        with pytest.raises(FlowError):
            composer.compose("op", source, "out", stats_sink, "in")

    def test_relay_context_restored_after_wiring(self, setup):
        bus, composer, source, sink, sanitiser = setup
        composer.compose("op", source, "out", sink, "in")
        assert sanitiser.context == ZEB_CTX  # back in ingest context

    def test_composition_teardown_as_unit(self, setup):
        bus, composer, source, sink, __ = setup
        composition = composer.compose("op", source, "out", sink, "in")
        assert composition.active
        composition.teardown()
        assert not composition.active
        assert all(not c.alive for c in composition.channels)

    def test_dissolve_all(self, setup):
        bus, composer, source, sink, __ = setup
        composer.compose("op", source, "out", sink, "in")
        assert composer.dissolve_all() == 1
        assert composer.dissolve_all() == 0

    def test_unregistered_relay_rejected(self, setup):
        bus, composer, *_ = setup
        ghost = relay_component("ghost", ZEB_CTX, HOSP_CTX)
        with pytest.raises(DiscoveryError):
            composer.register_relay(
                RelaySpec(ghost, "in", "out", ZEB_CTX, HOSP_CTX)
            )


class TestTwoHopComposition:
    def test_two_relays_chained(self, setup):
        bus, composer, source, __, ___ = setup
        stats_sink = Component("research", STATS_CTX, owner="op")
        stats_sink.add_endpoint("in", EndpointKind.SINK, READING)
        bus.register(stats_sink)
        anonymiser = relay_component("anonymiser", HOSP_CTX, STATS_CTX)
        bus.register(anonymiser)
        composer.register_relay(
            RelaySpec(anonymiser, "in", "out", HOSP_CTX, STATS_CTX)
        )
        composition = composer.compose("op", source, "out", stats_sink, "in")
        names = [r.component.name for r in composition.relays]
        assert names == ["sanitiser", "anonymiser"]
        assert composition.hop_count == 3
        assert len(composition.channels) == 3
