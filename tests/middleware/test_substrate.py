"""Cross-machine messaging substrate (Figs. 9, 10)."""

import pytest

from repro.cloud import Machine, MachineConfig
from repro.errors import NetworkError
from repro.ifc import SecurityContext, as_tags
from repro.middleware import (
    AttributeSpec,
    Message,
    MessageType,
    MessagingSubstrate,
)
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def pair(sim):
    net = Network(sim)
    m1 = Machine("host-1", clock=sim.now)
    m2 = Machine("host-2", clock=sim.now)
    s1 = MessagingSubstrate(m1, net)
    s2 = MessagingSubstrate(m2, net)
    return sim, net, m1, m2, s1, s2


READING = MessageType.simple("reading", value=float)


class TestTransfer:
    def test_matching_contexts_deliver(self, pair):
        sim, net, m1, m2, s1, s2 = pair
        ctx = SecurityContext.of(["s"], [])
        p1 = m1.launch("app1", ctx)
        p2 = m2.launch("app2", ctx)
        s1.register(p1, lambda a, m: None)
        received = []
        s2.register(p2, lambda addr, msg: received.append((addr, msg)))
        message = Message(READING, {"value": 1.0}, context=p1.security)
        assert s1.send(p1, s2, "app2", message)
        sim.drain()
        assert len(received) == 1
        assert received[0][0] == "host-1/app1"
        assert s2.stats.delivered == 1

    def test_receiver_side_ifc_denial(self, pair):
        sim, net, m1, m2, s1, s2 = pair
        p1 = m1.launch("app1", SecurityContext.of(["secret"], []))
        p2 = m2.launch("app2")  # public: may not receive secret
        s1.register(p1, lambda a, m: None)
        received = []
        s2.register(p2, lambda a, m: received.append(m))
        message = Message(READING, {"value": 1.0}, context=p1.security)
        s1.send(p1, s2, "app2", message)
        sim.drain()
        assert received == []
        assert s2.stats.denied_remote == 1
        assert m2.audit.denials()

    def test_sender_side_underlabelling_denied(self, pair):
        """A process cannot launder data by underlabelling the message."""
        sim, net, m1, m2, s1, s2 = pair
        p1 = m1.launch("app1", SecurityContext.of(["secret"], []))
        p2 = m2.launch("app2")
        s1.register(p1, lambda a, m: None)
        s2.register(p2, lambda a, m: None)
        laundered = Message(READING, {"value": 1.0},
                            context=SecurityContext.public())
        assert not s1.send(p1, s2, "app2", laundered)
        assert s1.stats.denied_local == 1

    def test_unregistered_sender_rejected(self, pair):
        sim, net, m1, m2, s1, s2 = pair
        p1 = m1.launch("app1")
        with pytest.raises(NetworkError):
            s1.send(p1, s2, "app2", Message(READING, {"value": 1.0}))

    def test_unknown_destination_process_dropped(self, pair):
        sim, net, m1, m2, s1, s2 = pair
        p1 = m1.launch("app1")
        s1.register(p1, lambda a, m: None)
        s1.send(p1, s2, "ghost", Message(READING, {"value": 1.0}))
        sim.drain()
        assert s2.stats.delivered == 0


class TestAttestation:
    def test_untrusted_platform_refused(self, sim):
        net = Network(sim)
        good = Machine("good-host", clock=sim.now)
        evil = Machine(
            "evil-host",
            MachineConfig(boot_chain=["bootloader-v2", "rootkit"]),
            clock=sim.now,
        )
        from repro.cloud import trusted_verifier

        verifier = trusted_verifier([good])
        # Golden values registered only for approved chains; evil-host's
        # quote will not match.
        verifier.golden_for_measurements(
            "evil-host", 0, ["bootloader-v2", "kernel-5.4-camflow", "lsm-ifc-1.0"]
        )
        s_good = MessagingSubstrate(good, net, verifier=verifier)
        s_evil = MessagingSubstrate(evil, net)
        p = good.launch("app", SecurityContext.of(["s"], []))
        s_good.register(p, lambda a, m: None)
        message = Message(READING, {"value": 1.0}, context=p.security)
        assert not s_good.send(p, s_evil, "x", message)
        assert s_good.stats.attestation_failures == 1

    def test_attestation_cached_then_invalidated(self, sim):
        net = Network(sim)
        m1 = Machine("h1", clock=sim.now)
        m2 = Machine("h2", clock=sim.now)
        from repro.cloud import trusted_verifier

        verifier = trusted_verifier([m1, m2])
        s1 = MessagingSubstrate(m1, net, verifier=verifier)
        s2 = MessagingSubstrate(m2, net)
        p1 = m1.launch("a")
        p2 = m2.launch("b")
        s1.register(p1, lambda a, m: None)
        s2.register(p2, lambda a, m: None)
        message = Message(READING, {"value": 1.0})
        assert s1.send(p1, s2, "b", message)
        assert s1.send(p1, s2, "b", message)  # cached — no re-quote
        s1.invalidate_attestation("h2")
        assert s1.send(p1, s2, "b", message)  # re-attests


class TestMessageLevelTags:
    def test_fig10_attribute_quenching_cross_machine(self, pair):
        sim, net, m1, m2, s1, s2 = pair
        typed = MessageType(
            "person",
            [
                AttributeSpec("name", str, extra_secrecy=as_tags(["C"])),
                AttributeSpec("country", str),
            ],
        )
        base = SecurityContext.of(["A", "B"], [])
        p1 = m1.launch("app1", base)
        p2 = m2.launch("app2", SecurityContext.of(["A", "B"], []))
        s1.register(p1, lambda a, m: None)
        received = []
        s2.register(p2, lambda a, m: received.append(m))
        message = Message(typed, {"name": "Ann", "country": "UK"}, context=base)
        s1.send(p1, s2, "app2", message)
        sim.drain()
        assert len(received) == 1
        assert "name" not in received[0].values     # tag C quenched
        assert received[0].values["country"] == "UK"
        assert s2.stats.quenched_attributes == 1

    def test_enforcement_disabled_baseline(self, sim):
        net = Network(sim)
        m1 = Machine("h1", clock=sim.now)
        m2 = Machine("h2", clock=sim.now)
        s1 = MessagingSubstrate(m1, net, enforce=False)
        s2 = MessagingSubstrate(m2, net, enforce=False)
        p1 = m1.launch("a", SecurityContext.of(["secret"], []))
        p2 = m2.launch("b")  # public
        s1.register(p1, lambda a, m: None)
        received = []
        s2.register(p2, lambda a, m: received.append(m))
        message = Message(READING, {"value": 1.0}, context=p1.security)
        s1.send(p1, s2, "b", message)
        sim.drain()
        assert len(received) == 1  # the baseline leaks
