"""Typed messages and message-level tags (§8.2.2, Fig. 10)."""

import pytest

from repro.errors import SchemaError
from repro.ifc import Label, SecurityContext, as_tags
from repro.middleware import AttributeSpec, Message, MessageType


@pytest.fixture
def person_type() -> MessageType:
    """The paper's example: person.name is more sensitive than .country."""
    return MessageType(
        "person",
        [
            AttributeSpec("name", str, extra_secrecy=as_tags(["pii"])),
            AttributeSpec("country", str),
            AttributeSpec("age", int, required=False),
        ],
    )


class TestSchema:
    def test_valid_message(self, person_type):
        message = Message(person_type, {"name": "Ann", "country": "UK"})
        assert message.values["name"] == "Ann"

    def test_missing_required_attribute(self, person_type):
        with pytest.raises(SchemaError):
            Message(person_type, {"name": "Ann"})

    def test_optional_attribute_may_be_absent(self, person_type):
        Message(person_type, {"name": "A", "country": "UK"})  # no age: fine

    def test_unknown_attribute_rejected(self, person_type):
        with pytest.raises(SchemaError):
            Message(person_type, {"name": "A", "country": "UK", "x": 1})

    def test_wrong_type_rejected(self, person_type):
        with pytest.raises(SchemaError):
            Message(person_type, {"name": 42, "country": "UK"})

    def test_duplicate_attribute_in_schema_rejected(self):
        with pytest.raises(SchemaError):
            MessageType("t", [AttributeSpec("a"), AttributeSpec("a")])

    def test_simple_constructor(self):
        t = MessageType.simple("reading", value=float, unit=str)
        assert set(t.attributes) == {"value", "unit"}

    def test_unique_message_ids(self, person_type):
        a = Message(person_type, {"name": "A", "country": "UK"})
        b = Message(person_type, {"name": "B", "country": "UK"})
        assert a.msg_id != b.msg_id


class TestMessageLevelTags:
    def test_effective_context_includes_attribute_tags(self, person_type):
        base = SecurityContext.of(["medical"], [])
        message = Message(person_type, {"name": "Ann", "country": "UK"}, base)
        effective = message.effective_context()
        assert "pii" in effective.secrecy
        assert "medical" in effective.secrecy

    def test_quenching_drops_only_overtagged_attributes(self, person_type):
        base = SecurityContext.of(["medical"], [])
        message = Message(person_type, {"name": "Ann", "country": "UK"}, base)
        receiver = SecurityContext.of(["medical"], [])  # no pii clearance
        quenched = message.quenched_for(receiver)
        assert "name" not in quenched.values       # Fig. 10: tag C quenched
        assert quenched.values["country"] == "UK"  # untagged attr survives
        assert quenched.msg_id == message.msg_id

    def test_cleared_receiver_gets_everything(self, person_type):
        base = SecurityContext.of(["medical"], [])
        message = Message(person_type, {"name": "Ann", "country": "UK"}, base)
        receiver = SecurityContext.of(["medical", "pii"], [])
        assert message.dropped_attributes(receiver) == []
        assert message.quenched_for(receiver).values == message.values

    def test_dropped_attributes_listing(self, person_type):
        base = SecurityContext.of(["medical"], [])
        message = Message(person_type, {"name": "A", "country": "UK"}, base)
        receiver = SecurityContext.of(["medical"], [])
        assert message.dropped_attributes(receiver) == ["name"]

    def test_base_context_quenches_all_when_unsatisfied(self, person_type):
        base = SecurityContext.of(["medical"], [])
        message = Message(person_type, {"name": "A", "country": "UK"}, base)
        receiver = SecurityContext.public()
        # Base secrecy not satisfied: every attribute needs medical.
        assert set(message.dropped_attributes(receiver)) == {"name", "country"}

    def test_attribute_secrecy_lookup_errors(self, person_type):
        with pytest.raises(SchemaError):
            person_type.attribute_secrecy("ghost")
