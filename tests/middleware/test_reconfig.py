"""Third-party reconfiguration via control messages (§8.1, Fig. 8)."""

import pytest

from repro.audit import AuditLog, RecordKind
from repro.ifc import (
    PrivilegeAuthority,
    PrivilegeSet,
    SecurityContext,
    TagRegistry,
)
from repro.middleware import (
    CommandKind,
    ControlMessage,
    MessageBus,
    Reconfigurator,
)
from tests.conftest import make_component


@pytest.fixture
def setup(audit, reading_type, ann_device):
    bus = MessageBus(audit=audit)
    a = make_component("a", ann_device, reading_type, owner="op")
    b = make_component("b", ann_device, reading_type, owner="op")
    c = make_component("c", ann_device, reading_type, owner="op")
    for component in (a, b, c):
        component.allow_controller("policy-engine")
        bus.register(component)
    reconfigurator = Reconfigurator(bus)
    return bus, reconfigurator, a, b, c


class TestAuthorisation:
    def test_unauthorised_issuer_refused_and_audited(self, setup, audit):
        bus, rc, a, b, c = setup
        command = Reconfigurator.map_command("mallory", "a", "out", "b", "in")
        outcome = rc.apply(command)
        assert not outcome.applied
        assert "not an authorised controller" in outcome.detail
        assert any(r.kind == RecordKind.ACCESS_DENIED for r in audit)

    def test_unknown_target_refused(self, setup):
        bus, rc, *_ = setup
        command = ControlMessage("policy-engine", "ghost", CommandKind.ISOLATE)
        assert not rc.apply(command).applied

    def test_owner_is_implicit_controller(self, setup):
        bus, rc, a, b, c = setup
        command = Reconfigurator.map_command("op", "a", "out", "b", "in")
        assert rc.apply(command).applied


class TestCommands:
    def test_map_establishes_channel(self, setup):
        bus, rc, a, b, c = setup
        outcome = rc.apply(
            Reconfigurator.map_command("policy-engine", "a", "out", "b", "in")
        )
        assert outcome.applied
        assert len(bus.channels_of(a)) == 1

    def test_map_respects_ifc(self, setup, zeb_device):
        bus, rc, a, b, c = setup
        zeb = make_component("zeb", zeb_device, a.endpoints["out"].message_type,
                             owner="op")
        zeb.allow_controller("policy-engine")
        bus.register(zeb)
        outcome = rc.apply(
            Reconfigurator.map_command("policy-engine", "zeb", "out", "b", "in")
        )
        assert not outcome.applied  # flow rule refused; reported not raised

    def test_unmap_specific_sink(self, setup):
        bus, rc, a, b, c = setup
        rc.apply(Reconfigurator.map_command("policy-engine", "a", "out", "b", "in"))
        rc.apply(Reconfigurator.map_command("policy-engine", "a", "out", "c", "in"))
        outcome = rc.apply(
            ControlMessage("policy-engine", "a", CommandKind.UNMAP, {"sink": "b"})
        )
        assert outcome.applied
        remaining = [ch.sink.name for ch in bus.channels_of(a)]
        assert remaining == ["c"]

    def test_unmap_all(self, setup):
        bus, rc, a, b, c = setup
        rc.apply(Reconfigurator.map_command("policy-engine", "a", "out", "b", "in"))
        rc.apply(Reconfigurator.map_command("policy-engine", "a", "out", "c", "in"))
        rc.apply(ControlMessage("policy-engine", "a", CommandKind.UNMAP))
        assert bus.channels_of(a) == []

    def test_set_context_uses_targets_privileges(self, setup, ann_device):
        bus, rc, a, b, c = setup
        proposed = ann_device.add_secrecy("extra")
        outcome = rc.apply(
            Reconfigurator.set_context_command("policy-engine", "a", proposed)
        )
        assert not outcome.applied  # a holds no privileges
        a.privileges = PrivilegeSet.of(add_secrecy=["extra"])
        outcome = rc.apply(
            Reconfigurator.set_context_command("policy-engine", "a", proposed)
        )
        assert outcome.applied
        assert "extra" in a.context.secrecy

    def test_grant_privilege_via_authority(self, setup):
        bus, rc, a, b, c = setup
        registry = TagRegistry()
        registry.register("medical", owner="policy-engine")
        rc.privilege_authority = PrivilegeAuthority(registry)
        granted = PrivilegeSet.of(remove_secrecy=["medical"])
        outcome = rc.apply(
            Reconfigurator.grant_command("policy-engine", "a", granted)
        )
        assert outcome.applied
        assert a.privileges.covers(granted)

    def test_grant_refused_when_issuer_lacks_privilege(self, setup):
        bus, rc, a, b, c = setup
        registry = TagRegistry()
        registry.register("medical", owner="someone-else")
        rc.privilege_authority = PrivilegeAuthority(registry)
        outcome = rc.apply(
            Reconfigurator.grant_command(
                "policy-engine", "a", PrivilegeSet.of(remove_secrecy=["medical"])
            )
        )
        assert not outcome.applied

    def test_divert_redirects_flows(self, setup):
        """§5.2: 'forcing data through a sanitiser'."""
        bus, rc, a, b, c = setup
        rc.apply(Reconfigurator.map_command("policy-engine", "a", "out", "b", "in"))
        outcome = rc.apply(
            ControlMessage(
                "policy-engine", "a", CommandKind.DIVERT,
                {"new_sink": "c", "new_sink_endpoint": "in"},
            )
        )
        assert outcome.applied
        sinks = [ch.sink.name for ch in bus.channels_of(a)]
        assert sinks == ["c"]

    def test_isolate_severs_everything(self, setup):
        """§5.2: 'preventing a rogue thing from causing more damage'."""
        bus, rc, a, b, c = setup
        rc.apply(Reconfigurator.map_command("policy-engine", "a", "out", "b", "in"))
        rc.apply(Reconfigurator.map_command("policy-engine", "c", "out", "a", "in"))
        outcome = rc.apply(
            ControlMessage("policy-engine", "a", CommandKind.ISOLATE)
        )
        assert outcome.applied
        assert bus.channels_of(a) == []

    def test_shutdown_stops_component(self, setup):
        bus, rc, a, b, c = setup
        outcome = rc.apply(
            ControlMessage("policy-engine", "a", CommandKind.SHUTDOWN)
        )
        assert outcome.applied
        assert not a.running


class TestAudit:
    def test_applied_commands_audited(self, setup, audit):
        bus, rc, a, b, c = setup
        rc.apply(Reconfigurator.map_command("policy-engine", "a", "out", "b", "in"))
        records = audit.records(kind=RecordKind.RECONFIGURATION)
        assert records
        assert records[0].actor == "policy-engine"
        assert records[0].detail["command"] == "map"

    def test_batch_outcomes(self, setup):
        bus, rc, a, b, c = setup
        outcomes = rc.apply_all([
            Reconfigurator.map_command("policy-engine", "a", "out", "b", "in"),
            Reconfigurator.map_command("mallory", "a", "out", "c", "in"),
        ])
        assert [o.applied for o in outcomes] == [True, False]
