"""Things: sensors, actuators, apps, device profiles."""

import pytest

from repro.errors import SchemaError
from repro.ifc import SecurityContext
from repro.iot import (
    ACTUATION,
    Actuator,
    App,
    DeviceClass,
    DeviceProfile,
    EnforcementPlacement,
    Sensor,
    enforcement_plan,
)
from repro.iot.world import IoTWorld
from repro.middleware import EndpointKind, MessageBus


class TestDeviceProfile:
    def test_memory_constraint(self):
        profile = DeviceProfile(DeviceClass.CONSTRAINED, memory_capacity=4.0)
        assert profile.can_hold_tags(4)
        assert not profile.can_hold_tags(5)

    def test_battery_drain_and_exhaustion(self):
        profile = DeviceProfile(DeviceClass.CONSTRAINED, battery=12.0)
        assert profile.perform_check()     # costs 5.0
        assert profile.perform_check()     # costs 5.0 -> 2.0 left
        assert profile.exhausted
        assert not profile.perform_check()
        assert profile.enforcement_ops == 2

    def test_mains_powered_never_exhausts(self):
        profile = DeviceProfile(DeviceClass.SERVER)
        for __ in range(1000):
            assert profile.perform_check()

    def test_placement_offloads_on_memory(self):
        profile = DeviceProfile(DeviceClass.CONSTRAINED, memory_capacity=2.0)
        placement = enforcement_plan(profile, tag_count=10,
                                     expected_checks_per_hour=1)
        assert placement == EnforcementPlacement.GATEWAY

    def test_placement_offloads_on_energy(self):
        profile = DeviceProfile(
            DeviceClass.CONSTRAINED, memory_capacity=100.0, battery=100.0
        )
        placement = enforcement_plan(profile, tag_count=2,
                                     expected_checks_per_hour=100)
        assert placement == EnforcementPlacement.GATEWAY

    def test_placement_local_when_cheap(self):
        profile = DeviceProfile(DeviceClass.GATEWAY, memory_capacity=100.0)
        placement = enforcement_plan(profile, tag_count=5,
                                     expected_checks_per_hour=100)
        assert placement == EnforcementPlacement.LOCAL


class TestSensor:
    def test_sampling_on_schedule(self, world):
        domain = world.create_domain("home")
        sensor = Sensor("s", source=lambda t: 1.0, interval=10.0)
        domain.adopt(sensor)
        sensor.start(world.sim, domain.bus)
        world.run(seconds=35.0)
        assert sensor.samples_taken == 3

    def test_interval_change_reschedules(self, world):
        domain = world.create_domain("home")
        sensor = Sensor("s", source=lambda t: 1.0, interval=10.0)
        domain.adopt(sensor)
        sensor.start(world.sim, domain.bus)
        world.run(seconds=20.0)           # 2 samples
        sensor.set_interval(5.0)
        world.run(seconds=20.0)           # 4 more samples
        assert sensor.samples_taken == 6

    def test_invalid_interval_rejected(self):
        with pytest.raises(SchemaError):
            Sensor("s", source=lambda t: 0.0, interval=0.0)
        sensor = Sensor("s", source=lambda t: 0.0, interval=1.0)
        with pytest.raises(SchemaError):
            sensor.set_interval(-5.0)

    def test_stop_halts_sampling(self, world):
        domain = world.create_domain("home")
        sensor = Sensor("s", source=lambda t: 1.0, interval=10.0)
        domain.adopt(sensor)
        sensor.start(world.sim, domain.bus)
        world.run(seconds=15.0)
        sensor.stop()
        world.run(seconds=50.0)
        assert sensor.samples_taken == 1

    def test_control_endpoint_actuates_interval(self, world):
        domain = world.create_domain("home")
        sensor = Sensor("s", source=lambda t: 1.0, interval=100.0)
        domain.adopt(sensor)
        controller = App("controller", message_type=ACTUATION, owner="home")
        domain.adopt(controller)
        domain.bus.connect("home", controller, "out", sensor, "control")
        domain.bus.publish(controller, "out", command="set-interval",
                           argument=10.0)
        assert sensor.interval == 10.0

    def test_readings_carry_sensor_context(self, world, ann_device):
        domain = world.create_domain("home")
        sensor = Sensor("s", source=lambda t: 2.0, interval=10.0,
                        context=ann_device, owner="home")
        received = []
        analyser = App("analyser", context=ann_device, owner="home",
                       process=lambda app, m: received.append(m))
        domain.adopt(sensor)
        domain.adopt(analyser)
        domain.bus.connect("home", sensor, "out", analyser, "in")
        sensor.start(world.sim, domain.bus)
        world.run(seconds=10.0)
        assert received[0].context == ann_device
        assert received[0].values["value"] == 2.0


class TestActuator:
    def test_commands_recorded_as_effects(self, world):
        domain = world.create_domain("home")
        applied = []
        actuator = Actuator("valve",
                            apply_effect=lambda cmd, arg: applied.append((cmd, arg)),
                            owner="home")
        domain.adopt(actuator)
        commander = App("ctl", message_type=ACTUATION, owner="home")
        domain.adopt(commander)
        domain.bus.connect("home", commander, "out", actuator, "in")
        domain.bus.publish(commander, "out", command="open", argument=0.5)
        assert applied == [("open", 0.5)]
        assert actuator.effects[0]["command"] == "open"

    def test_actuation_blocked_by_integrity_demand(self, world):
        """Concern 2: actuation commands need integrity endorsement."""
        domain = world.create_domain("home")
        actuator = Actuator(
            "door",
            context=SecurityContext.of([], ["authorised-cmd"]),
            owner="home",
        )
        domain.adopt(actuator)
        rogue = App("rogue", message_type=ACTUATION, owner="home")
        domain.adopt(rogue)
        from repro.errors import FlowError

        with pytest.raises(FlowError):
            domain.bus.connect("home", rogue, "out", actuator, "in")
        assert actuator.effects == []
