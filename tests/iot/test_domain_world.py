"""Administrative domains, gateways, and the world builder (§2, §9.3)."""

import pytest

from repro.accesscontrol import EnforcementMode
from repro.errors import DiscoveryError
from repro.ifc import SecurityContext
from repro.iot import (
    READING,
    App,
    DomainGateway,
    IoTWorld,
    Sensor,
    Thing,
    vital_signs,
)
from repro.middleware import Message


class TestDomain:
    def test_adopt_registers_everywhere(self, world):
        domain = world.create_domain("home")
        thing = Thing("lamp", owner="ada")
        domain.adopt(thing)
        assert domain.bus.component("lamp") is thing
        assert domain.discovery.lookup("lamp") is thing
        assert domain.authority.may_author_policy("ada", "lamp")
        assert thing.is_controller(domain.engine.name)

    def test_expel_removes_and_tears_down(self, world, reading_type):
        domain = world.create_domain("home")
        a = Sensor("a", source=lambda t: 1.0, interval=10.0, owner="op")
        b = App("b", owner="op")
        domain.adopt(a)
        domain.adopt(b)
        channel = domain.bus.connect("op", a, "out", b, "in")
        domain.expel("a")
        assert not channel.alive
        with pytest.raises(DiscoveryError):
            domain.expel("a")

    def test_duplicate_domain_rejected(self, world):
        world.create_domain("x")
        with pytest.raises(DiscoveryError):
            world.create_domain("x")

    def test_context_changes_of_adopted_things_audited(self, world):
        from repro.audit import RecordKind
        from repro.ifc import PrivilegeSet

        domain = world.create_domain("home")
        thing = Thing(
            "t",
            context=SecurityContext.of(["s"], []),
            privileges=PrivilegeSet.of(remove_secrecy=["s"]),
            owner="op",
        )
        domain.adopt(thing)
        thing.remove_secrecy("s")
        declass = domain.audit.records(kind=RecordKind.DECLASSIFICATION)
        assert declass and declass[0].actor == "t"


class TestDomainGateway:
    def _federated(self, world):
        home = world.create_domain("home")
        cloud = world.create_domain("cloud")
        ctx = SecurityContext.of(["home-data"], [])
        sensor = Sensor("meter", source=lambda t: 1.0, interval=10.0,
                        context=ctx, owner="home")
        home.adopt(sensor)
        gateway = DomainGateway(
            "gw", inner=home, outer=cloud, message_type=READING,
            context=ctx, owner="home",
        )
        collector = App("collector", context=ctx, owner="cloud")
        cloud.adopt(collector)
        home.bus.connect("home", sensor, "out", gateway, "ingress")
        cloud.bus.connect("cloud", gateway, "egress", collector, "in")
        return home, cloud, sensor, gateway, collector

    def test_bridging_delivers_across_domains(self, world):
        home, cloud, sensor, gateway, collector = self._federated(world)
        sensor.start(world.sim, home.bus)
        world.run(seconds=30.0)
        assert gateway.forwarded == 3
        assert len(collector.received) == 3

    def test_both_domains_audit_the_transit(self, world):
        home, cloud, sensor, gateway, collector = self._federated(world)
        sensor.start(world.sim, home.bus)
        world.run(seconds=10.0)
        assert home.audit.records(actor="meter", subject="gw")
        assert cloud.audit.records(actor="gw", subject="collector")

    def test_transform_can_drop_messages(self, world):
        home = world.create_domain("h")
        cloud = world.create_domain("c")
        gateway = DomainGateway(
            "filter-gw", inner=home, outer=cloud, message_type=READING,
            transform=lambda m: None if m.values["value"] > 5 else m,
            owner="h",
        )
        message = Message(READING, {"value": 10.0})
        gateway._on_message(gateway, gateway.endpoints["ingress"], message)
        assert gateway.dropped == 1
        assert gateway.forwarded == 0

    def test_outer_domain_ifc_still_applies(self, world):
        """The gateway cannot push labelled data to an unlabelled
        outer-domain sink — enforcement at the gateway hop (§2.1)."""
        home = world.create_domain("h")
        cloud = world.create_domain("c")
        ctx = SecurityContext.of(["home-data"], [])
        gateway = DomainGateway("gw", inner=home, outer=cloud,
                                message_type=READING, context=ctx, owner="h")
        public_sink = App("public-app", owner="c")
        cloud.adopt(public_sink)
        from repro.errors import FlowError

        with pytest.raises(FlowError):
            cloud.bus.connect("c", gateway, "egress", public_sink, "in")


class TestWorld:
    def test_run_advances_clock(self, world):
        world.run(hours=1.0)
        assert world.sim.now() == 3600.0

    def test_collect_audit_federates_domains(self, world):
        d1 = world.create_domain("d1")
        d2 = world.create_domain("d2")
        d1.audit.flow_allowed("a", "b")
        d2.audit.flow_allowed("c", "d")
        collector = world.collect_audit()
        assert len(collector.merged()) == 2

    def test_mode_propagates_to_domains(self):
        world = IoTWorld(mode=EnforcementMode.AC_ONLY)
        domain = world.create_domain("d")
        assert domain.bus.mode == EnforcementMode.AC_ONLY

    def test_total_flows_aggregates(self, world):
        domain = world.create_domain("d")
        a = Sensor("a", source=lambda t: 1.0, interval=10.0, owner="op")
        b = App("b", owner="op")
        domain.adopt(a)
        domain.adopt(b)
        domain.bus.connect("op", a, "out", b, "in")
        a.start(world.sim, domain.bus)
        world.run(seconds=30.0)
        assert world.total_flows()["delivered"] == 3


class TestWorkloads:
    def test_signals_deterministic(self):
        a = vital_signs(seed=1)
        b = vital_signs(seed=1)
        assert [a(t) for t in (0.0, 60.0)] == [b(t) for t in (0.0, 60.0)]

    def test_different_seeds_differ(self):
        assert vital_signs(seed=1)(0.0) != vital_signs(seed=2)(0.0)

    def test_emergency_overlay(self):
        from repro.iot import with_emergency

        base = lambda t: 70.0
        signal = with_emergency(base, start=100.0, duration=50.0, magnitude=80.0)
        assert signal(50.0) == 70.0
        assert signal(140.0) > 140.0
        assert signal(200.0) == 70.0

    def test_cohort_deterministic(self):
        from repro.iot import patient_cohort

        a = patient_cohort(20, seed=5)
        b = patient_cohort(20, seed=5)
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.device_standard for p in a] == [p.device_standard for p in b]
        assert any(p.emergency_at is not None for p in patient_cohort(
            100, seed=5, emergency_fraction=0.5))
