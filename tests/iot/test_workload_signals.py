"""Workload signal generators: shape and determinism (§1's domains)."""

import pytest

from repro.iot import energy_usage, traffic_flow, vital_signs
from repro.iot.workloads import PatientProfile


class TestTrafficFlow:
    def test_rush_hours_peak(self):
        signal = traffic_flow(seed=3)
        morning_rush = signal(8.5 * 3600)
        midnight = signal(0.5 * 3600)
        assert morning_rush > midnight * 2

    def test_never_negative(self):
        signal = traffic_flow(seed=3)
        assert all(signal(t * 977.0) >= 0.0 for t in range(100))

    def test_deterministic(self):
        a = traffic_flow(seed=4)
        b = traffic_flow(seed=4)
        assert [a(t) for t in (0.0, 3600.0)] == [b(t) for t in (0.0, 3600.0)]


class TestEnergyUsage:
    def test_evening_peak(self):
        signal = energy_usage(seed=5)
        evening = sum(signal(19 * 3600 + i * 60) for i in range(10))
        dawn = sum(signal(4 * 3600 + i * 60) for i in range(10))
        assert evening > dawn

    def test_positive_base_load(self):
        signal = energy_usage(seed=5, base_load=0.4)
        assert all(signal(t * 601.0) >= 0.4 for t in range(50))


class TestVitalSigns:
    def test_circadian_rhythm(self):
        signal = vital_signs(seed=6, variability=0.0, circadian_amplitude=6.0)
        midday = signal(12 * 3600.0)
        midnight = signal(0.0)
        assert midday > midnight  # heart rate higher awake

    def test_baseline_respected(self):
        signal = vital_signs(seed=6, baseline=60.0, variability=1.0)
        samples = [signal(t * 301.0) for t in range(200)]
        mean = sum(samples) / len(samples)
        assert 55.0 < mean < 65.0


class TestPatientSignals:
    def test_distinct_patients_get_distinct_signals(self):
        ann = PatientProfile("ann", device_standard=True).signal(seed=1)
        zeb = PatientProfile("zeb", device_standard=True).signal(seed=1)
        assert ann(0.0) != zeb(0.0)

    def test_emergency_window_elevates(self):
        profile = PatientProfile(
            "pat", device_standard=True,
            emergency_at=1000.0, emergency_duration=500.0,
        )
        signal = profile.signal(seed=2)
        normal = signal(100.0)
        during = signal(1400.0)
        after = signal(2000.0)
        assert during > normal + 40.0
        assert abs(after - normal) < 40.0

    def test_signal_stable_across_processes(self):
        """The per-name salt must not depend on interpreter hash seed."""
        profile = PatientProfile("ann", device_standard=True)
        a = profile.signal(seed=0)(0.0)
        b = PatientProfile("ann", device_standard=True).signal(seed=0)(0.0)
        assert a == b
