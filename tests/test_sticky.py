"""Sticky policies — the §10.2 comparator, including its gap."""

import pytest

from repro.crypto import (
    StickyBundle,
    StickyParty,
    StickyPolicy,
    TrustedAuthority,
)
from repro.errors import CertificateError


@pytest.fixture
def sealed():
    authority = TrustedAuthority()
    policy = StickyPolicy(
        allowed_purposes=("research",),
        allowed_parties=("university",),
    )
    bundle = authority.seal({"hr": [72.0, 75.0]}, policy, owner="ann")
    return authority, bundle


class TestMechanism:
    def test_allowed_party_and_purpose_gets_key(self, sealed):
        authority, bundle = sealed
        party = StickyParty("university")
        payload = party.obtain(authority, bundle, purpose="research")
        assert payload == {"hr": [72.0, 75.0]}

    def test_wrong_party_refused(self, sealed):
        authority, bundle = sealed
        party = StickyParty("advertiser")
        with pytest.raises(CertificateError):
            party.obtain(authority, bundle, purpose="research")

    def test_wrong_purpose_refused(self, sealed):
        authority, bundle = sealed
        party = StickyParty("university")
        with pytest.raises(CertificateError):
            party.obtain(authority, bundle, purpose="marketing")

    def test_open_party_list_admits_any_promiser(self):
        authority = TrustedAuthority()
        bundle = authority.seal(
            "data", StickyPolicy(allowed_purposes=("x",)), owner="o")
        payload = StickyParty("anyone").obtain(authority, bundle, "x")
        assert payload == "data"

    def test_owner_sees_key_releases(self, sealed):
        authority, bundle = sealed
        StickyParty("university").obtain(authority, bundle, "research")
        assert len(authority.releases) == 1
        release = authority.releases[0]
        assert release.party == "university"
        assert release.owner == "ann"


class TestTheGap:
    """The paper's criticism, demonstrated as executable fact."""

    def test_post_decryption_resharing_is_invisible(self, sealed):
        authority, bundle = sealed
        university = StickyParty("university")
        university.obtain(authority, bundle, "research")
        advertiser = StickyParty("advertiser")

        university.reshare(advertiser)   # nothing prevents this

        assert advertiser.plaintexts == [{"hr": [72.0, 75.0]}]
        # and the authority saw exactly one release — the leak is
        # invisible: "no means to ensure the proper usage of data once
        # decrypted".
        assert len(authority.releases) == 1
        assert all(r.party == "university" for r in authority.releases)

    def test_contrast_with_ifc(self):
        """The same leak attempt under IFC is blocked AND audited."""
        from repro.audit import AuditLog
        from repro.ifc import SecurityContext, flow_decision

        log = AuditLog()
        ann_data = SecurityContext.of(["medical", "ann"], [])
        advertiser = SecurityContext.public()
        decision = flow_decision(ann_data, advertiser)
        assert not decision.allowed
        log.flow_denied("university", "advertiser", decision.reason,
                        ann_data, advertiser)
        assert log.denials()  # the attempt itself is evidence
