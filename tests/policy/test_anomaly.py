"""Online anomaly detection feeding policy (§5)."""

import pytest

from repro.errors import PolicyError
from repro.policy import AnomalyDetector, Event, StreamStats


def reading(value: float, t: float, source: str = "meter") -> Event:
    return Event("reading", {"value": value}, source=source, timestamp=t)


class TestStreamStats:
    def test_welford_matches_batch_statistics(self):
        import statistics

        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = StreamStats()
        for v in values:
            stats.update(v)
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.variance == pytest.approx(statistics.variance(values))

    def test_zscore_undefined_early(self):
        stats = StreamStats()
        assert stats.zscore(1.0) is None
        stats.update(5.0)
        assert stats.zscore(1.0) is None
        stats.update(5.0)  # zero variance
        assert stats.zscore(1.0) is None


class TestAnomalyDetector:
    def _detector(self, sink, threshold=4.0, warmup=10):
        return AnomalyDetector(
            "watchdog", sink, event_type="reading", attribute="value",
            threshold=threshold, warmup=warmup,
        )

    def test_learns_baseline_then_flags_outlier(self):
        derived = []
        detector = self._detector(derived.append)
        for i in range(30):
            detector.process(reading(10.0 + (i % 3) * 0.1, float(i)))
        assert derived == []
        detector.process(reading(100.0, 31.0))
        assert len(derived) == 1
        anomaly = derived[0]
        assert anomaly.type == "anomaly-detected"
        assert anomaly.attributes["suspect"] == "meter"
        assert abs(anomaly.attributes["zscore"]) > 4.0

    def test_no_alarms_during_warmup(self):
        derived = []
        detector = self._detector(derived.append, warmup=50)
        for i in range(20):
            detector.process(reading(10.0, float(i)))
        detector.process(reading(1000.0, 21.0))
        assert derived == []

    def test_anomalies_not_learned(self):
        derived = []
        detector = self._detector(derived.append, warmup=5)
        for i in range(20):
            detector.process(reading(10.0 + (i % 5) * 0.1, float(i)))
        baseline = detector.stats.mean
        detector.process(reading(500.0, 20.0))
        assert detector.stats.mean == baseline  # outlier excluded
        # a second identical outlier still fires
        detector.process(reading(500.0, 21.0))
        assert len(derived) == 2

    def test_normal_drift_is_absorbed(self):
        derived = []
        detector = self._detector(derived.append, threshold=6.0, warmup=5)
        for i in range(200):
            detector.process(reading(10.0 + i * 0.05 + (i % 7) * 0.3, float(i)))
        assert derived == []

    def test_non_numeric_ignored(self):
        derived = []
        detector = self._detector(derived.append)
        detector.process(Event("reading", {"value": "junk"}, timestamp=0.0))
        detector.process(Event("reading", {"value": True}, timestamp=1.0))
        assert detector.stats.count == 0

    def test_validation(self):
        with pytest.raises(PolicyError):
            AnomalyDetector("a", lambda e: None, "r", "v", threshold=0.0)
        with pytest.raises(PolicyError):
            AnomalyDetector("a", lambda e: None, "r", "v", warmup=1)

    def test_drives_rogue_isolation_policy(self):
        """End to end: anomaly -> rogue-isolation template -> ISOLATE."""
        from repro.ifc import SecurityContext
        from repro.middleware import (
            EndpointKind,
            MessageBus,
            MessageType,
            Reconfigurator,
        )
        from repro.policy import PolicyEngine, standard_library
        from tests.conftest import make_component

        reading_type = MessageType.simple("reading", value=float)
        bus = MessageBus()
        ctx = SecurityContext.of(["city"], [])
        rogue = make_component("hacked-meter", ctx, reading_type, owner="op")
        sink = make_component("collector", ctx, reading_type, owner="op")
        rogue.allow_controller("pe")
        bus.register(rogue)
        bus.register(sink)
        bus.connect("op", rogue, "out", sink, "in")
        engine = PolicyEngine("pe", Reconfigurator(bus))
        for rule in standard_library().instantiate(
            "rogue-isolation", engine="pe", thing="hacked-meter"
        ):
            engine.add_rule(rule)
        detector = AnomalyDetector(
            "watchdog", engine.handle_event,
            event_type="reading", attribute="value", warmup=5,
            source_filter="hacked-meter",
        )
        for i in range(20):
            detector.process(reading(1.0 + (i % 4) * 0.01, float(i),
                                     source="hacked-meter"))
        assert bus.channels_of(rogue)          # still connected
        detector.process(reading(9999.0, 21.0, source="hacked-meter"))
        assert bus.channels_of(rogue) == []    # isolated by policy
