"""The textual policy DSL (Challenge 2)."""

import pytest

from repro.errors import PolicyError
from repro.middleware import CommandKind
from repro.policy import (
    CommandAction,
    ContextAction,
    NotifyAction,
    parse_rules,
)

FULL_DOCUMENT = """
# Hospital emergency policy
rule emergency-alert
  on reading from ann-analyser
  when heart_rate > 150 and location == 'home'
  priority 10
  author hospital
  do notify emergency "Emergency: {heart_rate}"
  do set emergency.active = true
  do map engine: analyser.alert -> doctor.in

rule stand-down
  on resolved
  priority 5
  do set emergency.active = false
  do unmap engine: analyser -> doctor
"""


class TestParsing:
    def test_full_document(self):
        rules = parse_rules(FULL_DOCUMENT)
        assert [r.name for r in rules] == ["emergency-alert", "stand-down"]

    def test_clauses_populated(self):
        rule = parse_rules(FULL_DOCUMENT)[0]
        assert rule.event_type == "reading"
        assert rule.source_filter == "ann-analyser"
        assert rule.priority == 10
        assert rule.author == "hospital"
        assert rule.condition is not None
        assert rule.condition({"heart_rate": 160, "location": "home"})

    def test_action_types(self):
        rule = parse_rules(FULL_DOCUMENT)[0]
        assert isinstance(rule.actions[0], NotifyAction)
        assert isinstance(rule.actions[1], ContextAction)
        assert isinstance(rule.actions[2], CommandAction)
        command = rule.actions[2].command
        assert command.kind == CommandKind.MAP
        assert command.issuer == "engine"
        assert command.target == "analyser"
        assert command.arguments["sink"] == "doctor"

    def test_unmap_with_sink(self):
        rule = parse_rules(FULL_DOCUMENT)[1]
        command = rule.actions[1].command
        assert command.kind == CommandKind.UNMAP
        assert command.arguments["sink"] == "doctor"

    def test_set_literal_types(self):
        rules = parse_rules(
            "rule r\n  on e\n"
            "  do set a = 1\n  do set b = 1.5\n"
            "  do set c = 'text'\n  do set d = false\n  do set e = none\n"
        )
        values = [a.value for a in rules[0].actions]
        assert values == [1, 1.5, "text", False, None]

    def test_divert_isolate_shutdown(self):
        rules = parse_rules(
            "rule r\n  on e\n"
            "  do divert engine: sensor -> sanitiser.in\n"
            "  do isolate engine: rogue\n"
            "  do shutdown engine: rogue\n"
        )
        kinds = [a.command.kind for a in rules[0].actions]
        assert kinds == [CommandKind.DIVERT, CommandKind.ISOLATE,
                         CommandKind.SHUTDOWN]

    def test_comments_and_blank_lines_ignored(self):
        rules = parse_rules(
            "# top comment\n\nrule r  # trailing\n  on e\n"
            "  do notify x \"hi\"\n\n"
        )
        assert len(rules) == 1


class TestErrors:
    @pytest.mark.parametrize("text,fragment", [
        ("on e\n  do notify x", "outside a rule"),
        ("rule r\n  do notify x \"m\"", "no 'on' clause"),
        ("rule r\n  on e", "no 'do' clause"),
        ("rule r\n  on e\n  priority abc\n  do notify x", "integer"),
        ("rule r\n  on e\n  do fly away", "unknown action verb"),
        ("rule r\n  on e\n  do map engine: a -> b", "component.endpoint"),
        ("rule r\n  on e\n  do map a.out -> b.in", "issuer"),
        ("rule r\n  on e\n  do set x 5", "set needs"),
        ("rule r\n  on e\n  when ???\n  do notify x", "unexpected"),
        ("rule r\n  on e\n  gibberish line\n  do notify x", "cannot parse"),
    ])
    def test_syntax_errors(self, text, fragment):
        with pytest.raises(PolicyError) as excinfo:
            parse_rules(text)
        assert fragment in str(excinfo.value)

    def test_error_carries_line_number(self):
        with pytest.raises(PolicyError) as excinfo:
            parse_rules("rule r\n  on e\n  do fly x: y\n")
        assert "line 3" in str(excinfo.value)
