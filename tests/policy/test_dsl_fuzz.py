"""Property-based fuzzing of the policy DSL and expression language."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolicyError, ReproError
from repro.policy import Expression, parse_rules
from repro.policy.expr import evaluate, parse

identifiers = st.text(
    alphabet=string.ascii_lowercase + "-", min_size=1, max_size=10
).filter(lambda s: s[0].isalpha() and not s.endswith("-"))

numbers = st.integers(min_value=0, max_value=10_000)


@given(identifiers, identifiers, numbers, identifiers)
def test_generated_rules_always_parse(name, event, priority, channel):
    """Any structurally valid document parses to matching rules."""
    text = (
        f"rule {name}\n"
        f"  on {event}\n"
        f"  priority {priority}\n"
        f'  do notify {channel} "msg"\n'
    )
    rules = parse_rules(text)
    assert rules[0].name == name
    assert rules[0].event_type == event
    assert rules[0].priority == priority


@given(st.text(max_size=120))
def test_dsl_never_crashes_unhandled(text):
    """Arbitrary input either parses or raises PolicyError — never
    anything else (the parser is a safe boundary for untrusted policy)."""
    try:
        parse_rules(text)
    except PolicyError:
        pass


@given(st.text(max_size=60))
def test_expression_parser_never_crashes_unhandled(text):
    try:
        parse(text)
    except PolicyError:
        pass


expression_values = st.integers(min_value=-1000, max_value=1000)


@given(expression_values, expression_values)
def test_comparison_expressions_agree_with_python(a, b):
    scope = {"a": a, "b": b}
    for op in ("<", "<=", ">", ">=", "==", "!="):
        expr = Expression(f"a {op} b")
        expected = eval(f"a {op} b")  # noqa: S307 - test oracle
        assert expr(scope) == expected


@given(expression_values, expression_values)
def test_arithmetic_matches_python(a, b):
    scope = {"a": a, "b": b}
    assert Expression("a + b")(scope) == a + b
    assert Expression("a - b")(scope) == a - b
    assert Expression("a * b")(scope) == a * b
    if b != 0:
        assert Expression("a / b")(scope) == a / b


@given(st.booleans(), st.booleans(), st.booleans())
def test_boolean_logic_matches_python(p, q, r):
    scope = {"p": p, "q": q, "r": r}
    assert Expression("p and q or not r")(scope) == (p and q or not r)
    assert Expression("not (p or q) and r")(scope) == (not (p or q) and r)
