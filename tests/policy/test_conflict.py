"""Policy conflict detection and resolution (Challenge 4)."""

import pytest

from repro.ifc import SecurityContext
from repro.middleware import CommandKind, ControlMessage, Reconfigurator
from repro.policy import (
    NotifyAction,
    Proposal,
    ResolutionStrategy,
    Rule,
    commands_conflict,
    detect_conflicts,
    resolve,
)


def rule(name: str, priority: int = 0) -> Rule:
    return Rule.build(name, "*", actions=[NotifyAction("x")], priority=priority)


def map_cmd(target="a", sink="b"):
    return Reconfigurator.map_command("pe", target, "out", sink, "in")


def unmap_cmd(target="a", sink=None):
    args = {} if sink is None else {"sink": sink}
    return ControlMessage("pe", target, CommandKind.UNMAP, args)


class TestDetection:
    def test_map_vs_unmap_same_connection(self):
        assert commands_conflict(map_cmd(), unmap_cmd(sink="b")) is not None

    def test_map_vs_unmap_different_sink_ok(self):
        assert commands_conflict(map_cmd(sink="b"), unmap_cmd(sink="c")) is None

    def test_blanket_unmap_conflicts_with_any_map(self):
        assert commands_conflict(map_cmd(), unmap_cmd()) is not None

    def test_different_targets_never_conflict(self):
        assert commands_conflict(map_cmd(target="a"), unmap_cmd(target="z")) is None

    def test_set_context_disagreement(self):
        a = Reconfigurator.set_context_command(
            "pe", "t", SecurityContext.of(["x"], [])
        )
        b = Reconfigurator.set_context_command(
            "pe", "t", SecurityContext.of(["y"], [])
        )
        assert commands_conflict(a, b) is not None

    def test_set_context_agreement_no_conflict(self):
        ctx = SecurityContext.of(["x"], [])
        a = Reconfigurator.set_context_command("pe", "t", ctx)
        b = Reconfigurator.set_context_command("pe", "t", ctx)
        assert commands_conflict(a, b) is None

    def test_shutdown_conflicts_with_constructive(self):
        shutdown = ControlMessage("pe", "a", CommandKind.SHUTDOWN)
        assert commands_conflict(shutdown, map_cmd()) is not None

    def test_divert_disagreement(self):
        a = ControlMessage("pe", "t", CommandKind.DIVERT,
                           {"new_sink": "x", "new_sink_endpoint": "in"})
        b = ControlMessage("pe", "t", CommandKind.DIVERT,
                           {"new_sink": "y", "new_sink_endpoint": "in"})
        assert commands_conflict(a, b) is not None

    def test_detect_lists_all_pairs(self):
        proposals = [
            Proposal(rule("r1"), map_cmd()),
            Proposal(rule("r2"), unmap_cmd(sink="b")),
            Proposal(rule("r3"), ControlMessage("pe", "a", CommandKind.SHUTDOWN)),
        ]
        conflicts = detect_conflicts(proposals)
        assert len(conflicts) == 2  # r1-r2 and r1-r3 (r2 vs r3 both restrictive)


class TestResolution:
    def test_priority_strategy(self):
        high = Proposal(rule("high", priority=10), map_cmd())
        low = Proposal(rule("low", priority=1), unmap_cmd(sink="b"))
        result = resolve([low, high], ResolutionStrategy.PRIORITY)
        assert [p.rule.name for p in result.accepted] == ["high"]
        assert result.rejected[0][0].rule.name == "low"

    def test_deny_overrides_strategy(self):
        connect = Proposal(rule("connect", priority=100), map_cmd())
        sever = Proposal(rule("sever", priority=1), unmap_cmd(sink="b"))
        result = resolve([connect, sever], ResolutionStrategy.DENY_OVERRIDES)
        assert [p.rule.name for p in result.accepted] == ["sever"]

    def test_first_match_strategy(self):
        first = Proposal(rule("first"), map_cmd())
        second = Proposal(rule("second", priority=99), unmap_cmd(sink="b"))
        result = resolve([first, second], ResolutionStrategy.FIRST_MATCH)
        assert [p.rule.name for p in result.accepted] == ["first"]

    def test_priority_tie_breaks_by_order(self):
        a = Proposal(rule("a", priority=5), map_cmd())
        b = Proposal(rule("b", priority=5), unmap_cmd(sink="b"))
        result = resolve([a, b], ResolutionStrategy.PRIORITY)
        assert [p.rule.name for p in result.accepted] == ["a"]

    def test_non_conflicting_proposals_all_accepted(self):
        proposals = [
            Proposal(rule("r1"), map_cmd(target="a")),
            Proposal(rule("r2"), map_cmd(target="z", sink="q")),
        ]
        result = resolve(proposals)
        assert len(result.accepted) == 2
        assert result.conflicts == []

    def test_empty_input(self):
        result = resolve([])
        assert result.accepted == [] and result.conflicts == []

    def test_survivor_set_is_conflict_free(self):
        proposals = [
            Proposal(rule("a", priority=3), map_cmd()),
            Proposal(rule("b", priority=2), unmap_cmd(sink="b")),
            Proposal(rule("c", priority=1),
                     ControlMessage("pe", "a", CommandKind.SHUTDOWN)),
        ]
        result = resolve(proposals, ResolutionStrategy.PRIORITY)
        survivors = [p.command for p in result.accepted]
        for i in range(len(survivors)):
            for j in range(i + 1, len(survivors)):
                assert commands_conflict(survivors[i], survivors[j]) is None
