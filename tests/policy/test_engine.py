"""The policy engine: firing, conflicts, authority, audit (§8.1, Fig. 7)."""

import pytest

from repro.audit import AuditLog, RecordKind
from repro.errors import AuthorityError, PolicyError
from repro.ifc import SecurityContext
from repro.middleware import (
    CommandKind,
    ControlMessage,
    MessageBus,
    Reconfigurator,
)
from repro.policy import (
    AuthorityModel,
    CommandAction,
    ContextAction,
    Event,
    NotifyAction,
    PolicyEngine,
    ResolutionStrategy,
    Rule,
)
from tests.conftest import make_component


@pytest.fixture
def engine_setup(audit, reading_type, ann_device):
    bus = MessageBus(audit=audit)
    a = make_component("a", ann_device, reading_type, owner="op")
    b = make_component("b", ann_device, reading_type, owner="op")
    for component in (a, b):
        component.allow_controller("engine")
        bus.register(component)
    engine = PolicyEngine("engine", Reconfigurator(bus), audit=audit)
    return bus, engine, a, b


class TestRuleManagement:
    def test_duplicate_rule_name_rejected(self, engine_setup):
        __, engine, *_ = engine_setup
        engine.add_rule(Rule.build("r", "*", actions=[NotifyAction("x")]))
        with pytest.raises(PolicyError):
            engine.add_rule(Rule.build("r", "*", actions=[NotifyAction("x")]))

    def test_remove_rule(self, engine_setup):
        __, engine, *_ = engine_setup
        engine.add_rule(Rule.build("r", "*", actions=[NotifyAction("x")]))
        assert engine.remove_rule("r")
        assert not engine.remove_rule("r")

    def test_enable_disable(self, engine_setup):
        __, engine, *_ = engine_setup
        engine.add_rule(Rule.build("r", "ev", actions=[NotifyAction("x")]))
        engine.enable_rule("r", False)
        report = engine.handle_event(Event("ev"))
        assert report.fired_rules == []
        engine.enable_rule("r", True)
        report = engine.handle_event(Event("ev"))
        assert report.fired_rules == ["r"]
        with pytest.raises(PolicyError):
            engine.enable_rule("ghost")

    def test_authority_checked_at_install(self, engine_setup):
        __, engine, *_ = engine_setup
        authority = AuthorityModel()
        authority.set_owner("a", "alice")
        engine.authority = authority
        # bob has no authority over component a:
        with pytest.raises(AuthorityError):
            engine.add_rule(
                Rule.build(
                    "bobs-rule", "*", author="bob",
                    actions=[CommandAction(
                        command=ControlMessage("engine", "a", CommandKind.ISOLATE)
                    )],
                )
            )
        # alice does:
        engine.add_rule(
            Rule.build(
                "alices-rule", "*", author="alice",
                actions=[CommandAction(
                    command=ControlMessage("engine", "a", CommandKind.ISOLATE)
                )],
            )
        )


class TestFiring:
    def test_matching_rule_fires_and_audits(self, engine_setup, audit):
        __, engine, *_ = engine_setup
        engine.add_rule(
            Rule.build("r", "reading", condition="v > 10",
                       actions=[NotifyAction("alerts", "high: {v}")])
        )
        alerts = []
        engine.add_notifier(lambda ch, msg: alerts.append((ch, msg)))
        report = engine.handle_event(Event("reading", {"v": 20}))
        assert report.fired_rules == ["r"]
        assert alerts == [("alerts", "high: 20")]
        assert any(r.kind == RecordKind.POLICY_FIRED for r in audit)

    def test_non_matching_rule_does_not_fire(self, engine_setup):
        __, engine, *_ = engine_setup
        engine.add_rule(
            Rule.build("r", "reading", condition="v > 10",
                       actions=[NotifyAction("alerts")])
        )
        report = engine.handle_event(Event("reading", {"v": 5}))
        assert report.fired_rules == []

    def test_command_action_applied_through_reconfigurator(self, engine_setup):
        bus, engine, a, b = engine_setup
        engine.add_rule(
            Rule.build("wire", "emergency", actions=[
                CommandAction(
                    command=Reconfigurator.map_command("engine", "a", "out", "b", "in")
                )
            ])
        )
        report = engine.handle_event(Event("emergency"))
        assert report.outcomes[0].applied
        assert len(bus.channels_of(a)) == 1

    def test_command_builder_uses_event_data(self, engine_setup):
        bus, engine, a, b = engine_setup

        def build(event, scope):
            return Reconfigurator.map_command(
                "engine", str(event.attributes["src"]), "out", "b", "in"
            )

        engine.add_rule(
            Rule.build("wire", "emergency", actions=[CommandAction(builder=build)])
        )
        report = engine.handle_event(Event("emergency", {"src": "a"}))
        assert report.outcomes[0].applied

    def test_context_action_updates_store(self, engine_setup):
        __, engine, *_ = engine_setup
        engine.add_rule(
            Rule.build("flag", "emergency",
                       actions=[ContextAction("emergency.active", True)])
        )
        engine.handle_event(Event("emergency"))
        assert engine.context.get("emergency.active") is True

    def test_rule_firing_counts(self, engine_setup):
        __, engine, *_ = engine_setup
        rule = Rule.build("r", "ev", actions=[NotifyAction("x")])
        engine.add_rule(rule)
        engine.handle_events([Event("ev"), Event("ev"), Event("other")])
        assert rule.fired_count == 2

    def test_broken_condition_does_not_crash_engine(self, engine_setup, audit):
        __, engine, *_ = engine_setup
        engine.add_rule(
            Rule.build("broken", "ev", condition="x / 0 > 1",
                       actions=[NotifyAction("x")])
        )
        engine.add_rule(Rule.build("fine", "ev", actions=[NotifyAction("y")]))
        report = engine.handle_event(Event("ev", {"x": 1}))
        assert report.fired_rules == ["fine"]
        errors = [
            r for r in audit
            if r.kind == RecordKind.POLICY_FIRED and "error" in r.detail
        ]
        assert errors


class TestConflictHandling:
    def test_conflicting_rules_resolved_by_priority(self, engine_setup, audit):
        bus, engine, a, b = engine_setup
        engine.add_rule(
            Rule.build("connect", "ev", priority=10, actions=[
                CommandAction(
                    command=Reconfigurator.map_command("engine", "a", "out", "b", "in")
                )
            ])
        )
        engine.add_rule(
            Rule.build("sever", "ev", priority=1, actions=[
                CommandAction(
                    command=ControlMessage("engine", "a", CommandKind.UNMAP,
                                           {"sink": "b"})
                )
            ])
        )
        report = engine.handle_event(Event("ev"))
        applied_kinds = [o.command.kind for o in report.outcomes]
        assert applied_kinds == [CommandKind.MAP]
        assert any(r.kind == RecordKind.POLICY_CONFLICT for r in audit)

    def test_deny_overrides_strategy(self, engine_setup):
        bus, engine, a, b = engine_setup
        engine.strategy = ResolutionStrategy.DENY_OVERRIDES
        engine.add_rule(
            Rule.build("connect", "ev", priority=10, actions=[
                CommandAction(
                    command=Reconfigurator.map_command("engine", "a", "out", "b", "in")
                )
            ])
        )
        engine.add_rule(
            Rule.build("sever", "ev", priority=1, actions=[
                CommandAction(
                    command=ControlMessage("engine", "a", CommandKind.UNMAP)
                )
            ])
        )
        report = engine.handle_event(Event("ev"))
        assert [o.command.kind for o in report.outcomes] == [CommandKind.UNMAP]
