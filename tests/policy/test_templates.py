"""Policy templates and the standard library (Challenge 2)."""

import pytest

from repro.errors import PolicyError
from repro.policy import (
    CommandAction,
    Event,
    NotifyAction,
    PolicyTemplate,
    TemplateParameter,
    standard_library,
)


class TestTemplateMechanics:
    def _template(self) -> PolicyTemplate:
        return PolicyTemplate(
            name="t",
            description="d",
            parameters=[
                TemplateParameter("source"),
                TemplateParameter("threshold", kind="number"),
            ],
            body="""
rule $source-alert
  on reading from $source
  when value > $threshold
  do notify ward "over"
""",
        )

    def test_instantiation_produces_rules(self):
        rules = self._template().instantiate(source="ann-sensor", threshold=140)
        assert len(rules) == 1
        rule = rules[0]
        assert rule.name == "ann-sensor-alert"
        assert rule.source_filter == "ann-sensor"
        assert rule.matches(
            Event("reading", {"value": 150}, source="ann-sensor"),
            {"value": 150},
        )

    def test_missing_argument(self):
        with pytest.raises(PolicyError):
            self._template().instantiate(source="s")

    def test_unknown_argument(self):
        with pytest.raises(PolicyError):
            self._template().instantiate(source="s", threshold=1, bogus=2)

    def test_identifier_validation_blocks_injection(self):
        """A malicious value cannot smuggle extra DSL clauses."""
        with pytest.raises(PolicyError):
            self._template().instantiate(
                source="x\n  do isolate pe: everything", threshold=1
            )

    def test_number_validation(self):
        with pytest.raises(PolicyError):
            self._template().instantiate(source="s", threshold="not-a-number")
        rules = self._template().instantiate(source="s", threshold="42")
        assert rules[0].condition({"value": 43})

    def test_undeclared_placeholder_rejected_at_definition(self):
        with pytest.raises(PolicyError):
            PolicyTemplate("bad", "d", [], body="rule $ghost\n  on e\n")

    def test_defaults_used(self):
        template = PolicyTemplate(
            "t", "d",
            [TemplateParameter("ep", default="out"),
             TemplateParameter("src")],
            body="rule r\n  on e\n  do map pe: $src.$ep -> sink.in\n",
        )
        rules = template.instantiate(src="sensor")
        command = rules[0].actions[0].command
        assert command.arguments["source_endpoint"] == "out"


class TestStandardLibrary:
    def test_catalogue(self):
        library = standard_library()
        assert set(library.names()) >= {
            "threshold-alert", "emergency-replug",
            "shift-end-disconnect", "rogue-isolation",
        }
        with pytest.raises(PolicyError):
            library.get("missing")

    def test_threshold_alert_behaviour(self):
        library = standard_library()
        rules = library.instantiate(
            "threshold-alert", source="meter", threshold=5, channel="ops")
        assert rules[0].matches(
            Event("reading", {"value": 9.0}, source="meter"), {"value": 9.0})

    def test_emergency_replug_wires_break_glass(self):
        library = standard_library()
        rules = library.instantiate(
            "emergency-replug", engine="pe", stream="wearable",
            team="ambulance")
        rule = rules[0]
        commands = [a for a in rule.actions if isinstance(a, CommandAction)]
        assert commands[0].command.target == "wearable"
        assert commands[0].command.arguments["sink"] == "ambulance"
        # idempotence guard baked in:
        assert not rule.matches(Event("emergency"), {"emergency.active": True})
        assert rule.matches(Event("emergency"), {})

    def test_rogue_isolation_scoped_to_suspect(self):
        library = standard_library()
        rules = library.instantiate("rogue-isolation", engine="pe",
                                    thing="hacked-bulb")
        rule = rules[0]
        assert rule.matches(Event("anomaly-detected"),
                            {"suspect": "hacked-bulb"})
        assert not rule.matches(Event("anomaly-detected"),
                                {"suspect": "innocent-kettle"})

    def test_duplicate_template_rejected(self):
        library = standard_library()
        with pytest.raises(PolicyError):
            library.add(library.get("threshold-alert"))

    def test_engine_integration(self):
        """Template → rules → engine → reconfiguration, end to end."""
        from repro.ifc import SecurityContext
        from repro.middleware import MessageBus, Reconfigurator
        from repro.policy import PolicyEngine
        from tests.conftest import make_component
        from repro.middleware import MessageType

        reading = MessageType.simple("reading", value=float)
        bus = MessageBus()
        ctx = SecurityContext.of(["personal"], [])
        wearable = make_component("wearable", ctx, reading, owner="op")
        ambulance = make_component("ambulance", ctx, reading, owner="op")
        for component in (wearable, ambulance):
            component.allow_controller("pe")
            bus.register(component)
        engine = PolicyEngine("pe", Reconfigurator(bus))
        for rule in standard_library().instantiate(
            "emergency-replug", engine="pe", stream="wearable",
            team="ambulance"
        ):
            engine.add_rule(rule)
        report = engine.handle_event(Event("emergency"))
        assert report.outcomes and report.outcomes[0].applied
        assert len(bus.channels_of(wearable)) == 1
