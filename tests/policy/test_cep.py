"""Complex event processing: windows, sequences, absence (§5)."""

import pytest

from repro.errors import PolicyError
from repro.policy import (
    AbsenceDetector,
    Event,
    EventProcessor,
    SequenceDetector,
    SlidingWindowDetector,
)


def reading(value: float, t: float, source: str = "s") -> Event:
    return Event("reading", {"value": value}, source=source, timestamp=t)


class TestSlidingWindow:
    def _detector(self, sink, aggregate="mean", window=100.0):
        return SlidingWindowDetector(
            "d", sink, event_type="reading", attribute="value",
            window=window, aggregate=aggregate,
            predicate=lambda v: v > 100.0,
            derived_type="high",
        )

    def test_threshold_fires_once_per_excursion(self):
        derived = []
        detector = self._detector(derived.append)
        for i, value in enumerate([50, 150, 160, 50, 40, 150, 200]):
            # spread out so the window holds ~1 sample at a time
            detector.process(reading(float(value), i * 90.0))
        # two excursions above the mean threshold -> two derived events
        assert [e.type for e in derived].count("high") == 2

    def test_window_evicts_old_samples(self):
        derived = []
        detector = self._detector(derived.append, aggregate="sum", window=10.0)
        detector.process(reading(60.0, 0.0))
        detector.process(reading(60.0, 5.0))    # sum 120 -> fires
        assert len(derived) == 1
        detector.process(reading(60.0, 100.0))  # old samples evicted, sum 60
        assert len(derived) == 1

    def test_derived_event_carries_evidence(self):
        derived = []
        detector = self._detector(derived.append)
        detector.process(reading(150.0, 1.0))
        event = derived[0]
        assert event.attributes["aggregate"] == "mean"
        assert event.attributes["value"] == 150.0
        assert event.attributes["samples"] == 1
        assert event.source == "d"

    def test_source_filter(self):
        derived = []
        detector = SlidingWindowDetector(
            "d", derived.append, event_type="reading", attribute="value",
            window=10.0, aggregate="max",
            predicate=lambda v: v > 100, derived_type="high",
            source_filter="ann-sensor",
        )
        detector.process(reading(200.0, 0.0, source="zeb-sensor"))
        assert derived == []
        detector.process(reading(200.0, 1.0, source="ann-sensor"))
        assert len(derived) == 1

    def test_non_numeric_values_ignored(self):
        derived = []
        detector = self._detector(derived.append)
        detector.process(Event("reading", {"value": "broken"}, timestamp=0.0))
        detector.process(Event("reading", {}, timestamp=1.0))
        assert derived == []

    def test_invalid_parameters(self):
        with pytest.raises(PolicyError):
            SlidingWindowDetector("d", lambda e: None, "r", "v", 10.0,
                                  "median", lambda v: True, "x")
        with pytest.raises(PolicyError):
            SlidingWindowDetector("d", lambda e: None, "r", "v", 0.0,
                                  "mean", lambda v: True, "x")


class TestSequence:
    def test_ordered_sequence_detected(self):
        derived = []
        detector = SequenceDetector(
            "seq", derived.append,
            sequence=["door-open", "motion"], within=30.0,
            derived_type="intrusion",
        )
        detector.process(Event("door-open", timestamp=0.0))
        detector.process(Event("motion", timestamp=10.0))
        assert len(derived) == 1
        assert derived[0].attributes["duration"] == 10.0

    def test_out_of_order_does_not_match(self):
        derived = []
        detector = SequenceDetector(
            "seq", derived.append, ["a", "b"], 30.0, "match")
        detector.process(Event("b", timestamp=0.0))
        detector.process(Event("a", timestamp=1.0))
        assert derived == []

    def test_timeout_resets_progress(self):
        derived = []
        detector = SequenceDetector(
            "seq", derived.append, ["a", "b"], within=10.0,
            derived_type="match")
        detector.process(Event("a", timestamp=0.0))
        detector.process(Event("b", timestamp=50.0))  # too late
        assert derived == []
        # but a fresh sequence still works
        detector.process(Event("a", timestamp=60.0))
        detector.process(Event("b", timestamp=65.0))
        assert len(derived) == 1

    def test_interleaved_irrelevant_events_tolerated(self):
        derived = []
        detector = SequenceDetector(
            "seq", derived.append, ["a", "b"], 30.0, "match")
        detector.process(Event("a", timestamp=0.0))
        detector.process(Event("noise", timestamp=1.0))
        detector.process(Event("b", timestamp=2.0))
        assert len(derived) == 1

    def test_validation(self):
        with pytest.raises(PolicyError):
            SequenceDetector("s", lambda e: None, [], 10.0, "x")
        with pytest.raises(PolicyError):
            SequenceDetector("s", lambda e: None, ["a"], 0.0, "x")


class TestAbsence:
    def test_silence_detected_once(self):
        derived = []
        detector = AbsenceDetector(
            "hb", derived.append, event_type="heartbeat",
            timeout=60.0, derived_type="thing-silent")
        detector.process(Event("heartbeat", timestamp=0.0))
        detector.check(30.0)
        assert derived == []
        detector.check(100.0)
        assert len(derived) == 1
        detector.check(200.0)  # still silent: no duplicate report
        assert len(derived) == 1

    def test_reappearance_rearms(self):
        derived = []
        detector = AbsenceDetector(
            "hb", derived.append, "heartbeat", 60.0, "silent")
        detector.process(Event("heartbeat", timestamp=0.0))
        detector.check(100.0)
        detector.process(Event("heartbeat", timestamp=110.0))
        detector.check(120.0)
        assert len(derived) == 1
        detector.check(300.0)
        assert len(derived) == 2

    def test_never_seen_never_fires(self):
        derived = []
        detector = AbsenceDetector(
            "hb", derived.append, "heartbeat", 60.0, "silent")
        detector.check(1000.0)
        assert derived == []


class TestProcessor:
    def test_fanout_and_tick(self):
        derived = []
        processor = EventProcessor()
        processor.add(SlidingWindowDetector(
            "w", derived.append, "reading", "value", 10.0, "max",
            lambda v: v > 100, "high"))
        processor.add(AbsenceDetector(
            "a", derived.append, "reading", 60.0, "silent"))
        processor.process(reading(150.0, 0.0))
        processor.tick(100.0)
        types = [e.type for e in derived]
        assert "high" in types and "silent" in types
        assert processor.processed == 1

    def test_remove_detector(self):
        processor = EventProcessor()
        processor.add(SequenceDetector("s", lambda e: None, ["a"], 10.0, "x"))
        assert processor.remove("s")
        assert not processor.remove("s")

    def test_cep_feeds_policy_engine(self):
        """Integration: detector output drives ECA rules (§5's stack)."""
        from repro.middleware import MessageBus, Reconfigurator
        from repro.policy import NotifyAction, PolicyEngine, Rule

        engine = PolicyEngine("pe", Reconfigurator(MessageBus()))
        engine.add_rule(Rule.build(
            "react", "tachycardia",
            actions=[NotifyAction("ward", "sustained high heart rate")]))
        alerts = []
        engine.add_notifier(lambda ch, msg: alerts.append(msg))
        processor = EventProcessor()
        processor.add(SlidingWindowDetector(
            "tachy", engine.handle_event, "reading", "value",
            window=300.0, aggregate="mean",
            predicate=lambda v: v > 120, derived_type="tachycardia"))
        for i in range(5):
            processor.process(reading(150.0, i * 60.0))
        assert alerts == ["sustained high heart rate"]
