"""Context store and ECA rule matching."""

import pytest

from repro.errors import PolicyError
from repro.policy import (
    CommandAction,
    ContextStore,
    Event,
    NotifyAction,
    Rule,
    evaluation_scope,
)
from repro.sim import Simulator


class TestContextStore:
    def test_set_get_default(self):
        store = ContextStore()
        store.set("a.b", 1)
        assert store.get("a.b") == 1
        assert store.get("missing", "dflt") == "dflt"

    def test_mapping_interface(self):
        store = ContextStore()
        store.update({"x": 1, "y": 2})
        assert len(store) == 2
        assert set(store) == {"x", "y"}
        assert store["x"] == 1

    def test_empty_store_is_falsy_but_usable(self):
        # Regression guard: engines must not replace an empty store.
        store = ContextStore()
        assert not store  # Mapping semantics
        store.set("k", "v")
        assert store

    def test_provenance_recorded(self):
        sim = Simulator()
        store = ContextStore(clock=sim.now)
        sim.clock.advance(5.0)
        store.set("loc", "home", by="gps")
        entry = store.provenance("loc")
        assert entry.set_by == "gps"
        assert entry.set_at == 5.0

    def test_exact_subscription(self):
        store = ContextStore()
        seen = []
        store.subscribe("a", lambda k, old, new: seen.append((k, old, new)))
        store.set("a", 1)
        store.set("b", 2)  # not subscribed
        assert seen == [("a", None, 1)]

    def test_prefix_subscription(self):
        store = ContextStore()
        seen = []
        store.subscribe("patient.*", lambda k, o, n: seen.append(k))
        store.set("patient.ann.hr", 70)
        store.set("weather", "rain")
        assert seen == ["patient.ann.hr"]

    def test_no_notification_on_same_value(self):
        store = ContextStore()
        seen = []
        store.subscribe("a", lambda k, o, n: seen.append(1))
        store.set("a", 1)
        store.set("a", 1)
        assert len(seen) == 1

    def test_unsubscribe(self):
        store = ContextStore()
        seen = []
        unsubscribe = store.subscribe("a", lambda k, o, n: seen.append(1))
        unsubscribe()
        store.set("a", 1)
        assert seen == []

    def test_delete_notifies_none(self):
        store = ContextStore()
        store.set("a", 1)
        seen = []
        store.subscribe("a", lambda k, old, new: seen.append(new))
        store.delete("a")
        assert seen == [None]

    def test_view_relativises_prefix(self):
        store = ContextStore()
        store.set("patient.ann.hr", 70)
        store.set("patient.ann.loc", "home")
        store.set("patient.zeb.hr", 80)
        view = store.view("patient.ann")
        assert view == {"hr": 70, "loc": "home"}


class TestRuleMatching:
    def _rule(self, **kwargs) -> Rule:
        defaults = dict(
            name="r", event_type="reading",
            actions=[NotifyAction("ch")],
        )
        defaults.update(kwargs)
        return Rule.build(**defaults)

    def test_event_type_match(self):
        rule = self._rule()
        assert rule.matches(Event("reading"), {})
        assert not rule.matches(Event("alert"), {})

    def test_wildcard_event_type(self):
        rule = self._rule(event_type="*")
        assert rule.matches(Event("anything"), {})

    def test_source_filter(self):
        rule = self._rule(source_filter="ann-analyser")
        assert rule.matches(Event("reading", source="ann-analyser"), {})
        assert not rule.matches(Event("reading", source="zeb"), {})

    def test_condition_over_scope(self):
        rule = self._rule(condition="hr > 100")
        assert rule.matches(Event("reading"), {"hr": 150})
        assert not rule.matches(Event("reading"), {"hr": 80})

    def test_disabled_rule_never_matches(self):
        rule = self._rule()
        rule.enabled = False
        assert not rule.matches(Event("reading"), {})

    def test_duplicate_action_spec_rejected(self):
        with pytest.raises(PolicyError):
            CommandAction()  # neither command nor builder
        with pytest.raises(PolicyError):
            CommandAction(command=object(), builder=lambda e, s: None)


class TestEvaluationScope:
    def test_event_attributes_shadow_context(self):
        event = Event("reading", {"hr": 150})
        scope = evaluation_scope(event, {"hr": 60, "loc": "home"})
        assert scope["hr"] == 150
        assert scope["loc"] == "home"

    def test_event_metadata_exposed(self):
        event = Event("reading", source="sensor-1", timestamp=42.0)
        scope = evaluation_scope(event, {})
        assert scope["event.type"] == "reading"
        assert scope["event.source"] == "sensor-1"
        assert scope["event.timestamp"] == 42.0


class TestNotifyAction:
    def test_template_rendering(self):
        action = NotifyAction("ch", "HR {hr} for {patient}")
        text = action.render(Event("e"), {"hr": 150, "patient": "ann"})
        assert text == "HR 150 for ann"

    def test_missing_key_falls_back_to_template(self):
        action = NotifyAction("ch", "HR {missing}")
        assert action.render(Event("e"), {}) == "HR {missing}"

    def test_default_text(self):
        action = NotifyAction("ch")
        assert "from sensor" in action.render(Event("x", source="sensor"), {})
