"""Authority over things: ownership, loans, ad hoc grants (Challenge 4)."""

import pytest

from repro.errors import AuthorityError
from repro.policy import AuthorityModel
from repro.sim import Simulator


@pytest.fixture
def clockwork():
    sim = Simulator()
    return sim, AuthorityModel(clock=sim.now)


class TestOwnership:
    def test_individual_ownership(self, clockwork):
        __, authority = clockwork
        authority.set_owner("wearable", "ann")
        assert authority.may_author_policy("ann", "wearable")
        assert not authority.may_author_policy("zeb", "wearable")

    def test_shared_ownership(self, clockwork):
        __, authority = clockwork
        authority.set_owner("thermostat", "alice", "bob")
        assert authority.may_author_policy("alice", "thermostat")
        assert authority.may_author_policy("bob", "thermostat")

    def test_add_and_remove_co_owner(self, clockwork):
        __, authority = clockwork
        authority.set_owner("tv", "alice")
        authority.add_owner("tv", "bob")
        assert authority.may_author_policy("bob", "tv")
        authority.remove_owner("tv", "bob")
        assert not authority.may_author_policy("bob", "tv")

    def test_last_owner_cannot_be_removed(self, clockwork):
        __, authority = clockwork
        authority.set_owner("tv", "alice")
        with pytest.raises(AuthorityError):
            authority.remove_owner("tv", "alice")

    def test_at_least_one_owner_required(self, clockwork):
        __, authority = clockwork
        with pytest.raises(AuthorityError):
            authority.set_owner("thing")

    def test_unregistered_thing_has_no_authorities(self, clockwork):
        __, authority = clockwork
        assert authority.owners_of("ghost") == set()
        assert not authority.may_author_policy("anyone", "ghost")


class TestLoans:
    def test_loan_grants_borrower_authority(self, clockwork):
        __, authority = clockwork
        authority.set_owner("monitor", "health-service")
        authority.loan("monitor", "health-service", "patient-ann")
        assert authority.may_author_policy("patient-ann", "monitor")
        # Lender retains authority.
        assert authority.may_author_policy("health-service", "monitor")

    def test_loan_expiry(self, clockwork):
        sim, authority = clockwork
        authority.set_owner("monitor", "svc")
        authority.loan("monitor", "svc", "pat", expires_at=100.0)
        assert authority.may_author_policy("pat", "monitor")
        sim.clock.advance(200.0)
        assert not authority.may_author_policy("pat", "monitor")

    def test_cannot_loan_without_authority(self, clockwork):
        __, authority = clockwork
        authority.set_owner("monitor", "svc")
        with pytest.raises(AuthorityError):
            authority.loan("monitor", "random", "friend")

    def test_borrower_can_sub_loan(self, clockwork):
        """A borrower holds authority and may pass it on (delegated
        ownership chains)."""
        __, authority = clockwork
        authority.set_owner("monitor", "svc")
        authority.loan("monitor", "svc", "hospital-ward")
        authority.loan("monitor", "hospital-ward", "nurse")
        assert authority.may_author_policy("nurse", "monitor")

    def test_end_loan(self, clockwork):
        __, authority = clockwork
        authority.set_owner("monitor", "svc")
        authority.loan("monitor", "svc", "pat")
        assert authority.end_loan("monitor", "pat")
        assert not authority.may_author_policy("pat", "monitor")
        assert not authority.end_loan("monitor", "pat")


class TestAdHoc:
    def test_contextual_grant(self, clockwork):
        __, authority = clockwork
        authority.set_owner("hub", "ada")
        authority.grant_adhoc(
            "hub", "nurse", condition=lambda ctx: ctx.get("loc") == "home"
        )
        assert authority.may_author_policy("nurse", "hub", {"loc": "home"})
        assert not authority.may_author_policy("nurse", "hub", {"loc": "away"})
        assert not authority.may_author_policy("nurse", "hub")

    def test_revoke_adhoc(self, clockwork):
        __, authority = clockwork
        authority.grant_adhoc("hub", "nurse", condition=lambda ctx: True)
        assert authority.revoke_adhoc("hub", "nurse") == 1
        assert not authority.may_author_policy("nurse", "hub", {})

    def test_broken_condition_treated_as_no(self, clockwork):
        __, authority = clockwork

        def broken(ctx):
            raise RuntimeError("boom")

        authority.grant_adhoc("hub", "nurse", condition=broken)
        assert not authority.may_author_policy("nurse", "hub", {})

    def test_authorities_over_aggregates_all_sources(self, clockwork):
        __, authority = clockwork
        authority.set_owner("hub", "ada")
        authority.loan("hub", "ada", "carer")
        authority.grant_adhoc("hub", "nurse", condition=lambda ctx: True)
        everyone = authority.authorities_over("hub", {})
        assert everyone == {"ada", "carer", "nurse"}
