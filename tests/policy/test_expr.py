"""The policy expression language: lexing, parsing, evaluation."""

import pytest

from repro.errors import PolicyError
from repro.policy import Expression, evaluate, parse, tokenize


class TestTokenizer:
    def test_numbers_strings_names(self):
        tokens = tokenize("x >= 1.5 and name == 'ann'")
        kinds = [t.kind for t in tokens]
        assert "number" in kinds and "string" in kinds and "name" in kinds

    def test_keywords_recognised(self):
        tokens = tokenize("a and not b")
        assert [t.kind for t in tokens if t.value in ("and", "not")] == [
            "keyword", "keyword",
        ]

    def test_bad_character_rejected(self):
        with pytest.raises(PolicyError):
            tokenize("a @ b")


class TestParser:
    @pytest.mark.parametrize("text", [
        "1 + 2 * 3",
        "(a or b) and c",
        "not x == 1",
        "value in allowed",
        "max(a, b) > 0",
        "-x < 5",
        "'lit' == name",
    ])
    def test_valid_syntax(self, text):
        parse(text)

    @pytest.mark.parametrize("text", [
        "1 +",
        "and a",
        "(a",
        "f(a,",
        "a b",
        "",
        "true(1)",
    ])
    def test_invalid_syntax(self, text):
        with pytest.raises(PolicyError):
            parse(text)


class TestEvaluation:
    def check(self, text, context, expected):
        assert Expression(text)(context) == expected

    def test_arithmetic_precedence(self):
        self.check("1 + 2 * 3", {}, 7)
        self.check("(1 + 2) * 3", {}, 9)
        self.check("10 / 4", {}, 2.5)
        self.check("7 % 3", {}, 1)

    def test_comparisons(self):
        self.check("2 < 3", {}, True)
        self.check("3 <= 3", {}, True)
        self.check("2 > 3", {}, False)
        self.check("'a' != 'b'", {}, True)

    def test_boolean_logic(self):
        self.check("true and false", {}, False)
        self.check("true or false", {}, True)
        self.check("not false", {}, True)

    def test_names_from_context(self):
        self.check("heart_rate > 120", {"heart_rate": 150}, True)
        self.check("patient.name == 'ann'", {"patient.name": "ann"}, True)

    def test_missing_names_are_none_and_comparisons_false(self):
        self.check("missing > 5", {}, False)
        self.check("missing == none", {}, True)
        self.check("missing in things", {}, False)

    def test_in_operator(self):
        self.check("'medical' in tags", {"tags": ["medical", "x"]}, True)
        self.check("'y' in tags", {"tags": ["medical"]}, False)

    def test_string_concatenation(self):
        self.check("'a' + 'b'", {}, "ab")

    def test_safe_functions(self):
        self.check("abs(0 - 5)", {}, 5)
        self.check("max(1, 2, 3)", {}, 3)
        self.check("min(x, 10)", {"x": 4}, 4)
        self.check("len(items)", {"items": [1, 2]}, 2)
        self.check("contains(s, 'b')", {"s": "abc"}, True)
        self.check("startswith(s, 'ab')", {"s": "abc"}, True)

    def test_unknown_function_rejected(self):
        with pytest.raises(PolicyError):
            Expression("exec('rm -rf /')")({})

    def test_division_by_zero(self):
        with pytest.raises(PolicyError):
            Expression("1 / 0")({})
        with pytest.raises(PolicyError):
            Expression("1 % 0")({})

    def test_arithmetic_on_non_numbers_rejected(self):
        with pytest.raises(PolicyError):
            Expression("x * 2")({"x": "string"})
        with pytest.raises(PolicyError):
            Expression("-x")({"x": "string"})

    def test_mixed_type_comparison_is_false_not_error(self):
        self.check("x < 5", {"x": "str"}, False)

    def test_negative_numbers(self):
        self.check("-3 + 5", {}, 2)
        self.check("x > -1", {"x": 0}, True)

    def test_boolean_coercion_of_operands(self):
        self.check("1 and 2", {}, True)
        self.check("0 or 0", {}, False)

    def test_expression_reusable(self):
        expression = Expression("v > 10")
        assert expression({"v": 11}) is True
        assert expression({"v": 9}) is False
