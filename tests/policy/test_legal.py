"""Legal obligation packs and the obligation register (Fig. 1)."""

import pytest

from repro.audit import AuditLog, ComplianceAuditor, RecordKind
from repro.ifc import SecurityContext
from repro.policy import (
    NotifyAction,
    ObligationRegister,
    Rule,
    anonymisation_obligation,
    break_glass_obligation,
    consent_obligation,
    geo_fence_obligation,
    retention_obligation,
)
from repro.sim import Simulator


def run_checkers(obligation, log):
    auditor = ComplianceAuditor()
    for checker in obligation.checkers:
        auditor.register(checker)
    return auditor.run(log)


class TestConsent:
    def test_pack_contents(self):
        obligation = consent_obligation()
        assert obligation.obligation_id == "dp-consent"
        assert obligation.required_tags
        assert obligation.checkers

    def test_checker_flags_unconsented_flow(self, audit):
        ctx = SecurityContext.of(["medical"], [])
        audit.flow_allowed("sensor", "app", ctx, ctx)
        assert not run_checkers(consent_obligation(), audit).compliant

    def test_checker_passes_consented_flow(self, audit):
        ctx = SecurityContext.of(["medical"], ["consent"])
        audit.flow_allowed("sensor", "app", ctx, ctx)
        assert run_checkers(consent_obligation(), audit).compliant


class TestGeoFence:
    def test_violation_detected(self, audit):
        audit.flow_allowed("eu-db", "us-mirror")
        obligation = geo_fence_obligation({"eu-db"}, {"us-mirror"})
        assert not run_checkers(obligation, audit).compliant

    def test_clean_log_passes(self, audit):
        audit.flow_allowed("eu-db", "eu-app")
        obligation = geo_fence_obligation({"eu-db"}, {"us-mirror"})
        assert run_checkers(obligation, audit).compliant


class TestRetention:
    def test_fresh_log_compliant(self):
        sim = Simulator()
        log = AuditLog(clock=sim.now)
        log.flow_allowed("a", "b")
        sim.clock.advance(10.0)
        log.flow_allowed("c", "d")
        assert run_checkers(retention_obligation(3600.0), log).compliant

    def test_overlong_retention_flagged(self):
        sim = Simulator()
        log = AuditLog(clock=sim.now)
        log.flow_allowed("a", "b")
        sim.clock.advance(10_000.0)
        log.flow_allowed("c", "d")
        report = run_checkers(retention_obligation(3600.0), log)
        assert not report.compliant
        assert "prune" in report.failures()[0].explanation

    def test_prune_restores_compliance(self):
        sim = Simulator()
        log = AuditLog(clock=sim.now)
        log.flow_allowed("a", "b")
        sim.clock.advance(10_000.0)
        log.flow_allowed("c", "d")
        log.prune_before(sim.now() - 3600.0)
        assert run_checkers(retention_obligation(3600.0), log).compliant
        assert log.verify()

    def test_empty_log_compliant(self, audit):
        assert run_checkers(retention_obligation(60.0), audit).compliant


class TestBreakGlass:
    def test_reconfig_with_firing_is_accountable(self):
        sim = Simulator()
        log = AuditLog(clock=sim.now)
        log.append(RecordKind.POLICY_FIRED, "engine", "break-glass")
        sim.clock.advance(1.0)
        log.reconfiguration("engine", "sensor", "unmap")
        obligation = break_glass_obligation([])
        assert run_checkers(obligation, log).compliant

    def test_orphan_reconfig_flagged(self):
        log = AuditLog()
        log.reconfiguration("rogue", "sensor", "unmap")
        obligation = break_glass_obligation([])
        assert not run_checkers(obligation, log).compliant

    def test_rules_carried_in_pack(self):
        rule = Rule.build("bg", "emergency", actions=[NotifyAction("x")])
        obligation = break_glass_obligation([rule])
        assert obligation.rules == [rule]


class TestAnonymisation:
    def test_checker_wired_to_actors(self, audit):
        audit.flow_allowed("generator", "manager")
        obligation = anonymisation_obligation("generator", "manager")
        assert not run_checkers(obligation, audit).compliant


class TestRegister:
    def test_registration_and_supersession(self):
        register = ObligationRegister()
        v1 = consent_obligation(regulation="DPA 1998")
        v2 = consent_obligation(regulation="GDPR 2016")
        register.register(v1)
        register.register(v2)
        current = register.current()
        assert len(current) == 1
        assert current[0].regulation == "GDPR 2016"
        history = register.history_of("dp-consent")
        assert [o.regulation for o in history] == ["DPA 1998"]

    def test_aggregated_checkers_and_rules(self):
        register = ObligationRegister()
        register.register(consent_obligation())
        rule = Rule.build("bg", "e", actions=[NotifyAction("x")])
        register.register(break_glass_obligation([rule]))
        assert len(register.all_checkers()) == 2
        assert register.all_rules() == [rule]


class TestTieredRetention:
    """Retention over a tiered sink: demote-to-cold is the default
    remedy; destruction needs the explicit opt-in (docs/audit_storage.md)."""

    def _tiered_spine(self, tmp_path, span=10_000.0, n=20):
        from repro.audit import AuditSpine

        sim = Simulator()
        spine = AuditSpine(clock=sim.now, name="audit@legal")
        spine.configure_spill(tmp_path, hot_segments=100, seal_every=2)
        emitter = spine.emitter("bus")
        for __ in range(n):
            emitter.flow_allowed("a", "b")
            sim.clock.advance(span / n)
        spine.drain()
        return sim, spine

    def test_hot_overage_flagged_with_demote_wording(self, tmp_path):
        sim, spine = self._tiered_spine(tmp_path)
        spine.prune_segment("bus")  # start clean
        emitter = spine.emitter("bus")
        emitter.flow_allowed("a", "b")
        sim.clock.advance(9_000.0)
        emitter.flow_allowed("c", "d")
        spine.drain()
        report = run_checkers(retention_obligation(3600.0), spine)
        assert not report.compliant
        assert "demote to cold" in report.failures()[0].explanation

    def test_cold_records_do_not_count_against_the_limit(self, tmp_path):
        sim, spine = self._tiered_spine(tmp_path)
        from repro.policy import enforce_retention

        demoted = enforce_retention(spine, 3600.0, sim.now())
        assert demoted > 0
        report = run_checkers(retention_obligation(3600.0), spine)
        assert report.compliant
        assert "archived cold" in report.findings[0].explanation
        # Nothing was destroyed: the full history is still there.
        assert len(spine) == 20
        assert spine.verify()

    def test_register_remedy_demotes_by_default(self, tmp_path):
        sim, spine = self._tiered_spine(tmp_path)
        register = ObligationRegister()
        register.register(retention_obligation(3600.0))
        affected = register.apply_remedies(spine, sim.now())
        assert affected > 0
        assert len(spine) == 20  # demoted, not destroyed
        assert run_checkers(retention_obligation(3600.0), spine).compliant

    def test_destroy_opt_in_prunes(self, tmp_path):
        sim, spine = self._tiered_spine(tmp_path)
        register = ObligationRegister()
        register.register(retention_obligation(3600.0, destroy=True))
        affected = register.apply_remedies(spine, sim.now())
        assert affected > 0
        assert len(spine) < 20  # bytes actually gone
        assert spine.verify()

    def test_flat_log_without_destroy_demotes_nothing(self):
        from repro.policy import enforce_retention

        sim = Simulator()
        log = AuditLog(clock=sim.now)
        log.flow_allowed("a", "b")
        sim.clock.advance(10_000.0)
        log.flow_allowed("c", "d")
        assert enforce_retention(log, 3600.0, sim.now()) == 0
        assert len(log.records()) == 2
        assert enforce_retention(log, 3600.0, sim.now(), destroy=True) > 0
