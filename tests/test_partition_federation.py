"""Federation under partition: intermittent things and audit gaps.

Challenge 6 asks how audit copes with components that are "no longer
accessible, intermittently connected or mobile".  These tests partition
the simulated network mid-run and verify (a) the substrate loses
messages without corrupting state, (b) the per-domain logs stay
verifiable, and (c) the collector's gap detection surfaces the silent
party.
"""

import pytest

from repro.audit import AuditCollector
from repro.cloud import Machine
from repro.ifc import SecurityContext
from repro.middleware import Message, MessageType, MessagingSubstrate
from repro.net import Network
from repro.sim import Simulator

READING = MessageType.simple("reading", value=float)


@pytest.fixture
def federation():
    sim = Simulator(seed=8)
    net = Network(sim, default_latency=0.01)
    home = Machine("home-host", clock=sim.now)
    cloud = Machine("cloud-host", clock=sim.now)
    s_home = MessagingSubstrate(home, net)
    s_cloud = MessagingSubstrate(cloud, net)
    ctx = SecurityContext.of(["s"], [])
    sender = home.launch("uploader", ctx)
    receiver = cloud.launch("ingest", ctx)
    s_home.register(sender, lambda a, m: None)
    received = []
    s_cloud.register(receiver, lambda a, m: received.append(m))
    return sim, net, home, cloud, s_home, s_cloud, sender, ctx, received


class TestPartitionedSubstrate:
    def test_messages_lost_during_partition(self, federation):
        sim, net, home, cloud, s_home, s_cloud, sender, ctx, received = federation
        s_home.send(sender, s_cloud, "ingest",
                    Message(READING, {"value": 1.0}, context=ctx))
        sim.run_for(1.0)
        assert len(received) == 1

        net.partition({"home-host"}, {"cloud-host"})
        for i in range(5):
            s_home.send(sender, s_cloud, "ingest",
                        Message(READING, {"value": float(i)}, context=ctx))
        sim.run_for(1.0)
        assert len(received) == 1           # nothing got through
        assert net.stats.blocked_partition == 5

    def test_delivery_resumes_after_heal(self, federation):
        sim, net, home, cloud, s_home, s_cloud, sender, ctx, received = federation
        net.partition({"home-host"}, {"cloud-host"})
        s_home.send(sender, s_cloud, "ingest",
                    Message(READING, {"value": 1.0}, context=ctx))
        sim.run_for(1.0)
        net.heal_partitions()
        s_home.send(sender, s_cloud, "ingest",
                    Message(READING, {"value": 2.0}, context=ctx))
        sim.run_for(1.0)
        assert [m.values["value"] for m in received] == [2.0]

    def test_logs_stay_verifiable_through_partition(self, federation):
        sim, net, home, cloud, s_home, s_cloud, sender, ctx, received = federation
        for i in range(3):
            s_home.send(sender, s_cloud, "ingest",
                        Message(READING, {"value": float(i)}, context=ctx))
        net.partition({"home-host"}, {"cloud-host"})
        for i in range(3):
            s_home.send(sender, s_cloud, "ingest",
                        Message(READING, {"value": float(i)}, context=ctx))
        sim.run_for(1.0)
        assert home.audit.verify()
        assert cloud.audit.verify()

    def test_collector_accepts_partitioned_domains_logs(self, federation):
        """Both sides' evidence merges even though they disagree about
        what happened — the receiver simply has fewer records."""
        sim, net, home, cloud, s_home, s_cloud, sender, ctx, received = federation
        s_home.send(sender, s_cloud, "ingest",
                    Message(READING, {"value": 1.0}, context=ctx))
        sim.run_for(1.0)
        net.partition({"home-host"}, {"cloud-host"})
        s_home.send(sender, s_cloud, "ingest",
                    Message(READING, {"value": 2.0}, context=ctx))
        sim.run_for(1.0)
        collector = AuditCollector()
        assert collector.submit("home", home.audit) is not None
        assert collector.submit("cloud", cloud.audit) is not None
        cloud_flow_records = [
            r for d, r in collector.merged()
            if d == "cloud" and r.kind.value == "flow-allowed"
        ]
        assert len(cloud_flow_records) == 1  # the partitioned send is absent
