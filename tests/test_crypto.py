"""Simulated crypto substrate: keys, certs, TLS, re-encryption, DP, TPM."""

import pytest

from repro.crypto import (
    TPM,
    AttestationVerifier,
    CertificateAuthority,
    PrivacyBudget,
    PrivateAggregator,
    ReEncryptionProxy,
    ReEncryptionToken,
    SymmetricKey,
    TLSContext,
    TrustStore,
    decrypt_item,
    encrypt_item,
    generate_keypair,
    share_via_proxy,
    verify,
)
from repro.errors import AttestationError, CertificateError, PolicyError


class TestKeysAndSignatures:
    def test_sign_verify_roundtrip(self):
        pair = generate_keypair()
        signature = pair.sign(b"message")
        assert verify(pair.public, b"message", signature)

    def test_tampered_message_fails(self):
        pair = generate_keypair()
        signature = pair.sign(b"message")
        assert not verify(pair.public, b"other", signature)

    def test_wrong_key_fails(self):
        a = generate_keypair()
        b = generate_keypair()
        assert not verify(b.public, b"m", a.sign(b"m"))

    def test_unknown_key_verifies_nothing(self):
        from repro.crypto.keys import KeyPair, PublicKey

        ghost = PublicKey("not-registered")
        assert not verify(ghost, b"m", "sig")


class TestCertificates:
    def _setup(self):
        ca = CertificateAuthority("hospital-ca")
        keys = generate_keypair()
        cert = ca.issue("ann-device", keys.public,
                        {"owner": "ann", "role": "sensor"},
                        not_before=0.0, not_after=100.0)
        store = TrustStore()
        store.trust(ca)
        return ca, cert, store

    def test_valid_certificate_accepted(self):
        __, cert, store = self._setup()
        store.validate(cert, at_time=50.0)
        assert cert.attribute("owner") == "ann"
        assert cert.attribute("missing", "default") == "default"

    def test_expired_certificate_rejected(self):
        __, cert, store = self._setup()
        with pytest.raises(CertificateError):
            store.validate(cert, at_time=200.0)

    def test_revocation(self):
        ca, cert, store = self._setup()
        ca.revoke("ann-device")
        with pytest.raises(CertificateError):
            store.validate(cert, at_time=50.0)

    def test_untrusted_issuer_rejected(self):
        rogue = CertificateAuthority("rogue-ca")
        keys = generate_keypair()
        cert = rogue.issue("impostor", keys.public)
        store = TrustStore()
        with pytest.raises(CertificateError):
            store.validate(cert)

    def test_forged_signature_rejected(self):
        ca, cert, store = self._setup()
        forged = type(cert)(
            subject=cert.subject,
            subject_key=cert.subject_key,
            issuer=cert.issuer,
            attributes=(("owner", "mallory"),),
            not_before=cert.not_before,
            not_after=cert.not_after,
            signature=cert.signature,
        )
        assert not store.is_valid(forged, at_time=50.0)


class TestWebOfTrust:
    def test_endorsement_chain_within_depth(self):
        store = TrustStore()
        store.anchor_principal("alice")
        store.add_endorsement("alice", "bob")
        store.add_endorsement("bob", "carol")
        assert store.web_trusts("carol", max_depth=2)
        assert not store.web_trusts("carol", max_depth=1)

    def test_unreachable_principal(self):
        store = TrustStore()
        store.anchor_principal("alice")
        assert not store.web_trusts("stranger")


class TestTLS:
    def _context(self, name, ca, store):
        keys = generate_keypair()
        cert = ca.issue(name, keys.public)
        return TLSContext(name, cert, keys, store)

    def test_handshake_and_transfer(self):
        ca = CertificateAuthority("ca")
        store = TrustStore()
        store.trust(ca)
        alice = self._context("alice", ca, store)
        bob = self._context("bob", ca, store)
        chan_a, chan_b = alice.handshake(bob)
        blob = chan_a.send({"v": 1})
        assert chan_b.receive(blob) == {"v": 1}

    def test_handshake_fails_for_distrusted_peer(self):
        ca = CertificateAuthority("ca")
        rogue_ca = CertificateAuthority("rogue")
        store = TrustStore()
        store.trust(ca)
        alice = self._context("alice", ca, store)
        mallory = self._context("mallory", rogue_ca, store)
        with pytest.raises(CertificateError):
            alice.handshake(mallory)


class TestItemEncryption:
    def test_roundtrip(self):
        key = SymmetricKey.generate("k1")
        blob = encrypt_item({"hr": 72}, key)
        assert decrypt_item(blob, key) == {"hr": 72}

    def test_wrong_key_rejected(self):
        blob = encrypt_item("secret", SymmetricKey.generate("a"))
        with pytest.raises(CertificateError):
            decrypt_item(blob, SymmetricKey.generate("b"))


class TestProxyReEncryption:
    def test_share_via_proxy(self):
        owner = SymmetricKey.generate("owner")
        recipient = SymmetricKey.generate("recipient")
        proxy = ReEncryptionProxy()
        assert share_via_proxy("data", owner, recipient, proxy) == "data"
        assert proxy.transform_count == 1

    def test_no_token_no_transform(self):
        proxy = ReEncryptionProxy()
        blob = encrypt_item("x", SymmetricKey.generate("o"))
        with pytest.raises(CertificateError):
            proxy.transform(blob, "some-key")

    def test_revoked_token_stops_transforms(self):
        owner = SymmetricKey.generate("o")
        recipient = SymmetricKey.generate("r")
        proxy = ReEncryptionProxy()
        token = ReEncryptionToken.issue(owner, recipient)
        proxy.install_token(token)
        blob = encrypt_item("x", owner)
        proxy.transform(blob, recipient.key_id)
        assert proxy.revoke_token(owner.key_id, recipient.key_id)
        with pytest.raises(CertificateError):
            proxy.transform(blob, recipient.key_id)


class TestDifferentialPrivacy:
    def test_budget_enforced(self):
        budget = PrivacyBudget(total_epsilon=1.0)
        aggregator = PrivateAggregator(budget, seed=1)
        aggregator.count([1, 2, 3], epsilon=0.6)
        with pytest.raises(PolicyError):
            aggregator.count([1, 2, 3], epsilon=0.6)
        assert budget.remaining < 0.5

    def test_count_is_noisy_but_close(self):
        aggregator = PrivateAggregator(PrivacyBudget(100.0), seed=7)
        values = list(range(1000))
        noisy = aggregator.count(values, epsilon=1.0)
        assert abs(noisy - 1000) < 50

    def test_mean_within_bounds(self):
        aggregator = PrivateAggregator(PrivacyBudget(100.0), seed=3)
        values = [70.0] * 500
        noisy = aggregator.mean(values, epsilon=2.0, lower=0.0, upper=200.0)
        assert 60.0 < noisy < 80.0

    def test_sum_clamps_outliers(self):
        aggregator = PrivateAggregator(PrivacyBudget(100.0), seed=5)
        values = [1.0, 1.0, 10_000.0]  # outlier clamped to 2.0
        noisy = aggregator.sum(values, epsilon=5.0, lower=0.0, upper=2.0)
        assert noisy < 100.0

    def test_invalid_parameters(self):
        aggregator = PrivateAggregator(PrivacyBudget(1.0), seed=0)
        with pytest.raises(PolicyError):
            aggregator.count([], epsilon=0.0)
        with pytest.raises(PolicyError):
            aggregator.sum([1.0], epsilon=0.1, lower=5.0, upper=1.0)
        with pytest.raises(PolicyError):
            aggregator.mean([], epsilon=0.1, lower=0.0, upper=1.0)

    def test_histogram(self):
        aggregator = PrivateAggregator(PrivacyBudget(10.0), seed=2)
        histogram = aggregator.histogram(["a", "a", "b"], epsilon=2.0)
        assert set(histogram) == {"a", "b"}


class TestTPMAndAttestation:
    def test_pcr_extend_only(self):
        tpm = TPM("host")
        before = tpm.pcr(0)
        tpm.extend(0, "kernel")
        assert tpm.pcr(0) != before
        with pytest.raises(AttestationError):
            tpm.extend(99, "x")

    def test_good_platform_attests(self):
        tpm = TPM("host")
        tpm.extend(0, "bootloader")
        tpm.extend(0, "kernel")
        verifier = AttestationVerifier()
        verifier.golden_for_measurements("host", 0, ["bootloader", "kernel"])
        assert verifier.attest(tpm, [0])

    def test_tampered_platform_rejected(self):
        tpm = TPM("host")
        tpm.extend(0, "bootloader")
        tpm.extend(0, "evil-kernel")
        verifier = AttestationVerifier()
        verifier.golden_for_measurements("host", 0, ["bootloader", "kernel"])
        assert not verifier.attest(tpm, [0])

    def test_nonce_replay_rejected(self):
        tpm = TPM("host")
        verifier = AttestationVerifier()
        verifier.golden_for_measurements("host", 0, [])
        nonce = verifier.fresh_nonce()
        quote = tpm.quote(nonce, [0])
        verifier.verify_quote(quote)
        with pytest.raises(AttestationError):
            verifier.verify_quote(quote)

    def test_unknown_platform_rejected(self):
        tpm = TPM("mystery")
        verifier = AttestationVerifier()
        nonce = verifier.fresh_nonce()
        with pytest.raises(AttestationError):
            verifier.verify_quote(tpm.quote(nonce, [0]))
