"""Parametrised RBAC and two-stage PEPs (§4, §8.2.2)."""

import pytest

from repro.accesscontrol import (
    EnforcementMode,
    EnforcementPoint,
    Permission,
    RBACPolicy,
    Role,
    RoleActivationRule,
    Session,
)
from repro.audit import AuditLog, RecordKind
from repro.errors import AccessDenied, FlowError
from repro.ifc import SecurityContext


@pytest.fixture
def ward_policy() -> RBACPolicy:
    policy = RBACPolicy()
    policy.grant(
        "nurse",
        Permission("read", "ward/w7/*", parameter_match=(("ward", "w7"),)),
    )
    policy.grant("doctor", Permission("read", "ward/*"))
    policy.grant("doctor", Permission("write", "ward/*"))
    policy.add_activation_rule(
        RoleActivationRule(
            "nurse", required_credentials=frozenset({"nursing-cert"})
        )
    )
    policy.add_activation_rule(
        RoleActivationRule(
            "on-duty-nurse",
            prerequisite_roles=frozenset({"nurse"}),
            condition=lambda ctx: ctx.get("shift") == "on",
        )
    )
    return policy


class TestRoles:
    def test_parametrised_role_equality(self):
        assert Role.of("nurse", ward="w7") == Role.of("nurse", ward="w7")
        assert Role.of("nurse", ward="w7") != Role.of("nurse", ward="w8")

    def test_parameter_lookup(self):
        role = Role.of("nurse", ward="w7")
        assert role.parameter("ward") == "w7"
        assert role.parameter("missing") is None

    def test_str_rendering(self):
        assert str(Role.of("doctor")) == "doctor"
        assert str(Role.of("nurse", ward="w7")) == "nurse(ward=w7)"


class TestActivation:
    def test_activation_needs_credential(self, ward_policy):
        session = Session("pat", ward_policy)
        with pytest.raises(AccessDenied):
            session.activate(Role.of("nurse", ward="w7"))
        session.present_credential("nursing-cert")
        session.activate(Role.of("nurse", ward="w7"))
        assert Role.of("nurse", ward="w7") in session.active_roles

    def test_contextual_activation(self, ward_policy):
        session = Session("pat", ward_policy)
        session.present_credential("nursing-cert")
        session.activate(Role.of("nurse", ward="w7"))
        with pytest.raises(AccessDenied):
            session.activate(Role.of("on-duty-nurse"), context={"shift": "off"})
        session.activate(Role.of("on-duty-nurse"), context={"shift": "on"})

    def test_unrestricted_role_freely_activated(self, ward_policy):
        session = Session("anyone", ward_policy)
        session.activate(Role.of("visitor"))

    def test_deactivation_cascades_to_dependent_roles(self, ward_policy):
        session = Session("pat", ward_policy)
        session.present_credential("nursing-cert")
        nurse = Role.of("nurse", ward="w7")
        session.activate(nurse)
        session.activate(Role.of("on-duty-nurse"), context={"shift": "on"})
        session.deactivate(nurse)
        names = {r.name for r in session.active_roles}
        assert "on-duty-nurse" not in names


class TestAuthorisation:
    def test_parameter_scoped_permission(self, ward_policy):
        session = Session("pat", ward_policy)
        session.present_credential("nursing-cert")
        session.activate(Role.of("nurse", ward="w7"))
        assert session.is_authorised("read", "ward/w7/bed3")
        assert not session.is_authorised("read", "ward/w8/bed1")
        assert not session.is_authorised("write", "ward/w7/bed3")

    def test_wrong_parameterisation_gets_nothing(self, ward_policy):
        session = Session("pat", ward_policy)
        session.present_credential("nursing-cert")
        session.activate(Role.of("nurse", ward="w8"))
        assert not session.is_authorised("read", "ward/w7/bed3")

    def test_check_raises_with_detail(self, ward_policy):
        session = Session("pat", ward_policy)
        with pytest.raises(AccessDenied) as excinfo:
            session.check("read", "ward/w7/bed3")
        assert "pat" in str(excinfo.value)

    def test_revoke_all(self, ward_policy):
        session = Session("doc", ward_policy)
        session.activate(Role.of("doctor"))
        assert session.is_authorised("write", "ward/w7/bed1")
        ward_policy.revoke_all("doctor")
        assert not session.is_authorised("write", "ward/w7/bed1")


class TestEnforcementPoint:
    def _session(self, ward_policy) -> Session:
        session = Session("doc", ward_policy)
        session.activate(Role.of("doctor"))
        return session

    def test_two_stage_check_passes(self, ward_policy, ann_device, ann_analyser):
        log = AuditLog()
        pep = EnforcementPoint("pep", audit=log)
        session = self._session(ward_policy)
        result = pep.enforce(
            session, "read", "ward/w7/bed1", ann_device, ann_analyser
        )
        assert result.allowed and result.ac_passed and result.ifc_passed
        kinds = [r.kind for r in log]
        assert RecordKind.ACCESS_ALLOWED in kinds
        assert RecordKind.FLOW_ALLOWED in kinds

    def test_ac_failure_short_circuits(self, ward_policy, ann_device):
        pep = EnforcementPoint("pep")
        session = Session("nobody", ward_policy)
        with pytest.raises(AccessDenied):
            pep.enforce(session, "read", "ward/w7/bed1", ann_device, ann_device)
        assert pep.denials == 1

    def test_ifc_failure_after_ac_pass(self, ward_policy, zeb_device, ann_analyser):
        log = AuditLog()
        pep = EnforcementPoint("pep", audit=log)
        session = self._session(ward_policy)
        with pytest.raises(FlowError):
            pep.enforce(session, "read", "ward/w7/bed1", zeb_device, ann_analyser)
        assert log.denials()

    def test_ac_only_mode_misses_ifc_violation(
        self, ward_policy, zeb_device, ann_analyser
    ):
        """The paper's baseline: AC alone passes what IFC would block."""
        pep = EnforcementPoint("pep", mode=EnforcementMode.AC_ONLY)
        session = self._session(ward_policy)
        result = pep.check(
            session, "read", "ward/w7/bed1", zeb_device, ann_analyser
        )
        assert result.allowed  # the leak AC cannot see

    def test_ifc_only_mode_needs_no_session(self, ann_device, ann_analyser):
        pep = EnforcementPoint("pep", mode=EnforcementMode.IFC_ONLY)
        result = pep.check(None, "read", "r", ann_device, ann_analyser)
        assert result.allowed

    def test_missing_session_denied_in_ac_modes(self, ann_device):
        pep = EnforcementPoint("pep")
        result = pep.check(None, "read", "r", ann_device, ann_device)
        assert not result.allowed
        assert not result.ac_passed
