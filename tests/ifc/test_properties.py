"""Property-based tests on the IFC core (hypothesis).

The invariants IFC soundness relies on: the flow relation is a preorder,
join/meet are genuine lattice operations, creation/amalgamation are
conservative, and quenching never reveals more than the receiver's
context allows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ifc import (
    Label,
    PrivilegeSet,
    SecurityContext,
    can_flow,
    flow_decision,
    join,
    meet,
)

TAG_POOL = ["a", "b", "c", "d", "e"]

labels = st.builds(
    lambda names: Label.of(*names),
    st.frozensets(st.sampled_from(TAG_POOL), max_size=5),
)
contexts = st.builds(SecurityContext, labels, labels)


@given(contexts)
def test_flow_reflexive(ctx):
    assert can_flow(ctx, ctx)


@given(contexts, contexts, contexts)
def test_flow_transitive(a, b, c):
    if can_flow(a, b) and can_flow(b, c):
        assert can_flow(a, c)


@given(contexts, contexts)
def test_flow_antisymmetric_up_to_equality(a, b):
    if can_flow(a, b) and can_flow(b, a):
        assert a == b


@given(contexts, contexts)
def test_join_is_least_upper_bound(a, b):
    j = join(a, b)
    assert can_flow(a, j) and can_flow(b, j)
    # least: any other upper bound is above the join
    for other in (join(a, b), join(b, a)):
        assert can_flow(j, other)


@given(contexts, contexts)
def test_meet_is_greatest_lower_bound(a, b):
    m = meet(a, b)
    assert can_flow(m, a) and can_flow(m, b)


@given(contexts, contexts)
def test_join_commutative(a, b):
    assert join(a, b) == join(b, a)


@given(contexts, contexts, contexts)
def test_join_associative(a, b, c):
    assert join(join(a, b), c) == join(a, join(b, c))


@given(contexts)
def test_join_idempotent(a):
    assert join(a, a) == a


@given(contexts, contexts)
def test_decision_agrees_with_boolean(a, b):
    assert flow_decision(a, b).allowed == can_flow(a, b)


@given(contexts, contexts)
def test_denial_reasons_cover_missing_tags(a, b):
    decision = flow_decision(a, b)
    if not decision.allowed:
        assert (not decision.secrecy_ok) or (not decision.integrity_ok)
        if not decision.secrecy_ok:
            assert not decision.missing_secrecy.is_empty()
        if not decision.integrity_ok:
            assert not decision.missing_integrity.is_empty()


@given(contexts, contexts)
def test_merge_for_read_dominates_reader(reader, data):
    merged = reader.merge_for_read(data)
    # After reading, the reader can only become more constrained:
    # everything it could NOT flow to before, it still cannot.
    assert can_flow(reader, merged) or not can_flow(data, reader)
    assert reader.secrecy <= merged.secrecy
    assert merged.integrity <= reader.integrity


@given(contexts)
def test_creation_inherits_exactly(parent):
    assert parent.creation_context() == parent


@given(labels, labels)
def test_label_union_intersection_duality(a, b):
    assert (a | b) - (a & b) == (a - b) | (b - a)


privilege_sets = st.builds(
    lambda a, b, c, d: PrivilegeSet.of(a, b, c, d),
    st.frozensets(st.sampled_from(TAG_POOL), max_size=3),
    st.frozensets(st.sampled_from(TAG_POOL), max_size=3),
    st.frozensets(st.sampled_from(TAG_POOL), max_size=3),
    st.frozensets(st.sampled_from(TAG_POOL), max_size=3),
)


@given(privilege_sets, privilege_sets)
def test_merged_covers_both(a, b):
    merged = a.merged(b)
    assert merged.covers(a) and merged.covers(b)


@given(privilege_sets, contexts, contexts)
def test_permitted_transitions_are_exactly_the_explained_ones(p, old, new):
    permitted = p.permits_transition(old, new)
    explanation = p.explain_denial(old, new)
    assert permitted == (explanation == "permitted")


@given(privilege_sets, contexts)
def test_identity_transition_always_permitted(p, ctx):
    assert p.permits_transition(ctx, ctx)
