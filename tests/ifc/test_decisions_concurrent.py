"""Real-thread stress of the decision cache's snapshot/epoch protocol.

The cache's claim (``docs/worker_plane.md``): reads are lock-free and
always yield the correct flow verdict; ``clear()`` (the ``Machine.grant``
fan-out) can race any number of evaluating workers without a stale
verdict ever being installed afterwards; and the per-worker counters
aggregate without ever under- or over-counting completed operations.
"""

import threading

import pytest

from repro.ifc import SecurityContext
from repro.ifc.decisions import DecisionCache
from repro.ifc.flow import flow_decision

pytestmark = pytest.mark.concurrency


def _key(source, target):
    return (
        source.secrecy._mask,
        source.integrity._mask,
        target.secrecy._mask,
        target.integrity._mask,
    )


def _pairs():
    ctxs = [
        SecurityContext.public(),
        SecurityContext.of(["medical"], []),
        SecurityContext.of(["medical", "ann"], ["dev"]),
        SecurityContext.of(["zeb"], ["dev"]),
        SecurityContext.of(["medical", "zeb"], []),
    ]
    return [(a, b) for a in ctxs for b in ctxs]


class TestEpochInvalidation:
    def test_stale_publish_is_discarded(self):
        """White-box: a publish whose miss began before a clear() must
        not enter the post-clear table — the exact race Machine.grant's
        epoch-based fan-out closes."""
        cache = DecisionCache()
        src = SecurityContext.of(["medical"], [])
        dst = SecurityContext.of(["medical", "ann"], [])
        epoch = cache.epoch
        decision = flow_decision(src, dst)
        cache.clear()  # the grant lands while the evaluation is in flight
        cache._publish(_key(src, dst), decision, epoch, cache._cell())
        assert len(cache) == 0
        assert cache.epoch == epoch + 1

    def test_current_epoch_publish_lands(self):
        cache = DecisionCache()
        src = SecurityContext.of(["medical"], [])
        dst = SecurityContext.of(["medical", "ann"], [])
        cache._publish(
            _key(src, dst), flow_decision(src, dst), cache.epoch, cache._cell()
        )
        assert len(cache) == 1

    def test_clear_bumps_epoch_and_empties(self):
        cache = DecisionCache()
        pairs = _pairs()
        for a, b in pairs:
            cache.evaluate(a, b)
        assert len(cache) == len({_key(a, b) for a, b in pairs})
        before = cache.epoch
        cache.clear()
        assert len(cache) == 0
        assert cache.epoch == before + 1


class TestConcurrentEvaluate:
    def test_verdicts_correct_under_racing_clears(self):
        """8 reader threads hammer evaluate() while a writer clears the
        cache repeatedly; every verdict returned must equal the pure
        flow rule's — stale-epoch discards may cost hits, never
        correctness."""
        cache = DecisionCache()
        pairs = _pairs()
        expected = {_key(a, b): flow_decision(a, b).allowed for a, b in pairs}
        mismatches = []
        done = threading.Event()
        start = threading.Barrier(9)

        def read(index):
            start.wait()
            for round_n in range(300):
                a, b = pairs[(index + round_n) % len(pairs)]
                decision = cache.evaluate(a, b)
                if decision.allowed != expected[_key(a, b)]:
                    mismatches.append((index, round_n))

        def invalidate():
            start.wait()
            while not done.is_set():
                cache.clear()

        readers = [threading.Thread(target=read, args=(i,)) for i in range(8)]
        writer = threading.Thread(target=invalidate)
        for thread in readers:
            thread.start()
        writer.start()
        for thread in readers:
            thread.join()
        done.set()
        writer.join()

        assert mismatches == []
        # The table must still be coherent after the storm.
        for a, b in pairs:
            assert cache.evaluate(a, b).allowed == expected[_key(a, b)]

    def test_counters_account_for_every_call(self):
        """Per-worker cells must aggregate to exactly one hit-or-miss
        per evaluate() call, whatever the interleaving."""
        cache = DecisionCache()
        pairs = _pairs()
        calls_per_thread = 500
        n_threads = 8
        start = threading.Barrier(n_threads)

        def read(index):
            start.wait()
            for round_n in range(calls_per_thread):
                a, b = pairs[(index * 7 + round_n) % len(pairs)]
                cache.evaluate(a, b)

        threads = [
            threading.Thread(target=read, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats
        assert stats.hits + stats.misses == n_threads * calls_per_thread
        # No clears ran: every distinct pair missed at most a handful of
        # times (the publish race window), and the steady state is hits.
        assert stats.hits > stats.misses

    def test_promotion_keeps_entries_visible(self):
        """Fill far past the promotion floor and re-probe everything:
        the delta → snapshot fold must never lose an entry."""
        cache = DecisionCache()
        contexts = [
            SecurityContext.of([f"t{i}"], []) for i in range(40)
        ]
        pairs = [(a, b) for a in contexts for b in contexts]  # 1600 keys
        for a, b in pairs:
            cache.evaluate(a, b)
        assert len(cache) == len(pairs)
        hits_before = cache.hits
        for a, b in pairs:
            cache.evaluate(a, b)
        assert cache.hits == hits_before + len(pairs)
