"""Labels and security contexts (§6)."""

import pytest

from repro.ifc import Label, SecurityContext, Tag, as_label


class TestLabel:
    def test_of_and_contains(self):
        label = Label.of("medical", "ann")
        assert "medical" in label
        assert "zeb" not in label
        assert len(label) == 2

    def test_empty_singleton_semantics(self):
        assert Label.empty().is_empty()
        assert Label.of().is_empty()

    def test_subset_ordering(self):
        small = Label.of("a")
        big = Label.of("a", "b")
        assert small <= big
        assert small < big
        assert big >= small
        assert not big <= small

    def test_add_remove_are_pure(self):
        label = Label.of("a")
        bigger = label.add("b")
        assert "b" not in label
        assert "b" in bigger
        smaller = bigger.remove("a")
        assert "a" in bigger
        assert "a" not in smaller

    def test_remove_missing_tag_is_noop(self):
        assert Label.of("a").remove("zzz") == Label.of("a")

    def test_set_operations(self):
        a = Label.of("x", "y")
        b = Label.of("y", "z")
        assert (a | b) == Label.of("x", "y", "z")
        assert (a & b) == Label.of("y")
        assert (a - b) == Label.of("x")

    def test_str_is_sorted_and_qualified(self):
        text = str(Label.of("b", "a"))
        assert text == "{local:a, local:b}"
        assert str(Label.empty()) == "{}"

    def test_iteration_sorted(self):
        label = Label.of("c", "a", "b")
        assert [t.name for t in label] == ["a", "b", "c"]

    def test_as_label_coercions(self):
        assert as_label(None).is_empty()
        assert as_label(["a"]) == Label.of("a")
        existing = Label.of("x")
        assert as_label(existing) is existing


class TestSecurityContext:
    def test_of_builds_both_labels(self):
        ctx = SecurityContext.of(["medical"], ["consent"])
        assert "medical" in ctx.secrecy
        assert "consent" in ctx.integrity

    def test_public_context(self):
        assert SecurityContext.public().is_public()
        assert not SecurityContext.of(["s"]).is_public()

    def test_with_replacements_are_pure(self):
        ctx = SecurityContext.of(["a"], ["i"])
        changed = ctx.with_secrecy(["b"])
        assert "a" in ctx.secrecy
        assert "b" in changed.secrecy
        assert changed.integrity == ctx.integrity

    def test_add_remove_helpers(self):
        ctx = SecurityContext.of(["a"], ["i"])
        assert "b" in ctx.add_secrecy("b").secrecy
        assert ctx.remove_secrecy("a").secrecy.is_empty()
        assert "j" in ctx.add_integrity("j").integrity
        assert ctx.remove_integrity("i").integrity.is_empty()

    def test_creation_context_copies_labels(self):
        ctx = SecurityContext.of(["s"], ["i"])
        child = ctx.creation_context()
        assert child == ctx

    def test_merge_for_read_secrecy_accrues_integrity_erodes(self):
        reader = SecurityContext.of(["a"], ["i1", "i2"])
        data = SecurityContext.of(["b"], ["i2", "i3"])
        merged = reader.merge_for_read(data)
        assert merged.secrecy == Label.of("a", "b")
        assert merged.integrity == Label.of("i2")

    def test_contexts_hashable_for_lattice_search(self):
        a = SecurityContext.of(["x"], [])
        b = SecurityContext.of(["x"], [])
        assert a == b
        assert len({a, b}) == 1

    def test_str_rendering(self):
        ctx = SecurityContext.of(["s"], ["i"])
        assert "S={local:s}" in str(ctx)
        assert "I={local:i}" in str(ctx)
