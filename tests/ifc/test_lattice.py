"""Lattice analysis: join/meet, reachability, label creep (§6)."""

import pytest

from repro.ifc import (
    FlowGraph,
    SecurityContext,
    analyse_creep,
    can_flow,
    dominates,
    is_comparable,
    join,
    join_all,
    meet,
)


class TestOrdering:
    def test_dominates_matches_flow_direction(self):
        low = SecurityContext.of(["a"], [])
        high = SecurityContext.of(["a", "b"], [])
        assert dominates(high, low)
        assert not dominates(low, high)

    def test_join_is_upper_bound(self):
        a = SecurityContext.of(["x"], ["i1", "i2"])
        b = SecurityContext.of(["y"], ["i2"])
        joined = join(a, b)
        assert can_flow(a, joined)
        assert can_flow(b, joined)

    def test_meet_is_lower_bound(self):
        a = SecurityContext.of(["x", "z"], ["i1"])
        b = SecurityContext.of(["y", "z"], ["i2"])
        met = meet(a, b)
        assert can_flow(met, a)
        assert can_flow(met, b)

    def test_join_all_identity(self):
        assert join_all([]) == SecurityContext.public()
        ctx = SecurityContext.of(["s"], [])
        # Joining with nothing else: integrity erodes to empty set.
        assert join_all([ctx]).secrecy == ctx.secrecy

    def test_is_comparable(self):
        a = SecurityContext.of(["x"], [])
        b = SecurityContext.of(["x", "y"], [])
        c = SecurityContext.of(["z"], [])
        assert is_comparable(a, b)
        assert not is_comparable(a, c)


class TestFlowGraph:
    def _graph(self) -> FlowGraph:
        graph = FlowGraph()
        graph.add("sensor", SecurityContext.of(["med"], []))
        graph.add("analyser", SecurityContext.of(["med", "ann"], []))
        graph.add("archive", SecurityContext.of(["med", "ann", "old"], []))
        graph.add("public-portal", SecurityContext.public())
        return graph

    def test_edges_follow_flow_rule(self):
        edges = self._graph().edges()
        assert ("sensor", "analyser") in edges
        assert ("analyser", "sensor") not in edges
        assert ("analyser", "public-portal") not in edges

    def test_reachability_is_transitive(self):
        graph = self._graph()
        assert graph.reachable_from("sensor") == {"analyser", "archive"}

    def test_sources_of(self):
        graph = self._graph()
        assert graph.sources_of("archive") == {"sensor", "analyser",
                                               "public-portal"}

    def test_sinks_identified(self):
        graph = self._graph()
        assert "archive" in graph.sinks()
        assert "sensor" not in graph.sinks()

    def test_isolated_contexts(self):
        graph = FlowGraph()
        graph.add("a", SecurityContext.of(["x"], []))
        graph.add("b", SecurityContext.of(["y"], []))
        assert set(graph.isolated()) == {"a", "b"}

    def test_empty_graph_queries(self):
        graph = FlowGraph()
        assert graph.reachable_from("ghost") == set()
        assert graph.edges() == []


class TestCreepAnalysis:
    def test_no_contexts(self):
        report = analyse_creep(FlowGraph())
        assert report.max_secrecy_size == 0

    def test_creep_detected_with_big_trapped_sinks(self):
        graph = FlowGraph()
        graph.add("a", SecurityContext.of(["s1"], []))
        graph.add("b", SecurityContext.of(["s1", "s2", "s3"], []))
        graph.add("trap", SecurityContext.of(["s1", "s2", "s3", "s4", "s5"], []))
        report = analyse_creep(graph)
        assert "trap" in report.trapped
        assert "declassifier" in report.suggestion

    def test_healthy_deployment_not_flagged(self):
        graph = FlowGraph()
        graph.add("a", SecurityContext.public())
        graph.add("b", SecurityContext.public())
        report = analyse_creep(graph)
        assert report.trapped == []
        assert report.suggestion == "no creep detected"
