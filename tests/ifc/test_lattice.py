"""Lattice algebra: ordering, join/meet (§6).

Reachability and label-creep analysis moved to the analysis plane —
see ``tests/analysis/``.
"""

from repro.ifc import (
    SecurityContext,
    can_flow,
    dominates,
    is_comparable,
    join,
    join_all,
    meet,
)


class TestOrdering:
    def test_dominates_matches_flow_direction(self):
        low = SecurityContext.of(["a"], [])
        high = SecurityContext.of(["a", "b"], [])
        assert dominates(high, low)
        assert not dominates(low, high)

    def test_join_is_upper_bound(self):
        a = SecurityContext.of(["x"], ["i1", "i2"])
        b = SecurityContext.of(["y"], ["i2"])
        joined = join(a, b)
        assert can_flow(a, joined)
        assert can_flow(b, joined)

    def test_meet_is_lower_bound(self):
        a = SecurityContext.of(["x", "z"], ["i1"])
        b = SecurityContext.of(["y", "z"], ["i2"])
        met = meet(a, b)
        assert can_flow(met, a)
        assert can_flow(met, b)

    def test_join_all_identity(self):
        assert join_all([]) == SecurityContext.public()
        ctx = SecurityContext.of(["s"], [])
        # Joining with nothing else: integrity erodes to empty set.
        assert join_all([ctx]).secrecy == ctx.secrecy

    def test_is_comparable(self):
        a = SecurityContext.of(["x"], [])
        b = SecurityContext.of(["x", "y"], [])
        c = SecurityContext.of(["z"], [])
        assert is_comparable(a, b)
        assert not is_comparable(a, c)

    def test_flow_graph_moved_to_analysis_plane(self):
        import repro.ifc

        assert not hasattr(repro.ifc, "FlowGraph")
        from repro.analysis import FlowGraph  # noqa: F401  (new home)
