"""Federated tag naming: authorities, delegation, caching (Challenge 1)."""

import pytest

from repro.errors import TagError
from repro.ifc import CachingResolver, Tag, TagAuthority
from repro.sim import Simulator


@pytest.fixture
def hierarchy():
    """org root delegating org.hospital to the hospital's authority."""
    root = TagAuthority("org")
    hospital = TagAuthority("org.hospital")
    root.delegate(hospital)
    root.register("org:public-data", owner="org")
    hospital.register("org.hospital:medical", owner="hospital")
    hospital.register("org.hospital:cardiology", owner="hospital")
    return root, hospital


class TestAuthority:
    def test_register_in_zone(self):
        authority = TagAuthority("org")
        signed = authority.register("org:x", owner="o", description="d")
        assert signed.record.tag == Tag("org", "x")
        assert signed.signature

    def test_cannot_register_outside_zone(self):
        authority = TagAuthority("org")
        with pytest.raises(TagError):
            authority.register("other:x", owner="o")

    def test_cannot_register_in_delegated_zone(self, hierarchy):
        root, hospital = hierarchy
        with pytest.raises(TagError):
            root.register("org.hospital:sneaky", owner="root")

    def test_duplicate_rejected(self):
        authority = TagAuthority("org")
        authority.register("org:x", owner="o")
        with pytest.raises(TagError):
            authority.register("org:x", owner="o2")

    def test_delegation_must_be_subzone(self):
        root = TagAuthority("org")
        with pytest.raises(TagError):
            root.delegate(TagAuthority("com"))
        with pytest.raises(TagError):
            root.delegate(TagAuthority("org"))

    def test_lookup_answers_or_refers(self, hierarchy):
        root, hospital = hierarchy
        direct = root.lookup("org:public-data")
        assert direct.record.owner == "org"
        referral = root.lookup("org.hospital:medical")
        assert referral is hospital

    def test_lookup_outside_zone_raises(self, hierarchy):
        root, __ = hierarchy
        with pytest.raises(TagError):
            root.lookup("com:x")

    def test_longest_match_delegation(self):
        root = TagAuthority("org")
        hospital = TagAuthority("org.hospital")
        ward = TagAuthority("org.hospital.ward7")
        root.delegate(hospital)
        root.delegate(ward)
        assert root.lookup("org.hospital.ward7:bed3") is ward


class TestResolver:
    def test_resolution_walks_referrals(self, hierarchy):
        root, __ = hierarchy
        resolver = CachingResolver(root)
        record = resolver.resolve("org.hospital:medical")
        assert record.owner == "hospital"

    def test_unknown_tag(self, hierarchy):
        root, __ = hierarchy
        resolver = CachingResolver(root)
        with pytest.raises(TagError):
            resolver.resolve("org.hospital:nonexistent")

    def test_cache_hits_counted_and_ttl_expires(self, hierarchy):
        root, hospital = hierarchy
        sim = Simulator()
        resolver = CachingResolver(root, ttl=100.0, clock=sim.now)
        resolver.resolve("org.hospital:medical")
        served_before = hospital.queries_served
        resolver.resolve("org.hospital:medical")   # cache hit
        assert resolver.hits == 1
        assert hospital.queries_served == served_before
        sim.clock.advance(200.0)                   # TTL expired
        resolver.resolve("org.hospital:medical")
        assert hospital.queries_served == served_before + 1
        assert 0 < resolver.hit_rate < 1

    def test_invalidate_forces_refetch(self, hierarchy):
        root, hospital = hierarchy
        resolver = CachingResolver(root)
        resolver.resolve("org.hospital:medical")
        resolver.invalidate("org.hospital:medical")
        served = hospital.queries_served
        resolver.resolve("org.hospital:medical")
        assert hospital.queries_served == served + 1

    def test_forged_record_rejected(self, hierarchy):
        root, hospital = hierarchy
        signed = hospital._records["org.hospital:medical"]
        signed.record.owner = "mallory"  # tamper after signing
        resolver = CachingResolver(root)
        with pytest.raises(TagError):
            resolver.resolve("org.hospital:medical")

    def test_referral_loop_bounded(self):
        root = TagAuthority("org")
        a = TagAuthority("org.a")
        root.delegate(a)
        resolver = CachingResolver(root)
        # a has no record and no further delegation: lookup raises there
        with pytest.raises(TagError):
            resolver.resolve("org.a:missing")
