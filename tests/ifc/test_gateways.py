"""Declassifiers and endorsers (§6, Figs. 3, 5, 6)."""

import pytest

from repro.errors import FlowError, PrivilegeError
from repro.ifc import (
    Declassifier,
    Endorser,
    Gateway,
    PassiveEntity,
    PrivilegeSet,
    SecurityContext,
    can_flow,
    plan_gateway_chain,
)


def make_sanitiser() -> Endorser:
    """Fig. 5's input sanitiser: zeb-dev data endorsed to hosp-dev."""
    return Endorser(
        "sanitiser",
        input_context=SecurityContext.of(["medical", "zeb"], ["zeb-dev"]),
        output_context=SecurityContext.of(["medical", "zeb"], ["hosp-dev"]),
        privileges=PrivilegeSet.of(
            add_integrity=["hosp-dev", "zeb-dev"],
            remove_integrity=["zeb-dev", "hosp-dev"],
        ),
        transform=lambda payload: {"standardised": payload},
    )


def make_anonymiser() -> Declassifier:
    """Fig. 6's statistics generator: drops patient tags after anon."""
    return Declassifier(
        "anonymiser",
        input_context=SecurityContext.of(["medical", "ann", "zeb"], []),
        output_context=SecurityContext.of(["stats"], ["anon"]),
        privileges=PrivilegeSet.of(
            add_secrecy=["stats"],
            remove_secrecy=["medical", "ann", "zeb"],
            add_integrity=["anon"],
        ),
        transform=lambda values: sum(values) / len(values),
    )


class TestEndorser:
    def test_fig5_pipeline(self):
        sanitiser = make_sanitiser()
        zeb_data = PassiveEntity(
            "zeb-reading",
            SecurityContext.of(["medical", "zeb"], ["zeb-dev"]),
            payload=72.0,
        )
        result = sanitiser.process(zeb_data)
        analyser = SecurityContext.of(["medical", "zeb"], ["hosp-dev"])
        assert can_flow(result.output.context, analyser)
        assert result.output.payload == {"standardised": 72.0}

    def test_endorser_may_not_lower_secrecy(self):
        with pytest.raises(PrivilegeError):
            Endorser(
                "bad",
                input_context=SecurityContext.of(["s"], []),
                output_context=SecurityContext.public(),
                privileges=PrivilegeSet.owner_of("s"),
            )

    def test_construction_validates_privileges(self):
        with pytest.raises(PrivilegeError):
            Endorser(
                "powerless",
                input_context=SecurityContext.of([], []),
                output_context=SecurityContext.of([], ["hosp-dev"]),
                privileges=PrivilegeSet.none(),
            )

    def test_rejects_input_outside_its_domain(self):
        sanitiser = make_sanitiser()
        foreign = PassiveEntity(
            "ann-reading",
            SecurityContext.of(["medical", "ann"], ["hosp-dev"]),
        )
        with pytest.raises(FlowError):
            sanitiser.process(foreign)

    def test_gateway_reusable_across_items(self):
        sanitiser = make_sanitiser()
        ctx = SecurityContext.of(["medical", "zeb"], ["zeb-dev"])
        for value in (70.0, 71.0, 72.0):
            result = sanitiser.process(PassiveEntity("r", ctx, payload=value))
            assert result.output.payload == {"standardised": value}


class TestDeclassifier:
    def test_fig6_anonymisation(self):
        anonymiser = make_anonymiser()
        raw = PassiveEntity(
            "all-patients",
            SecurityContext.of(["medical", "ann", "zeb"], []),
            payload=[70.0, 80.0],
        )
        result = anonymiser.process(raw)
        ward_manager = SecurityContext.of(["stats"], ["anon"])
        assert can_flow(result.output.context, ward_manager)
        assert result.output.payload == 75.0

    def test_declassifier_must_lower_secrecy(self):
        with pytest.raises(PrivilegeError):
            Declassifier(
                "not-a-declassifier",
                input_context=SecurityContext.of(["s"], []),
                output_context=SecurityContext.of(["s", "t"], []),
                privileges=PrivilegeSet.owner_of("s", "t"),
            )

    def test_guard_blocks_release(self):
        embargo_lifted = {"value": False}
        anonymiser = Declassifier(
            "guarded",
            input_context=SecurityContext.of(["s"], []),
            output_context=SecurityContext.public(),
            privileges=PrivilegeSet.of(remove_secrecy=["s"]),
            guards=[lambda item: embargo_lifted["value"]],
        )
        item = PassiveEntity("d", SecurityContext.of(["s"], []))
        with pytest.raises(FlowError):
            anonymiser.process(item)
        embargo_lifted["value"] = True
        assert anonymiser.process(item).output.context.secrecy.is_empty()

    def test_context_changes_recorded_for_audit(self):
        anonymiser = make_anonymiser()
        raw = PassiveEntity(
            "raw", SecurityContext.of(["medical", "ann", "zeb"], []), payload=[1.0]
        )
        anonymiser.process(raw)
        assert len(anonymiser.transitions) >= 1


class TestChainPlanning:
    def test_direct_flow_needs_no_gateways(self):
        ctx = SecurityContext.of(["s"], [])
        assert plan_gateway_chain(ctx, ctx, []) == []

    def test_single_gateway_found(self):
        anonymiser = make_anonymiser()
        source = SecurityContext.of(["medical", "ann"], [])
        target = SecurityContext.of(["stats"], ["anon"])
        chain = plan_gateway_chain(source, target, [anonymiser])
        assert chain == [anonymiser]

    def _strict_anonymiser(self) -> Declassifier:
        """Anonymiser that accepts only hospital-standard input — forces
        non-standard data through the sanitiser first."""
        return Declassifier(
            "strict-anonymiser",
            input_context=SecurityContext.of(
                ["medical", "ann", "zeb"], ["hosp-dev"]
            ),
            output_context=SecurityContext.of(["stats"], ["anon"]),
            privileges=PrivilegeSet.of(
                add_secrecy=["stats"],
                remove_secrecy=["medical", "ann", "zeb"],
                add_integrity=["anon"],
                remove_integrity=["hosp-dev"],
            ),
        )

    def test_two_hop_chain_found(self):
        sanitiser = make_sanitiser()
        anonymiser = self._strict_anonymiser()
        source = SecurityContext.of(["medical", "zeb"], ["zeb-dev"])
        target = SecurityContext.of(["stats"], ["anon"])
        chain = plan_gateway_chain(source, target, [sanitiser, anonymiser])
        assert chain is not None
        assert [g.name for g in chain] == ["sanitiser", "strict-anonymiser"]

    def test_no_chain_returns_none(self):
        source = SecurityContext.of(["top-secret"], [])
        target = SecurityContext.public()
        assert plan_gateway_chain(source, target, [make_sanitiser()]) is None

    def test_hop_budget_respected(self):
        sanitiser = make_sanitiser()
        anonymiser = self._strict_anonymiser()
        source = SecurityContext.of(["medical", "zeb"], ["zeb-dev"])
        target = SecurityContext.of(["stats"], ["anon"])
        assert plan_gateway_chain(
            source, target, [sanitiser, anonymiser], max_hops=1
        ) is None
