"""Tags and the global tag registry (§6, Challenge 1)."""

import pytest

from repro.errors import TagError
from repro.ifc import Tag, TagRegistry, as_tag, as_tags


class TestTag:
    def test_parse_qualified(self):
        tag = Tag.parse("hospital:medical")
        assert tag.namespace == "hospital"
        assert tag.name == "medical"
        assert tag.qualified == "hospital:medical"

    def test_parse_bare_uses_local_namespace(self):
        assert Tag.parse("medical").namespace == "local"

    def test_equality_and_hash_by_value(self):
        assert Tag.parse("a:b") == Tag("a", "b")
        assert len({Tag.parse("a:b"), Tag("a", "b")}) == 1

    def test_same_name_different_namespace_distinct(self):
        assert Tag.parse("hospital-a:medical") != Tag.parse("hospital-b:medical")

    def test_ordering_is_stable(self):
        tags = sorted([Tag.parse("b:x"), Tag.parse("a:y"), Tag.parse("a:x")])
        assert [t.qualified for t in tags] == ["a:x", "a:y", "b:x"]

    @pytest.mark.parametrize("bad", ["", "has space", "semi;colon", "a:b:c!"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(TagError):
            Tag("ns", bad)

    def test_invalid_namespace_rejected(self):
        with pytest.raises(TagError):
            Tag("bad ns", "name")

    def test_as_tag_coercion(self):
        assert as_tag("x") == Tag("local", "x")
        tag = Tag("a", "b")
        assert as_tag(tag) is tag

    def test_as_tag_rejects_non_string(self):
        with pytest.raises(TagError):
            as_tag(42)

    def test_as_tags_builds_frozenset(self):
        tags = as_tags(["a", "b", Tag("c", "d")])
        assert isinstance(tags, frozenset)
        assert len(tags) == 3


class TestTagRegistry:
    def test_register_and_lookup(self, registry):
        tag = registry.register("hospital:medical", owner="hospital",
                                description="medical data")
        record = registry.lookup(tag)
        assert record.owner == "hospital"
        assert record.description == "medical data"

    def test_duplicate_registration_rejected(self, registry):
        registry.register("x", owner="a")
        with pytest.raises(TagError):
            registry.register("x", owner="b")

    def test_unknown_lookup_raises(self, registry):
        with pytest.raises(TagError):
            registry.lookup("nope")

    def test_contains_and_len(self, registry):
        registry.register("a", owner="o")
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1

    def test_ownership_transfer(self, registry):
        registry.register("t", owner="alice")
        registry.transfer_ownership("t", "alice", "bob")
        assert registry.owner_of("t") == "bob"

    def test_transfer_requires_current_owner(self, registry):
        registry.register("t", owner="alice")
        with pytest.raises(TagError):
            registry.transfer_ownership("t", "mallory", "mallory")

    def test_sensitive_tag_redacted_for_strangers(self, registry):
        registry.register(
            "hiv-status", owner="clinic",
            description="patient HIV status", sensitive=True,
        )
        assert registry.describe("hiv-status", "clinic") == "patient HIV status"
        assert registry.describe("hiv-status", "stranger") == "<redacted>"

    def test_sensitive_tag_visible_after_grant(self, registry):
        registry.register("s", owner="clinic", description="d", sensitive=True)
        registry.grant_visibility("s", "clinic", "auditor")
        assert registry.describe("s", "auditor") == "d"

    def test_grant_visibility_requires_owner(self, registry):
        registry.register("s", owner="clinic", sensitive=True)
        with pytest.raises(TagError):
            registry.grant_visibility("s", "mallory", "mallory")

    def test_namespace_listing(self, registry):
        registry.register("hosp:a", owner="h")
        registry.register("hosp:b", owner="h")
        registry.register("city:a", owner="c")
        assert [t.name for t in registry.tags_in_namespace("hosp")] == ["a", "b"]

    def test_owned_by(self, registry):
        registry.register("hosp:a", owner="h")
        registry.register("city:x", owner="c")
        assert [t.qualified for t in registry.owned_by("h")] == ["hosp:a"]
