"""Privileges for label change, delegation, revocation (§6)."""

import pytest

from repro.errors import PrivilegeError
from repro.ifc import (
    PrivilegeAuthority,
    PrivilegeSet,
    SecurityContext,
    TagRegistry,
)


class TestPrivilegeSet:
    def test_none_is_empty(self):
        assert PrivilegeSet.none().is_empty()

    def test_owner_of_holds_everything(self):
        privileges = PrivilegeSet.owner_of("t")
        current = SecurityContext.of(["t"], ["t"])
        cleared = SecurityContext.public()
        assert privileges.permits_transition(current, cleared)
        assert privileges.permits_transition(cleared, current)

    def test_add_secrecy_requires_privilege(self):
        none = PrivilegeSet.none()
        ctx = SecurityContext.public()
        raised = ctx.add_secrecy("s")
        assert not none.permits_transition(ctx, raised)
        assert PrivilegeSet.of(add_secrecy=["s"]).permits_transition(ctx, raised)

    def test_declassification_requires_remove_secrecy(self):
        ctx = SecurityContext.of(["s"], [])
        lowered = ctx.remove_secrecy("s")
        assert not PrivilegeSet.of(add_secrecy=["s"]).permits_transition(ctx, lowered)
        assert PrivilegeSet.of(remove_secrecy=["s"]).permits_transition(ctx, lowered)

    def test_endorsement_requires_add_integrity(self):
        ctx = SecurityContext.public()
        endorsed = ctx.add_integrity("i")
        assert not PrivilegeSet.none().permits_transition(ctx, endorsed)
        assert PrivilegeSet.of(add_integrity=["i"]).permits_transition(ctx, endorsed)

    def test_unchanged_context_always_permitted(self):
        ctx = SecurityContext.of(["s"], ["i"])
        assert PrivilegeSet.none().permits_transition(ctx, ctx)

    def test_merged_and_without(self):
        a = PrivilegeSet.of(add_secrecy=["x"])
        b = PrivilegeSet.of(remove_secrecy=["y"])
        merged = a.merged(b)
        assert merged.covers(a) and merged.covers(b)
        assert merged.without(a).covers(b)
        assert not merged.without(a).covers(a)

    def test_covers_is_componentwise(self):
        big = PrivilegeSet.of(add_secrecy=["a", "b"], remove_integrity=["c"])
        small = PrivilegeSet.of(add_secrecy=["a"])
        assert big.covers(small)
        assert not small.covers(big)

    def test_explain_denial_names_each_problem(self):
        ctx = SecurityContext.of(["s"], ["i"])
        proposed = SecurityContext.of(["t"], [])
        explanation = PrivilegeSet.none().explain_denial(ctx, proposed)
        assert "add secrecy" in explanation
        assert "remove secrecy" in explanation
        assert "remove integrity" in explanation

    def test_explain_denial_permitted_case(self):
        ctx = SecurityContext.public()
        assert PrivilegeSet.none().explain_denial(ctx, ctx) == "permitted"


class TestPrivilegeAuthority:
    def _authority(self):
        registry = TagRegistry()
        registry.register("medical", owner="hospital")
        return registry, PrivilegeAuthority(registry)

    def test_owner_has_implicit_privileges(self):
        __, authority = self._authority()
        privileges = authority.privileges_of("hospital")
        assert privileges.covers(PrivilegeSet.owner_of("medical"))

    def test_delegation_passes_privileges(self):
        __, authority = self._authority()
        granted = PrivilegeSet.of(remove_secrecy=["medical"])
        authority.delegate("hospital", "anonymiser", granted)
        assert authority.privileges_of("anonymiser").covers(granted)

    def test_cannot_delegate_unheld_privileges(self):
        __, authority = self._authority()
        with pytest.raises(PrivilegeError):
            authority.delegate(
                "random-app", "friend", PrivilegeSet.of(remove_secrecy=["medical"])
            )

    def test_revocation_removes_privileges(self):
        __, authority = self._authority()
        granted = PrivilegeSet.of(remove_secrecy=["medical"])
        authority.delegate("hospital", "app", granted)
        revoked = authority.revoke("hospital", "app")
        assert revoked.covers(granted)
        assert not authority.privileges_of("app").covers(granted)

    def test_revocation_cascades_to_redelegations(self):
        __, authority = self._authority()
        granted = PrivilegeSet.of(remove_secrecy=["medical"])
        authority.delegate("hospital", "app", granted)
        authority.delegate("app", "subapp", granted)
        authority.revoke("hospital", "app")
        assert not authority.privileges_of("subapp").covers(granted)

    def test_irrevocable_delegation_survives(self):
        __, authority = self._authority()
        granted = PrivilegeSet.of(add_secrecy=["medical"])
        authority.delegate("hospital", "app", granted, revocable=False)
        authority.revoke("hospital", "app")
        assert authority.privileges_of("app").covers(granted)

    def test_delegation_trail_recorded(self):
        __, authority = self._authority()
        authority.delegate("hospital", "a", PrivilegeSet.of(add_secrecy=["medical"]))
        trail = authority.delegations()
        assert len(trail) == 1
        assert trail[0].grantor == "hospital"
        assert trail[0].grantee == "a"
