"""The sharded decision plane: per-machine shards, cross-shard mask
translation through the wire vocabulary, and invalidation parity with an
unsharded plane (see docs/decision_plane.md)."""

import pytest

from repro.ifc import (
    DecisionPlane,
    DecisionPlaneRouter,
    DecisionShard,
    SecurityContext,
    TagInterner,
    flow_decision,
)

LOW = SecurityContext.of(["medical"], [])
HIGH = SecurityContext.of(["medical", "ann"], [])


class TestDecisionShard:
    def test_sites_share_one_memo_table(self):
        shard = DecisionShard("host-a")
        kernel_plane = shard.plane()
        substrate_plane = shard.plane()
        kernel_plane.evaluate(LOW, HIGH)
        substrate_plane.evaluate(LOW, HIGH)
        assert shard.cache.misses == 1
        assert shard.cache.hits == 1

    def test_mask_and_context_forms_share_keys(self):
        shard = DecisionShard("host-a")
        shard.evaluate(LOW, HIGH)
        decision = shard.evaluate_masks(
            LOW.secrecy.mask, LOW.integrity.mask,
            HIGH.secrecy.mask, HIGH.integrity.mask,
        )
        assert decision.allowed
        assert shard.cache.hits == 1  # the mask form hit the context entry

    def test_mask_evaluation_matches_flow_decision(self):
        shard = DecisionShard("host-a")
        for src, dst in [(LOW, HIGH), (HIGH, LOW)]:
            direct = flow_decision(src, dst)
            via_masks = shard.evaluate_masks(
                src.secrecy.mask, src.integrity.mask,
                dst.secrecy.mask, dst.integrity.mask,
            )
            assert via_masks.allowed == direct.allowed
            assert via_masks.secrecy_ok == direct.secrecy_ok
            assert via_masks.integrity_ok == direct.integrity_ok
            assert via_masks.missing_secrecy == direct.missing_secrecy
            assert via_masks.missing_integrity == direct.missing_integrity


class TestRouterSharding:
    def test_one_shard_per_machine(self):
        router = DecisionPlaneRouter()
        a = router.shard("host-a")
        b = router.shard("host-b")
        assert a is router.shard("host-a")
        assert a is not b
        assert len(router) == 2
        assert "host-a" in router

    def test_shards_are_isolated(self):
        router = DecisionPlaneRouter()
        router.shard("host-a").evaluate(LOW, HIGH)
        assert router.shard("host-b").cache.misses == 0
        assert router.stats.misses == 1

    def test_invalidate_one_shard_leaves_others_warm(self):
        router = DecisionPlaneRouter()
        router.shard("host-a").evaluate(LOW, HIGH)
        router.shard("host-b").evaluate(LOW, HIGH)
        router.invalidate("host-a")
        assert len(router.shard("host-a").cache) == 0
        assert len(router.shard("host-b").cache) == 1


class TestCrossShardTranslation:
    """Workers with *private* interners (fully isolated numbering) agree
    on decisions through the exchanged tag-table vocabulary — never
    through a process-global interner."""

    def _two_workers(self):
        router = DecisionPlaneRouter()
        ia, ib = TagInterner(), TagInterner()
        # Divergent numbering: each worker interns in a different order.
        ib.mask_of(["zeb", "medical", "ann"])
        ia.mask_of(["medical", "ann", "zeb"])
        a = router.shard("worker-a", interner=ia)
        b = router.shard("worker-b", interner=ib)
        return router, a, b

    def test_inbound_decision_matches_direct_rule(self):
        router, a, b = self._two_workers()
        # b ships {medical} secrecy to a target a holds as {medical,ann}.
        src = (b.interner.mask_of(["medical"]), 0)
        dst = (a.interner.mask_of(["medical", "ann"]), 0)
        assert router.evaluate_inbound("worker-a", "worker-b", src, dst).allowed
        # And the denied direction explains itself with real tag names.
        src = (b.interner.mask_of(["medical", "zeb"]), 0)
        decision = router.evaluate_inbound("worker-a", "worker-b", src, dst)
        assert not decision.allowed
        assert "zeb" in decision.reason

    def test_same_bits_different_meaning_never_confused(self):
        router, a, b = self._two_workers()
        # Bit 0 means "zeb" to worker-b but "medical" to worker-a: a raw
        # mask hand-off would silently relabel; the translator must not.
        wire = b.interner.mask_of(["zeb"])
        assert wire == a.interner.mask_of(["medical"])  # the trap
        dst = (a.interner.mask_of(["medical"]), 0)
        decision = router.evaluate_inbound(
            "worker-a", "worker-b", (wire, 0), dst
        )
        assert not decision.allowed  # zeb ⊄ {medical}

    def test_translator_follows_interner_growth(self):
        router, a, b = self._two_workers()
        dst = (a.interner.mask_of(["medical"]), 0)
        router.evaluate_inbound("worker-a", "worker-b", (0, 0), dst)
        late = b.interner.mask_of(["brand-new-tag"])
        decision = router.evaluate_inbound(
            "worker-a", "worker-b", (late, 0), dst
        )
        assert not decision.allowed
        assert "brand-new-tag" in decision.reason

    def test_private_vocabulary_shards_refuse_context_evaluation(self):
        """Context masks are global-interner-numbered; caching them in a
        private-vocabulary shard could collide two different tag sets
        onto one memo entry.  Such shards are mask-level only."""
        shard = DecisionShard("worker", interner=TagInterner())
        with pytest.raises(ValueError):
            shard.evaluate(LOW, HIGH)
        with pytest.raises(ValueError):
            shard.plane()
        with pytest.raises(ValueError):
            shard.context_cache  # the raw-cache route is guarded too

    def test_one_cache_refuses_a_second_vocabulary(self):
        """A cache is pinned to the first numbering it serves: masks
        from a different interner could collide keys and serve denial
        labels from the wrong vocabulary."""
        vocab = TagInterner()
        secret = vocab.mask_of(["alice-secret"])
        shard = DecisionShard("worker", interner=vocab)
        shard.evaluate_masks(secret, 0, 0, 0)
        other = TagInterner()
        other.mask_of(["medical"])  # same bit, different meaning
        with pytest.raises(ValueError):
            shard.cache.evaluate_masks(secret, 0, 0, 0, interner=other)

    def test_identity_consistent_allow_across_forms(self):
        shard = DecisionShard("host-a")
        by_context = shard.evaluate(LOW, HIGH)
        shard.invalidate()
        by_masks = shard.evaluate_masks(
            LOW.secrecy.mask, LOW.integrity.mask,
            HIGH.secrecy.mask, HIGH.integrity.mask,
        )
        assert by_masks is by_context  # one shared allowed singleton

    def test_repeated_inbound_pairs_hit_the_local_cache(self):
        router, a, b = self._two_workers()
        src = (b.interner.mask_of(["medical"]), 0)
        dst = (a.interner.mask_of(["medical", "ann"]), 0)
        for __ in range(5):
            router.evaluate_inbound("worker-a", "worker-b", src, dst)
        assert a.cache.misses == 1
        assert a.cache.hits == 4


class TestInvalidationParity:
    """Sharded invalidation on a privilege change answers exactly as an
    unsharded plane: fan-out + re-evaluation never changes a decision,
    and no shard can serve anything stale."""

    def test_sharded_matches_unsharded_after_privilege_change(self):
        pairs = [(LOW, HIGH), (HIGH, LOW), (LOW, LOW), (HIGH, HIGH)]
        router = DecisionPlaneRouter()
        shards = [router.shard(f"worker-{i}") for i in range(3)]
        unsharded = DecisionPlane()

        before_sharded = [
            [s.evaluate(src, dst).allowed for src, dst in pairs] for s in shards
        ]
        before_unsharded = [unsharded.evaluate(src, dst).allowed for src, dst in pairs]
        assert all(b == before_unsharded for b in before_sharded)

        # A privilege grant/revocation fans out invalidation everywhere.
        router.invalidate()
        unsharded.invalidate()
        assert all(len(s.cache) == 0 for s in shards)

        after_sharded = [
            [s.evaluate(src, dst).allowed for src, dst in pairs] for s in shards
        ]
        after_unsharded = [unsharded.evaluate(src, dst).allowed for src, dst in pairs]
        assert all(a == after_unsharded for a in after_sharded)
        assert after_unsharded == before_unsharded
        # Every shard genuinely re-evaluated (no stale entries served).
        assert all(s.cache.misses == 2 * len(pairs) for s in shards)

    def test_machine_grant_invalidates_its_shard(self):
        from repro.cloud.machine import Machine
        from repro.ifc import PrivilegeSet

        machine = Machine("host")
        proc = machine.launch("app", LOW)
        machine.kernel.security.plane.evaluate(LOW, HIGH)
        assert len(machine.shard.cache) == 1
        machine.grant(proc.pid, PrivilegeSet.none())
        assert len(machine.shard.cache) == 0
