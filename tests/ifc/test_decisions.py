"""The decision plane: memoization, counters, and invalidation-by-value.

The critical property: a declassification or endorsement must change the
decision *immediately* — the memo table may never serve a stale grant
(or a stale denial) across a label change.
"""

import random

import pytest

from repro.errors import FlowError
from repro.ifc import (
    DecisionCache,
    DecisionPlane,
    Label,
    SecurityContext,
    flow_decision,
)
from repro.ifc.tags import as_tags


class TestDecisionCache:
    def test_hit_miss_counters(self):
        plane = DecisionPlane()
        a = SecurityContext.of(["s1"], ["i1"])
        b = SecurityContext.of(["s1", "s2"], [])
        assert plane.evaluate(a, b).allowed
        assert (plane.hits, plane.misses) == (0, 1)
        for __ in range(5):
            plane.evaluate(a, b)
        assert (plane.hits, plane.misses) == (5, 1)
        assert plane.stats.hit_rate == pytest.approx(5 / 6)

    def test_cached_decision_matches_direct_evaluation(self):
        plane = DecisionPlane()
        a = SecurityContext.of(["s"], ["i1", "i2"])
        b = SecurityContext.of([], ["i1"])
        direct = flow_decision(a, b)
        cached = plane.evaluate(a, b)
        again = plane.evaluate(a, b)
        assert cached.allowed == direct.allowed
        assert cached.secrecy_ok == direct.secrecy_ok
        assert cached.integrity_ok == direct.integrity_ok
        assert cached.missing_secrecy == direct.missing_secrecy
        assert again is cached  # memoized object, not a re-evaluation

    def test_direction_matters(self):
        plane = DecisionPlane()
        low = SecurityContext.of([], [])
        high = SecurityContext.of(["secret"], [])
        assert plane.evaluate(low, high).allowed
        assert not plane.evaluate(high, low).allowed

    def test_bounded_table_clears_and_counts_eviction(self):
        cache = DecisionCache(max_entries=4)
        plane = DecisionPlane(cache=cache)
        for i in range(8):
            plane.evaluate(
                SecurityContext.of([f"s{i}"], []),
                SecurityContext.of([f"s{i}", "x"], []),
            )
        assert len(cache) <= 4
        assert cache.stats.evictions >= 1

    def test_check_raises_on_denial_and_is_cached(self):
        plane = DecisionPlane()
        high = SecurityContext.of(["secret"], [])
        low = SecurityContext.of([], [])
        with pytest.raises(FlowError):
            plane.check(high, low, "producer", "sink")
        with pytest.raises(FlowError):
            plane.check(high, low, "producer", "sink")
        assert plane.hits == 1

    def test_invalidate_clears_but_keeps_counters(self):
        plane = DecisionPlane()
        a, b = SecurityContext.public(), SecurityContext.public()
        plane.evaluate(a, b)
        plane.evaluate(a, b)
        plane.invalidate()
        plane.evaluate(a, b)
        assert plane.misses == 2
        assert plane.hits == 1


class TestInvalidationOnLabelChange:
    """Declassification/endorsement must take effect immediately."""

    def test_declassification_unblocks_flow_immediately(self):
        plane = DecisionPlane()
        source = SecurityContext.of(["medical"], [])
        sink = SecurityContext.of([], [])
        assert not plane.evaluate(source, sink).allowed
        declassified = source.remove_secrecy("medical")
        assert plane.evaluate(declassified, sink).allowed

    def test_reclassification_blocks_flow_immediately(self):
        """The dangerous direction: a cached grant must not outlive a
        label change that makes the flow illegal."""
        plane = DecisionPlane()
        source = SecurityContext.of([], [])
        sink = SecurityContext.of([], [])
        for __ in range(10):  # warm the cache with grants
            assert plane.evaluate(source, sink).allowed
        raised = source.add_secrecy("medical")
        assert not plane.evaluate(raised, sink).allowed

    def test_endorsement_change_is_immediate(self):
        plane = DecisionPlane()
        source = SecurityContext.of([], [])
        sink = SecurityContext.of([], ["endorsed"])
        assert not plane.evaluate(source, sink).allowed
        endorsed = source.add_integrity("endorsed")
        assert plane.evaluate(endorsed, sink).allowed
        # and dropping the endorsement re-denies at once
        dropped = endorsed.remove_integrity("endorsed")
        assert not plane.evaluate(dropped, sink).allowed

    def test_distinct_contexts_with_equal_labels_share_entries(self):
        plane = DecisionPlane()
        a1 = SecurityContext.of(["s"], ["i"])
        a2 = SecurityContext.of(["s"], ["i"])  # equal value, new object
        b = SecurityContext.of(["s"], [])
        plane.evaluate(a1, b)
        plane.evaluate(a2, b)
        assert (plane.hits, plane.misses) == (1, 1)


class TestBitsetLabelMatchesFrozensetSemantics:
    """Property test: the bitset Label agrees with plain frozenset
    algebra on random tag sets (the pre-refactor semantics)."""

    def test_random_tag_sets(self):
        rng = random.Random(20160627)
        universe = [f"ns{i % 7}:tag{i}" for i in range(40)]
        for __ in range(300):
            xs = frozenset(rng.sample(universe, rng.randint(0, 12)))
            ys = frozenset(rng.sample(universe, rng.randint(0, 12)))
            lx, ly = Label.of(*xs), Label.of(*ys)
            sx, sy = as_tags(xs), as_tags(ys)
            assert (lx <= ly) == (sx <= sy)
            assert (lx < ly) == (sx < sy)
            assert (lx >= ly) == (sx >= sy)
            assert (lx > ly) == (sx > sy)
            assert (lx == ly) == (sx == sy)
            assert (lx | ly).tags == (sx | sy)
            assert (lx & ly).tags == (sx & sy)
            assert (lx - ly).tags == (sx - sy)
            assert len(lx) == len(sx)
            assert set(lx) == set(sx)
            for probe in rng.sample(universe, 3):
                assert (probe in lx) == (as_tags([probe]) <= sx)

    def test_hash_consistency_with_equality(self):
        rng = random.Random(7)
        universe = [f"t{i}" for i in range(20)]
        for __ in range(100):
            xs = rng.sample(universe, rng.randint(0, 8))
            a = Label.of(*xs)
            b = Label.of(*reversed(xs))
            assert a == b
            assert hash(a) == hash(b)

    def test_empty_label_is_singleton(self):
        assert Label.empty() is Label.empty()
        assert Label.of() is Label.empty()
        assert (Label.of("x") - Label.of("x")) is Label.empty()

    def test_remove_of_unknown_tag_does_not_grow_interner(self):
        from repro.ifc import global_interner

        label = Label.of("known-tag")
        before = len(global_interner())
        assert label.remove("never-seen-tag-xyzzy") == label
        assert "never-seen-tag-xyzzy" not in label
        assert len(global_interner()) == before
