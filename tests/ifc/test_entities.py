"""Entities: creation inheritance, observable context changes (§6)."""

import pytest

from repro.errors import PrivilegeError
from repro.ifc import (
    ActiveEntity,
    PassiveEntity,
    PrivilegeSet,
    SecurityContext,
)


class TestEntityBasics:
    def test_unique_ids(self):
        a = PassiveEntity("a")
        b = PassiveEntity("b")
        assert a.entity_id != b.entity_id

    def test_default_context_public(self):
        assert PassiveEntity("x").context.is_public()

    def test_flow_to_evaluates_rule(self, ann_device, zeb_device):
        src = PassiveEntity("zeb-data", zeb_device)
        dst = ActiveEntity("ann-analyser", ann_device)
        assert not src.flow_to(dst).allowed


class TestContextObservers:
    def test_observer_sees_old_and_new(self):
        entity = ActiveEntity(
            "e", SecurityContext.public(),
            PrivilegeSet.of(add_secrecy=["s"]),
        )
        seen = []
        entity.observe_context(lambda ent, old, new: seen.append((old, new)))
        entity.add_secrecy("s")
        assert len(seen) == 1
        old, new = seen[0]
        assert old.secrecy.is_empty()
        assert "s" in new.secrecy

    def test_unobserve_stops_notifications(self):
        entity = ActiveEntity(
            "e", privileges=PrivilegeSet.of(add_secrecy=["s"])
        )
        seen = []
        observer = lambda ent, old, new: seen.append(1)
        entity.observe_context(observer)
        entity.unobserve_context(observer)
        entity.add_secrecy("s")
        assert seen == []


class TestActiveEntity:
    def test_context_change_respects_privileges(self):
        entity = ActiveEntity("e", SecurityContext.of(["s"], []))
        with pytest.raises(PrivilegeError):
            entity.remove_secrecy("s")

    def test_change_recorded_in_transitions(self):
        entity = ActiveEntity(
            "e", privileges=PrivilegeSet.of(add_integrity=["i"])
        )
        entity.add_integrity("i")
        assert len(entity.transitions) == 1

    def test_create_passive_inherits_labels(self, ann_device):
        process = ActiveEntity("proc", ann_device)
        data = process.create_passive("file", payload=b"x")
        assert data.context == ann_device
        assert data.payload == b"x"

    def test_child_does_not_inherit_privileges(self):
        parent = ActiveEntity(
            "parent",
            SecurityContext.of(["s"], []),
            PrivilegeSet.of(remove_secrecy=["s"]),
        )
        child = parent.create_active("child")
        assert child.context == parent.context
        assert child.privileges.is_empty()
        with pytest.raises(PrivilegeError):
            child.remove_secrecy("s")

    def test_explicit_privilege_passing_checked(self):
        parent = ActiveEntity(
            "parent", privileges=PrivilegeSet.of(add_secrecy=["a"])
        )
        child = parent.create_active(
            "child", privileges=PrivilegeSet.of(add_secrecy=["a"])
        )
        assert child.privileges.covers(PrivilegeSet.of(add_secrecy=["a"]))
        with pytest.raises(PrivilegeError):
            parent.create_active(
                "greedy", privileges=PrivilegeSet.of(remove_secrecy=["a"])
            )


class TestAmalgamation:
    def test_merged_secrecy_unions_integrity_intersects(self):
        a = PassiveEntity("a", SecurityContext.of(["s1"], ["i1", "i2"]))
        b = PassiveEntity("b", SecurityContext.of(["s2"], ["i2"]))
        merged = a.merged_with(b, "ab")
        assert "s1" in merged.context.secrecy and "s2" in merged.context.secrecy
        assert "i2" in merged.context.integrity
        assert "i1" not in merged.context.integrity

    def test_merged_payload_preserves_both(self):
        a = PassiveEntity("a", payload=1)
        b = PassiveEntity("b", payload=2)
        assert a.merged_with(b, "ab").payload == (1, 2)
