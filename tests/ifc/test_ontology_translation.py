"""Tag ontologies and cross-level translation (§8.2.2, §10.2)."""

import pytest

from repro.errors import TagError
from repro.ifc import (
    Label,
    SecurityContext,
    TagMapper,
    TagOntology,
    UnmappedPolicy,
    can_flow,
    semantic_can_flow,
)


@pytest.fixture
def medical_ontology() -> TagOntology:
    onto = TagOntology()
    onto.declare_subtype("cardiology", "medical")
    onto.declare_subtype("oncology", "medical")
    onto.declare_subtype("medical", "personal")
    onto.declare_subtype("hosp-dev", "certified-dev")
    return onto


class TestOntology:
    def test_ancestors_transitive(self, medical_ontology):
        ancestors = medical_ontology.ancestors("cardiology")
        names = {t.name for t in ancestors}
        assert names == {"medical", "personal"}

    def test_is_subtype_reflexive(self, medical_ontology):
        assert medical_ontology.is_subtype("cardiology", "cardiology")
        assert medical_ontology.is_subtype("cardiology", "personal")
        assert not medical_ontology.is_subtype("medical", "cardiology")

    def test_descendants(self, medical_ontology):
        names = {t.name for t in medical_ontology.descendants("medical")}
        assert names == {"cardiology", "oncology"}

    def test_cycle_rejected(self, medical_ontology):
        with pytest.raises(TagError):
            medical_ontology.declare_subtype("personal", "cardiology")
        with pytest.raises(TagError):
            medical_ontology.declare_subtype("x", "x")

    def test_label_expansion(self, medical_ontology):
        expanded = medical_ontology.expand_label(Label.of("cardiology"))
        names = {t.name for t in expanded}
        assert names == {"cardiology", "medical", "personal"}

    def test_semantic_flow_specialised_data_to_general_sink(
        self, medical_ontology
    ):
        """Cardiology data flows to a medical-cleared sink — the case
        flat IFC denies but the ontology sanctions."""
        cardio = SecurityContext.of(["cardiology"], [])
        medical_sink = SecurityContext.of(["medical"], [])
        assert not can_flow(cardio, medical_sink)          # flat: denied
        assert semantic_can_flow(medical_ontology, cardio, medical_sink)

    def test_semantic_flow_never_generalises_data_down(self, medical_ontology):
        """Medical data must NOT flow to a cardiology-only sink."""
        medical = SecurityContext.of(["medical"], [])
        cardio_sink = SecurityContext.of(["cardiology"], [])
        assert not semantic_can_flow(medical_ontology, medical, cardio_sink)

    def test_semantic_integrity_specific_endorsement_satisfies_general(
        self, medical_ontology
    ):
        """hosp-dev endorsement satisfies a certified-dev demand."""
        source = SecurityContext.of([], ["hosp-dev"])
        demanding = SecurityContext.of([], ["certified-dev"])
        assert not can_flow(source, demanding)             # flat: denied
        assert semantic_can_flow(medical_ontology, source, demanding)

    def test_semantic_flow_subsumes_flat_flow(self, medical_ontology):
        """Whatever flat IFC allows, semantic IFC also allows."""
        a = SecurityContext.of(["medical"], ["hosp-dev"])
        b = SecurityContext.of(["medical", "extra"], [])
        assert can_flow(a, b)
        assert semantic_can_flow(medical_ontology, a, b)


class TestTranslation:
    @pytest.fixture
    def mapper(self) -> TagMapper:
        mapper = TagMapper("kernel", "middleware")
        mapper.map("k:t1", "hospital:medical")
        mapper.map("k:t2", "hospital:ann")
        mapper.map("k:i1", "hospital:hosp-dev")
        return mapper

    def test_roundtrip(self, mapper):
        ctx = SecurityContext.of(["k:t1", "k:t2"], ["k:i1"])
        up = mapper.translate(ctx)
        assert "hospital:medical" in str(up.secrecy)
        assert mapper.translate_down(up) == ctx
        assert mapper.roundtrip_consistent(ctx)

    def test_unmapped_secrecy_fails_closed(self, mapper):
        ctx = SecurityContext.of(["k:unknown"], [])
        with pytest.raises(TagError):
            mapper.translate(ctx)

    def test_unmapped_secrecy_keep_policy(self, mapper):
        ctx = SecurityContext.of(["k:unknown"], [])
        up = mapper.translate(ctx, unmapped_secrecy=UnmappedPolicy.KEEP)
        assert "k:unknown" in str(up.secrecy)

    def test_unmapped_integrity_drops_by_default(self, mapper):
        ctx = SecurityContext.of([], ["k:unendorsed"])
        up = mapper.translate(ctx)
        assert up.integrity.is_empty()

    def test_injectivity_enforced(self, mapper):
        with pytest.raises(TagError):
            mapper.map("k:t1", "hospital:other")
        with pytest.raises(TagError):
            mapper.map("k:t9", "hospital:medical")

    def test_remapping_same_pair_is_idempotent(self, mapper):
        mapper.map("k:t1", "hospital:medical")  # no error

    def test_roundtrip_consistency_fails_for_partial_tables(self, mapper):
        ctx = SecurityContext.of(["k:unmapped"], [])
        assert not mapper.roundtrip_consistent(ctx)

    def test_translation_preserves_flow_decisions(self, mapper):
        """Fully mapped contexts: the flow decision is level-invariant —
        the §8.2.2 interoperability requirement."""
        a = SecurityContext.of(["k:t1"], ["k:i1"])
        b = SecurityContext.of(["k:t1", "k:t2"], [])
        assert can_flow(a, b) == can_flow(mapper.translate(a), mapper.translate(b))
        c = SecurityContext.of(["k:t2"], [])
        assert can_flow(a, c) == can_flow(mapper.translate(a), mapper.translate(c))
