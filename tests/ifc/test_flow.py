"""The flow rule: A → B iff S(A) ⊆ S(B) ∧ I(B) ⊆ I(A) (§6, Fig. 4)."""

import pytest

from repro.errors import FlowError
from repro.ifc import (
    SecurityContext,
    can_flow,
    check_flow,
    flow_decision,
    flow_path_allowed,
)


class TestCanFlow:
    def test_equal_contexts_flow(self, ann_device, ann_analyser):
        assert can_flow(ann_device, ann_analyser)

    def test_fig4_zeb_to_ann_analyser_blocked(self, zeb_device, ann_analyser):
        """The paper's Fig. 4: fails both secrecy and integrity."""
        decision = flow_decision(zeb_device, ann_analyser)
        assert not decision.allowed
        assert not decision.secrecy_ok      # destination S has no zeb
        assert not decision.integrity_ok    # source I has no hosp-dev
        assert "zeb" in str(decision.missing_secrecy)
        assert "hosp-dev" in str(decision.missing_integrity)

    def test_secrecy_may_rise_along_flow(self):
        low = SecurityContext.of(["s1"], [])
        high = SecurityContext.of(["s1", "s2"], [])
        assert can_flow(low, high)
        assert not can_flow(high, low)

    def test_integrity_may_fall_along_flow(self):
        endorsed = SecurityContext.of([], ["i1", "i2"])
        plain = SecurityContext.of([], ["i1"])
        assert can_flow(endorsed, plain)
        assert not can_flow(plain, endorsed)

    def test_public_flows_anywhere_without_integrity_demands(self):
        public = SecurityContext.public()
        secret = SecurityContext.of(["s"], [])
        assert can_flow(public, secret)
        assert not can_flow(secret, public)

    def test_integrity_demand_blocks_public_source(self):
        public = SecurityContext.public()
        demanding = SecurityContext.of([], ["certified"])
        assert not can_flow(public, demanding)

    def test_incomparable_contexts_block_both_ways(self):
        a = SecurityContext.of(["s1"], [])
        b = SecurityContext.of(["s2"], [])
        assert not can_flow(a, b)
        assert not can_flow(b, a)


class TestFlowDecision:
    def test_allowed_decision_has_no_missing_tags(self):
        ctx = SecurityContext.of(["s"], ["i"])
        decision = flow_decision(ctx, ctx)
        assert decision.allowed
        assert decision.reason == "allowed"
        assert decision.missing_secrecy.is_empty()
        assert decision.missing_integrity.is_empty()

    def test_reason_names_each_failed_half(self):
        src = SecurityContext.of(["s"], [])
        dst = SecurityContext.of([], ["i"])
        decision = flow_decision(src, dst)
        assert "secrecy" in decision.reason
        assert "integrity" in decision.reason

    def test_secrecy_only_failure(self):
        src = SecurityContext.of(["s"], [])
        dst = SecurityContext.public()
        decision = flow_decision(src, dst)
        assert not decision.secrecy_ok
        assert decision.integrity_ok


class TestCheckFlow:
    def test_raises_with_names_on_denial(self, zeb_device, ann_analyser):
        with pytest.raises(FlowError) as excinfo:
            check_flow(zeb_device, ann_analyser, "zeb-sensor", "ann-analyser")
        assert "zeb-sensor" in str(excinfo.value)
        assert "ann-analyser" in str(excinfo.value)

    def test_returns_decision_on_success(self, ann_device, ann_analyser):
        decision = check_flow(ann_device, ann_analyser)
        assert decision.allowed


class TestFlowPath:
    def test_legal_chain(self):
        chain = [
            SecurityContext.of(["s1"], []),
            SecurityContext.of(["s1", "s2"], []),
            SecurityContext.of(["s1", "s2", "s3"], []),
        ]
        ok, failed_at = flow_path_allowed(chain)
        assert ok and failed_at is None

    def test_reports_first_broken_hop(self):
        chain = [
            SecurityContext.of(["s1"], []),
            SecurityContext.of(["s1", "s2"], []),
            SecurityContext.of(["s1"], []),  # hop 1->2 drops s2: illegal
        ]
        ok, failed_at = flow_path_allowed(chain)
        assert not ok
        assert failed_at == 1

    def test_single_and_empty_chains_trivially_pass(self):
        assert flow_path_allowed([]) == (True, None)
        assert flow_path_allowed([SecurityContext.public()]) == (True, None)
