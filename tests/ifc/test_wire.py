"""Wire plane: tag-table handshake, mask translation, re-sync.

The property at stake is the IFC-critical one: a mask crossing the wire
must decode to *exactly* the tag set it encoded, even though the two
interners assigned the tags different bit positions — and a tag the peer
has never heard of must force a re-sync, never a silent relabel.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ifc import (
    HandshakeAck,
    HandshakeFin,
    HandshakeHello,
    Label,
    MaskTranslator,
    SecurityContext,
    TableAck,
    TableUpdate,
    TagBlock,
    TagInterner,
    TagTable,
    WireCodec,
    control_wire_size,
    global_interner,
    raw_table_size,
)

TAG_POOL = [f"ns{i % 3}:tag{i}" for i in range(24)]

tag_sets = st.frozensets(st.sampled_from(TAG_POOL), max_size=8)


def _handshake(a: WireCodec, b: WireCodec, a_host="A", b_host="B") -> None:
    """Drive the three-step handshake between two codecs directly."""
    hello = a.greet(b_host)
    assert isinstance(hello, HandshakeHello)
    ack, _ = b.handle_control(a_host, hello)
    assert isinstance(ack, HandshakeAck)
    fin, _ = a.handle_control(b_host, ack)
    assert isinstance(fin, HandshakeFin)
    reply, _ = b.handle_control(a_host, fin)
    assert reply is None


def _fresh_pair(a_tags, b_tags):
    """Two codecs over independently-populated (disjointly-ordered)
    interners: A interns its tags first, B interns its own first, so the
    same tag generally sits at different bit positions."""
    ia, ib = TagInterner(), TagInterner()
    for t in a_tags:
        ia.intern(t)
    for t in reversed(list(b_tags)):
        ib.intern(t)
    return WireCodec(ia), WireCodec(ib)


class TestHandshakeRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        a_tags=st.lists(st.sampled_from(TAG_POOL), unique=True, max_size=12),
        b_tags=st.lists(st.sampled_from(TAG_POOL), unique=True, max_size=12),
        secrecy=tag_sets,
        integrity=tag_sets,
    )
    def test_any_context_round_trips_between_independent_interners(
        self, a_tags, b_tags, secrecy, integrity
    ):
        a, b = _fresh_pair(a_tags, b_tags)
        # The sender labels things with its pool plus the payload tags.
        for t in secrecy | integrity:
            a.interner.intern(t)
        _handshake(a, b)

        s_mask = a.interner.mask_of(secrecy)
        i_mask = a.interner.mask_of(integrity)
        encoded = a.encode_masks("B", s_mask, i_mask)
        assert encoded is not None, "all tags interned pre-handshake must encode"
        assert b.can_decode("A", *encoded)
        decoded_s = b.decode_mask("A", encoded[0])
        decoded_i = b.decode_mask("A", encoded[1])
        assert {t.qualified for t in b.interner.tags_of(decoded_s)} == {
            t.qualified for t in a.interner.tags_of(s_mask)
        }
        assert {t.qualified for t in b.interner.tags_of(decoded_i)} == {
            t.qualified for t in a.interner.tags_of(i_mask)
        }

    @settings(max_examples=40, deadline=None)
    @given(
        a_tags=st.lists(st.sampled_from(TAG_POOL), unique=True, min_size=1, max_size=10),
        b_tags=st.lists(st.sampled_from(TAG_POOL), unique=True, max_size=10),
        late=st.frozensets(
            st.text(string.ascii_lowercase, min_size=1, max_size=6).map(
                lambda s: f"late:{s}"
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_post_handshake_unknown_tag_triggers_resync_not_mislabel(
        self, a_tags, b_tags, late
    ):
        a, b = _fresh_pair(a_tags, b_tags)
        _handshake(a, b)

        # A tag interned after the handshake: its bit exceeds what B
        # confirmed, so the encode must refuse (tag-set fallback) ...
        mask = a.interner.mask_of(late)
        assert a.encode_masks("B", mask) is None

        # ... and the re-sync delta must carry exactly the new suffix.
        update = a.resync("B")
        assert isinstance(update, TableUpdate)
        assert set(update.tags) >= set(late)
        ack, _ = b.handle_control("A", update)
        assert isinstance(ack, TableAck)
        none_reply, _ = a.handle_control("B", ack)
        assert none_reply is None

        # Post-sync the same mask encodes, decodes, and round-trips.
        encoded = a.encode_masks("B", mask)
        assert encoded is not None
        assert b.can_decode("A", encoded[0])
        decoded = b.decode_mask("A", encoded[0])
        assert {t.qualified for t in b.interner.tags_of(decoded)} == {
            t.qualified for t in a.interner.tags_of(mask)
        }


class TestTranslatorAndTable:
    def test_table_snapshot_is_a_stable_prefix(self):
        interner = TagInterner()
        interner.intern("x:a")
        first = interner.export_table()
        interner.intern("x:b")
        second = interner.export_table()
        assert second[: len(first)] == first
        assert interner.export_table(start=len(first)) == ("x:b",)

    def test_tag_table_version_is_length(self):
        assert TagTable(("a:b", "a:c")).version == 2

    def test_translator_memoizes_whole_masks(self):
        local = TagInterner()
        tr = MaskTranslator(local)
        tr.extend(["p:one", "p:two", "p:three"])
        assert tr.version == 3
        m = tr.to_local_mask(0b101)
        assert tr.to_local_mask(0b101) == m
        assert {t.qualified for t in local.tags_of(m)} == {"p:one", "p:three"}

    def test_translator_rejects_unknown_positions(self):
        tr = MaskTranslator(TagInterner())
        tr.extend(["p:one"])
        with pytest.raises(IndexError):
            tr.to_local_mask(0b10)

    def test_label_from_foreign_mask(self):
        # The peer's bit order differs from ours; the translation table
        # must land each foreign bit on the right local tag.
        g = global_interner()
        local_bits = [g.bit("wire:beta"), g.bit("wire:alpha")]
        label = Label.from_foreign_mask(0b11, local_bits)
        assert {t.qualified for t in label.tags} == {"wire:alpha", "wire:beta"}
        assert Label.from_foreign_mask(0, local_bits).is_empty()
        with pytest.raises(IndexError):
            Label.from_foreign_mask(0b100, local_bits)

    def test_repeated_context_pair_decodes_to_same_object(self):
        # Object-identity on repeats keeps the decision cache hot.
        tr = MaskTranslator(global_interner())
        tr.extend(["wire:s1", "wire:s2", "wire:i1"])
        ctx1 = tr.to_local_context(0b011, 0b100)
        ctx2 = tr.to_local_context(0b011, 0b100)
        assert ctx1 is ctx2
        assert isinstance(ctx1, SecurityContext)
        assert {t.qualified for t in ctx1.secrecy.tags} == {"wire:s1", "wire:s2"}


class TestTagBlockCompression:
    @settings(max_examples=80, deadline=None)
    @given(
        tags=st.lists(
            st.one_of(
                st.sampled_from(TAG_POOL),
                st.builds(
                    lambda stem, n: f"{stem}{n}",
                    st.sampled_from(["run:sensor-", "run:meter", "x:"]),
                    st.integers(min_value=0, max_value=5000),
                ),
            ),
            unique=True,
            max_size=40,
        ),
        base=st.integers(min_value=0, max_value=100),
    )
    def test_compress_round_trips_exactly(self, tags, base):
        block = TagBlock.compress(tags, base=base)
        assert block.tags() == tuple(tags)
        assert block.base == base and block.count == len(tags)

    def test_generated_runs_compress_massively(self):
        tags = tuple(f"city:sensor-{i}" for i in range(10_000))
        block = TagBlock.compress(tags)
        assert block.tags() == tags
        assert block.wire_size * 100 < raw_table_size(tags)

    def test_non_canonical_decimals_stay_literal(self):
        tags = ("pad:07", "pad:08", "pad:09", "pad:10")
        assert TagBlock.compress(tags).tags() == tags

    def test_table_wire_size_is_the_compressed_size(self):
        table = TagTable(tuple(f"a:t{i}" for i in range(100)))
        assert table.wire_size == table.block.wire_size
        assert table.wire_size < raw_table_size(table.tags)

    def test_control_payload_sizing(self):
        table = TagTable(tuple(f"a:t{i}" for i in range(50)))
        assert control_wire_size(HandshakeHello(table)) == table.wire_size
        assert control_wire_size(HandshakeAck(table, 3)) == table.wire_size + 4
        assert control_wire_size(HandshakeFin(7)) == 4
        assert control_wire_size(TableAck(7)) == 4
        update = TableUpdate(base=10, tags=("a:t50", "a:t51"))
        assert control_wire_size(update) == TagBlock.compress(
            update.tags, base=10
        ).wire_size


class TestOutOfBandLearning:
    def test_learn_table_builds_translator_without_handshake(self):
        codec = WireCodec(TagInterner())
        assert codec.learn_table("peer", 0, ("p:a", "p:b")) == 2
        assert codec.peer_version("peer") == 2
        assert codec.can_decode("peer", 0b11)

    def test_learn_table_skips_overlap_and_refuses_gaps(self):
        codec = WireCodec(TagInterner())
        codec.learn_table("peer", 0, ("p:a", "p:b"))
        # Overlapping delta: only the new suffix extends.
        assert codec.learn_table("peer", 1, ("p:b", "p:c")) == 3
        # Gap: state unchanged, caller re-pulls from the returned version.
        assert codec.learn_table("peer", 10, ("p:z",)) == 3
        assert codec.peer_version("peer") == 3

    def test_note_confirmed_unlocks_masking(self):
        interner = TagInterner()
        interner.intern("me:a")
        codec = WireCodec(interner)
        assert codec.encode_masks("peer", 0b1) is None
        codec.note_confirmed("peer", 1)
        assert codec.peer("peer").masking
        assert codec.encode_masks("peer", 0b1) == (0b1,)
        # A claim never lowers what a newer one established.
        codec.note_confirmed("peer", 0)
        assert codec.encode_masks("peer", 0b1) == (0b1,)


class TestControlRobustness:
    def test_hello_reoffered_after_interval(self):
        from repro.ifc.wire import REOFFER_INTERVAL

        a = WireCodec(TagInterner())
        assert a.greet("B") is not None
        assert a.greet("B") is None  # in flight
        for __ in range(REOFFER_INTERVAL):
            a.encode_masks("B", 0)  # unsynced fallback sends
        assert a.greet("B") is not None  # re-offered

    def test_update_with_gap_acks_what_is_held(self):
        a_int = TagInterner()
        for t in ("g:a", "g:b"):
            a_int.intern(t)
        a, b = WireCodec(a_int), WireCodec(TagInterner())
        _handshake(a, b)
        # B answers a delta starting beyond what it holds with its real
        # version, so the sender can re-sync from there.
        stale = TableUpdate(base=10, tags=("g:z",))
        ack, event = b.handle_control("A", stale)
        assert isinstance(ack, TableAck) and ack.acked_version == 2
        assert event["step"] == "update-gap"

    def test_update_before_handshake_is_safe(self):
        b = WireCodec(TagInterner())
        ack, event = b.handle_control("A", TableUpdate(base=0, tags=("q:x",)))
        assert isinstance(ack, TableAck) and ack.acked_version == 0
        assert event["step"] == "update-no-handshake"
