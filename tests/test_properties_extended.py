"""Property-based tests across the newer subsystems (hypothesis)."""

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.audit import AuditLog
from repro.ifc import (
    Label,
    SecurityContext,
    TagMapper,
    TagOntology,
    can_flow,
    semantic_can_flow,
)
from repro.ifc.tags import Tag
from repro.middleware import AttributeSpec, Message, MessageType
from repro.ifc import as_tags

TAGS = ["a", "b", "c", "d"]

labels = st.builds(
    lambda names: Label.of(*names),
    st.frozensets(st.sampled_from(TAGS), max_size=4),
)
contexts = st.builds(SecurityContext, labels, labels)


# -- ontology ---------------------------------------------------------------------

ontology_edges = st.lists(
    st.tuples(st.sampled_from(TAGS), st.sampled_from(TAGS)),
    max_size=6,
)


def build_ontology(edges):
    onto = TagOntology()
    for child, parent in edges:
        try:
            onto.declare_subtype(child, parent)
        except Exception:
            pass  # skip self/cycle edges
    return onto


@given(ontology_edges, contexts, contexts)
def test_semantic_flow_subsumes_flat_flow(edges, a, b):
    """Everything flat IFC allows, semantic IFC allows (monotone)."""
    onto = build_ontology(edges)
    if can_flow(a, b):
        assert semantic_can_flow(onto, a, b)


@given(contexts, contexts)
def test_semantic_flow_equals_flat_with_empty_ontology(a, b):
    onto = TagOntology()
    assert semantic_can_flow(onto, a, b) == can_flow(a, b)


@given(ontology_edges, labels)
def test_expansion_is_extensive_and_idempotent(edges, label):
    onto = build_ontology(edges)
    expanded = onto.expand_label(label)
    assert label <= expanded
    assert onto.expand_label(expanded) == expanded


# -- translation --------------------------------------------------------------------


@given(contexts)
def test_full_mapping_roundtrips(ctx):
    mapper = TagMapper("lo", "hi")
    for name in TAGS:
        mapper.map(f"local:{name}", f"hi:{name}")
    assert mapper.roundtrip_consistent(ctx)


@given(contexts, contexts)
def test_translation_preserves_flow_decisions(a, b):
    mapper = TagMapper("lo", "hi")
    for name in TAGS:
        mapper.map(f"local:{name}", f"hi:{name}")
    assert can_flow(a, b) == can_flow(mapper.translate(a), mapper.translate(b))


# -- message quenching -----------------------------------------------------------------

attribute_tags = st.lists(
    st.frozensets(st.sampled_from(TAGS), max_size=2), min_size=1, max_size=5
)


@given(attribute_tags, labels)
def test_quenching_sound_and_maximal(extra_tags, receiver_secrecy):
    """Quenching keeps exactly the attributes the receiver may see."""
    schema = MessageType(
        "m",
        [
            AttributeSpec(f"attr{i}", int, extra_secrecy=as_tags(tags))
            for i, tags in enumerate(extra_tags)
        ],
    )
    message = Message(
        schema,
        {f"attr{i}": i for i in range(len(extra_tags))},
        SecurityContext.public(),
    )
    receiver = SecurityContext(receiver_secrecy, Label.empty())
    quenched = message.quenched_for(receiver)
    for i, tags in enumerate(extra_tags):
        name = f"attr{i}"
        needed = Label(as_tags(tags))
        if needed <= receiver.secrecy:
            assert name in quenched.values          # maximal
        else:
            assert name not in quenched.values      # sound


@given(attribute_tags)
def test_fully_cleared_receiver_loses_nothing(extra_tags):
    schema = MessageType(
        "m",
        [
            AttributeSpec(f"attr{i}", int, extra_secrecy=as_tags(tags))
            for i, tags in enumerate(extra_tags)
        ],
    )
    message = Message(
        schema,
        {f"attr{i}": i for i in range(len(extra_tags))},
        SecurityContext.public(),
    )
    receiver = SecurityContext.of(TAGS, [])
    assert message.quenched_for(receiver).values == message.values


# -- audit log -------------------------------------------------------------------------

actions = st.lists(
    st.tuples(
        st.sampled_from(["allow", "deny"]),
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    ),
    max_size=30,
)


@given(actions)
def test_audit_chain_always_verifies_fresh(entries):
    log = AuditLog()
    for kind, actor, subject in entries:
        if kind == "allow":
            log.flow_allowed(actor, subject)
        else:
            log.flow_denied(actor, subject, "reason")
    assert log.verify()
    assert len(log) == len(entries)


@given(actions, st.integers(min_value=0, max_value=29))
def test_audit_tamper_always_detected(entries, position):
    assume(entries)
    log = AuditLog()
    for kind, actor, subject in entries:
        if kind == "allow":
            log.flow_allowed(actor, subject)
        else:
            log.flow_denied(actor, subject, "reason")
    position = position % len(entries)
    record = log.records()[position]
    object.__setattr__(record, "actor", record.actor + "-tampered")
    assert not log.verify()
