"""The row-labelled shared datastore (§4's DB problem, Concern 5)."""

import pytest

from repro.audit import AuditLog
from repro.cloud import LabelledStore
from repro.errors import FlowError, KernelError
from repro.ifc import SecurityContext

ANN = SecurityContext.of(["medical", "ann"], [])
ZEB = SecurityContext.of(["medical", "zeb"], [])
BOTH = SecurityContext.of(["medical", "ann", "zeb"], [])
PUBLIC = SecurityContext.public()


@pytest.fixture
def store(audit):
    store = LabelledStore("patients", audit=audit)
    store.insert("ann-app", {"patient": "ann", "hr": 72.0}, ANN)
    store.insert("zeb-app", {"patient": "zeb", "hr": 85.0}, ZEB)
    return store


class TestSharedTableViews:
    def test_each_application_sees_its_legal_slice(self, store):
        """The §4 scenario: two apps share the table, different views."""
        ann_rows = store.query("ann-analyser", ANN)
        assert [r.values["patient"] for r in ann_rows] == ["ann"]
        zeb_rows = store.query("zeb-analyser", ZEB)
        assert [r.values["patient"] for r in zeb_rows] == ["zeb"]

    def test_cleared_reader_sees_everything(self, store):
        assert len(store.query("ward", BOTH)) == 2

    def test_public_reader_sees_nothing(self, store):
        assert store.query("portal", PUBLIC) == []

    def test_predicate_composes_with_filtering(self, store):
        rows = store.query("ward", BOTH, predicate=lambda v: v["hr"] > 80)
        assert [r.values["patient"] for r in rows] == ["zeb"]

    def test_strict_mode_aborts_on_hidden_rows(self, store):
        with pytest.raises(FlowError):
            store.query("ann-analyser", ANN, strict=True)

    def test_strict_mode_passes_when_view_complete(self, store):
        rows = store.query(
            "ann-analyser", ANN,
            predicate=lambda v: v["patient"] == "ann", strict=True,
        )
        assert len(rows) == 1

    def test_filtered_reads_audited_as_denials(self, store, audit):
        store.query("ann-analyser", ANN)
        assert audit.denials()  # zeb's row was filtered, and recorded


class TestWrites:
    def test_update_requires_writer_flow(self, store):
        row = store.query("ann-analyser", ANN)[0]
        store.update("ann-app", ANN, row.row_id, {"hr": 75.0})
        assert store.query("ann-analyser", ANN)[0].values["hr"] == 75.0

    def test_update_denied_across_contexts(self, store):
        zeb_row = store.query("zeb-analyser", ZEB)[0]
        with pytest.raises(FlowError):
            store.update("ann-app", ANN, zeb_row.row_id, {"hr": 0.0})

    def test_update_joins_contexts(self, store):
        """A row touched by a more-labelled writer becomes more
        constrained (write-up is legal, the row records it)."""
        ann_row = store.query("ann-analyser", ANN)[0]
        public_writer = SecurityContext.public()
        store.update("ingest", public_writer, ann_row.row_id, {"hr": 73.0})
        # context unchanged: join(ANN, public) == ANN for secrecy
        assert "ann" in ann_row.context.secrecy
        with pytest.raises(KernelError):
            store.update("x", ANN, 999, {})


class TestAggregation:
    def test_aggregate_needs_amalgamated_clearance(self, store):
        """Concern 5: a summary over both patients demands both tags."""
        mean = store.aggregate("ward", BOTH, "hr", lambda vs: sum(vs) / len(vs))
        assert mean == pytest.approx(78.5)

    def test_underclear_reader_cannot_aggregate(self, store):
        with pytest.raises(FlowError):
            store.aggregate("ann-analyser", ANN, "hr", sum)

    def test_scoped_aggregate_within_clearance(self, store):
        total = store.aggregate(
            "ann-analyser", ANN, "hr", sum,
            predicate=lambda v: v["patient"] == "ann",
        )
        assert total == 72.0

    def test_empty_aggregate_returns_none(self, store):
        assert store.aggregate(
            "ward", BOTH, "hr", sum, predicate=lambda v: False
        ) is None

    def test_contexts_present_for_creep_analysis(self, store):
        assert len(store.contexts_present()) == 2
