"""The simulated kernel with LSM-style IFC enforcement (§8.2.1)."""

import pytest

from repro.audit import AuditLog, RecordKind
from repro.cloud import (
    IFCSecurityModule,
    Kernel,
    NullSecurityModule,
    ObjectKind,
)
from repro.errors import FlowError, KernelError, PrivilegeError
from repro.ifc import PrivilegeSet, SecurityContext


@pytest.fixture
def ifc_kernel(audit):
    return Kernel("host", IFCSecurityModule(audit))


class TestProcessManagement:
    def test_spawn_and_fork(self, ifc_kernel):
        parent = ifc_kernel.spawn("init", SecurityContext.of(["s"], []))
        child = ifc_kernel.fork(parent.pid)
        assert child.security == parent.security
        assert child.parent == parent.pid

    def test_fork_does_not_inherit_privileges(self, ifc_kernel):
        parent = ifc_kernel.spawn(
            "p", SecurityContext.of(["s"], []),
            PrivilegeSet.of(remove_secrecy=["s"]),
        )
        child = ifc_kernel.fork(parent.pid)
        assert child.privileges.is_empty()

    def test_dead_process_fails_syscalls(self, ifc_kernel):
        process = ifc_kernel.spawn("p")
        ifc_kernel.exit(process.pid)
        with pytest.raises(KernelError):
            ifc_kernel.create_object(process.pid, ObjectKind.FILE, "f")

    def test_unknown_pid(self, ifc_kernel):
        with pytest.raises(KernelError):
            ifc_kernel.read(999, 1)


class TestObjectFlows:
    def test_created_object_inherits_labels(self, ifc_kernel):
        process = ifc_kernel.spawn("p", SecurityContext.of(["med"], ["ok"]))
        obj = ifc_kernel.create_object(process.pid, ObjectKind.FILE, "f")
        assert obj.security == process.security

    def test_write_then_read_same_context(self, ifc_kernel):
        process = ifc_kernel.spawn("p", SecurityContext.of(["s"], []))
        obj = ifc_kernel.create_object(process.pid, ObjectKind.FILE, "f")
        ifc_kernel.write(process.pid, obj.oid, "data")
        assert ifc_kernel.read(process.pid, obj.oid) == ["data"]

    def test_unlabelled_process_cannot_read_secret_file(self, ifc_kernel):
        owner = ifc_kernel.spawn("owner", SecurityContext.of(["med"], []))
        secret = ifc_kernel.create_object(owner.pid, ObjectKind.FILE, "secret")
        snoop = ifc_kernel.spawn("snoop")
        with pytest.raises(FlowError):
            ifc_kernel.read(snoop.pid, secret.oid)

    def test_labelled_process_cannot_write_down(self, ifc_kernel):
        public_proc = ifc_kernel.spawn("pub")
        public_file = ifc_kernel.create_object(public_proc.pid, ObjectKind.FILE, "f")
        secret_proc = ifc_kernel.spawn("sec", SecurityContext.of(["s"], []))
        with pytest.raises(FlowError):
            ifc_kernel.write(secret_proc.pid, public_file.oid, "leak")

    def test_ipc_enforced(self, ifc_kernel):
        a = ifc_kernel.spawn("a", SecurityContext.of(["s"], []))
        b = ifc_kernel.spawn("b")
        with pytest.raises(FlowError):
            ifc_kernel.ipc_send(a.pid, b.pid, "x")
        c = ifc_kernel.spawn("c", SecurityContext.of(["s"], []))
        ifc_kernel.ipc_send(a.pid, c.pid, "ok")


class TestContextChanges:
    def test_privileged_declassification(self, ifc_kernel):
        process = ifc_kernel.spawn(
            "anonymiser",
            SecurityContext.of(["med"], []),
            PrivilegeSet.of(remove_secrecy=["med"]),
        )
        new = ifc_kernel.change_context(process.pid, SecurityContext.public())
        assert new.is_public()

    def test_unprivileged_change_denied_and_audited(self, audit, ifc_kernel):
        process = ifc_kernel.spawn("p", SecurityContext.of(["med"], []))
        with pytest.raises(PrivilegeError):
            ifc_kernel.change_context(process.pid, SecurityContext.public())
        assert audit.denials()

    def test_grant_enables_change(self, ifc_kernel):
        process = ifc_kernel.spawn("p", SecurityContext.of(["med"], []))
        ifc_kernel.grant(process.pid, PrivilegeSet.of(remove_secrecy=["med"]))
        ifc_kernel.change_context(process.pid, SecurityContext.public())


class TestExternalSend:
    def test_labelled_process_blocked(self, ifc_kernel):
        process = ifc_kernel.spawn("p", SecurityContext.of(["s"], []))
        assert not ifc_kernel.external_send_allowed(process.pid)

    def test_public_process_allowed(self, ifc_kernel):
        process = ifc_kernel.spawn("p")
        assert ifc_kernel.external_send_allowed(process.pid)


class TestAuditTrail:
    def test_every_flow_attempt_recorded(self, audit, ifc_kernel):
        owner = ifc_kernel.spawn("owner", SecurityContext.of(["med"], []))
        obj = ifc_kernel.create_object(owner.pid, ObjectKind.FILE, "f")
        ifc_kernel.write(owner.pid, obj.oid, "d")
        snoop = ifc_kernel.spawn("snoop")
        with pytest.raises(FlowError):
            ifc_kernel.read(snoop.pid, obj.oid)
        kinds = [r.kind for r in audit]
        assert RecordKind.ENTITY_CREATED in kinds
        assert RecordKind.FLOW_ALLOWED in kinds
        assert RecordKind.FLOW_DENIED in kinds
        assert audit.verify()


class TestNullModuleBaseline:
    def test_null_module_enforces_nothing(self):
        kernel = Kernel("host", NullSecurityModule())
        owner = kernel.spawn("owner", SecurityContext.of(["med"], []))
        secret = kernel.create_object(owner.pid, ObjectKind.FILE, "secret")
        kernel.write(owner.pid, secret.oid, "data")
        snoop = kernel.spawn("snoop")
        # The baseline "leak": no IFC, read succeeds.
        assert kernel.read(snoop.pid, secret.oid) == ["data"]

    def test_syscall_counting_identical_shape(self):
        for module in (NullSecurityModule(), IFCSecurityModule()):
            kernel = Kernel("host", module)
            process = kernel.spawn("p", SecurityContext.of(["s"], []))
            obj = kernel.create_object(process.pid, ObjectKind.FILE, "f")
            kernel.write(process.pid, obj.oid, "x")
            kernel.read(process.pid, obj.oid)
            assert kernel.syscall_count == 3
