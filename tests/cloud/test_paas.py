"""Machines, attestation, tenants, and the application manager (§8.2)."""

import pytest

from repro.cloud import (
    APPROVED_BOOT_CHAIN,
    BOOT_PCR,
    Machine,
    MachineConfig,
    PaaSCloud,
    trusted_verifier,
)
from repro.errors import AuthorityError, FlowError, KernelError
from repro.ifc import PrivilegeSet, SecurityContext, Tag


class TestMachine:
    def test_ifc_machine_enforces(self):
        machine = Machine("host")
        owner = machine.launch("owner", SecurityContext.of(["s"], []))
        from repro.cloud import ObjectKind

        obj = machine.kernel.create_object(owner.pid, ObjectKind.FILE, "f")
        snoop = machine.launch("snoop")
        with pytest.raises(FlowError):
            machine.kernel.read(snoop.pid, obj.oid)

    def test_baseline_machine_does_not(self):
        machine = Machine("host", MachineConfig(enforce_ifc=False))
        owner = machine.launch("owner", SecurityContext.of(["s"], []))
        from repro.cloud import ObjectKind

        obj = machine.kernel.create_object(owner.pid, ObjectKind.FILE, "f")
        snoop = machine.launch("snoop")
        machine.kernel.read(snoop.pid, obj.oid)  # no exception

    def test_approved_platform_attests(self):
        machine = Machine("host")
        verifier = trusted_verifier([machine])
        assert machine.attest_to(verifier)

    def test_tampered_boot_chain_rejected(self):
        evil = Machine(
            "host", MachineConfig(boot_chain=["bootloader-v2", "rootkit"])
        )
        verifier = trusted_verifier([Machine("reference")])
        verifier.golden_for_measurements("host", BOOT_PCR, APPROVED_BOOT_CHAIN)
        assert not evil.attest_to(verifier)


class TestPaaSCloud:
    def test_duplicate_machine_rejected(self):
        cloud = PaaSCloud("c")
        cloud.add_machine("h")
        with pytest.raises(KernelError):
            cloud.add_machine("h")

    def test_duplicate_tenant_rejected(self):
        cloud = PaaSCloud("c")
        cloud.register_tenant("t")
        with pytest.raises(AuthorityError):
            cloud.register_tenant("t")

    def test_tenant_tags_namespaced_and_owned(self):
        cloud = PaaSCloud("c")
        tenant = cloud.register_tenant("hospital")
        tag = cloud.manager.create_tag(tenant, "medical")
        assert tag.namespace == "hospital"
        assert cloud.registry.owner_of(tag) == "hospital"

    def test_instance_setup_in_own_namespace(self):
        cloud = PaaSCloud("c")
        host = cloud.add_machine("h")
        tenant = cloud.register_tenant("hospital")
        tag = cloud.manager.create_tag(tenant, "medical")
        process = cloud.manager.setup_instance(
            host, tenant, "analyser", SecurityContext.of([tag], [])
        )
        assert process.security.secrecy.tags == frozenset({tag})
        assert tenant.instances == [("h", process.pid)]

    def test_tenant_cannot_use_anothers_tags(self):
        cloud = PaaSCloud("c")
        host = cloud.add_machine("h")
        hospital = cloud.register_tenant("hospital")
        rival = cloud.register_tenant("rival")
        tag = cloud.manager.create_tag(hospital, "medical")
        with pytest.raises(AuthorityError):
            cloud.manager.setup_instance(
                host, rival, "thief", SecurityContext.of([tag], [])
            )

    def test_local_tags_usable_by_anyone(self):
        cloud = PaaSCloud("c")
        host = cloud.add_machine("h")
        tenant = cloud.register_tenant("t")
        cloud.manager.setup_instance(
            host, tenant, "app", SecurityContext.of(["scratch"], [])
        )

    def test_cloud_audit_collection(self):
        cloud = PaaSCloud("c")
        host = cloud.add_machine("h")
        tenant = cloud.register_tenant("t")
        process = cloud.manager.setup_instance(
            host, tenant, "app", SecurityContext.of(["s"], [])
        )
        from repro.cloud import ObjectKind

        host.kernel.create_object(process.pid, ObjectKind.FILE, "f")
        collector = cloud.collect_audit()
        assert len(collector.merged()) >= 1
        assert collector.rejected_domains == set()

    def test_total_syscalls_aggregates(self):
        cloud = PaaSCloud("c")
        h1 = cloud.add_machine("h1")
        h2 = cloud.add_machine("h2")
        t = cloud.register_tenant("t")
        p1 = cloud.manager.setup_instance(h1, t, "a", SecurityContext.public())
        p2 = cloud.manager.setup_instance(h2, t, "b", SecurityContext.public())
        from repro.cloud import ObjectKind

        h1.kernel.create_object(p1.pid, ObjectKind.FILE, "f1")
        h2.kernel.create_object(p2.pid, ObjectKind.FILE, "f2")
        assert cloud.total_syscalls() == 2
