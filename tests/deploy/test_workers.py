"""``with_workers(n)``: pool wiring, shared planes, threaded runs."""

import pytest

from repro.deploy import Deployment, DeploymentSpec, NodeSpec
from repro.errors import DiscoveryError
from repro.ifc import SecurityContext
from repro.middleware.component import Component, EndpointKind
from repro.middleware.message import MessageType

READING = MessageType.simple("reading", value=float)


def _rig_worker(worker, n_msgs=20):
    """Give a worker its own source→sink pair and a publishing workload."""
    source = Component(f"src-{worker.name}", SecurityContext.public(), owner="op")
    source.add_endpoint("out", EndpointKind.SOURCE, READING)
    sink = Component(f"dst-{worker.name}", SecurityContext.public(), owner="op")
    sink.add_endpoint("in", EndpointKind.SINK, READING)
    worker.bus.register(source)
    worker.bus.register(sink)
    worker.bus.connect("op", source, "out", sink, "in")

    def workload(ctx, me, source=source):
        for n in range(n_msgs):
            me.bus.publish(source, "out", value=float(n))
            ctx.count()

    worker.workload = workload
    return sink


class TestWorkerWiring:
    def test_pool_shares_shard_and_spine(self):
        deploy = Deployment(seed=1)
        node = deploy.node("edge").with_workers(3)
        pool = node.workers
        machine = node.machine
        assert len(pool) == 3
        for worker in pool:
            # One memoized decision cache and one tamper-evident chain
            # for the whole node, however many workers run on it.
            assert worker.bus.plane.cache is machine.shard.context_cache
            assert worker.bus.audit.spine is machine.audit

    def test_each_worker_binds_own_spine_source(self):
        deploy = Deployment(seed=1)
        pool = deploy.node("edge").with_workers(4).workers
        assert [w.bus.audit.source for w in pool] == [
            "bus.w0", "bus.w1", "bus.w2", "bus.w3"
        ]
        assert [w.name for w in pool] == [f"edge/w{i}" for i in range(4)]

    def test_workers_imply_machine(self):
        spec = NodeSpec(name="edge", machine=False, substrate=False, workers=2)
        assert spec.machine is True
        deploy = Deployment.from_spec(
            DeploymentSpec(nodes=[NodeSpec(name="edge", workers=2)])
        )
        assert len(deploy.nodes()[0].workers) == 2

    def test_workerless_node_raises(self):
        deploy = Deployment(seed=1)
        node = deploy.node("plain")
        with pytest.raises(DiscoveryError):
            node.workers

    def test_negative_workers_rejected(self):
        deploy = Deployment(seed=1)
        with pytest.raises(ValueError):
            deploy.node("edge").with_workers(-1)
        with pytest.raises(ValueError):
            NodeSpec(name="edge", workers=-2)


class TestThreadedRun:
    def test_run_threads_executes_workloads(self):
        deploy = Deployment(seed=2)
        node = deploy.node("edge").with_workers(4)
        sinks = [_rig_worker(w) for w in node.workers]
        deploy.run(seconds=5, concurrency="threads")

        for sink in sinks:
            assert [m.values["value"] for m in sink.inbox] == [
                float(n) for n in range(20)
            ]
        # The shared spine holds every worker's audit, chains intact.
        assert node.machine.audit.verify()
        heads = node.machine.audit.segment_heads()
        for i in range(4):
            position, __ = heads[f"bus.w{i}"]
            assert position >= 20

    def test_stats_rollup_reports_workers(self):
        deploy = Deployment(seed=3)
        node = deploy.node("edge").with_workers(2)
        for worker in node.workers:
            _rig_worker(worker, n_msgs=10)
        deploy.run(concurrency="threads")
        rollup = deploy.stats()

        workers = rollup["workers"]
        assert workers["count"] == 2
        assert workers["ops"] == 20
        per_node = workers["per_node"]["edge"]
        assert per_node["delivered"] == 20
        assert {row["source"] for row in per_node["per_worker"]} == {
            "bus.w0", "bus.w1"
        }
        assert "lock_waits" in rollup["decisions"]
        assert "ring_overflows" in rollup["audit"]

    def test_run_threads_without_workers_is_plain_run(self):
        deploy = Deployment(seed=4)
        deploy.node("plain")
        assert deploy.run_workers() == []
        deploy.run(seconds=1, concurrency="threads")

    def test_bad_concurrency_value_rejected(self):
        deploy = Deployment(seed=5)
        with pytest.raises(ValueError):
            deploy.run(concurrency="processes")

    def test_worker_exception_propagates(self):
        deploy = Deployment(seed=6)
        node = deploy.node("edge").with_workers(1)

        def boom(ctx, worker):
            raise RuntimeError("worker crashed")

        node.workers[0].workload = boom
        with pytest.raises(RuntimeError, match="worker crashed"):
            deploy.run(concurrency="threads")
