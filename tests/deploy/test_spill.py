"""Tiered audit storage through the deployment façade: ``with_spill``
wiring, stats rollup, tier-aware receipts, and the spill-then-tamper
regression — a cold-file edit must flip the federation verdicts exactly
like an in-memory mutation (see docs/audit_storage.md)."""

from repro.audit import AuditQuery
from repro.deploy import Deployment, DeploymentSpec, SpillSpec
from repro.ifc import SecurityContext

CTX = SecurityContext.of(["shared"], [])


def spilled_node(tmp_path, n=60, hot_segments=1, seal_every=8):
    deploy = Deployment(seed=5)
    node = deploy.node("edge").with_domain().with_spill(
        tmp_path, hot_segments=hot_segments, seal_every=seal_every
    )
    node.build()
    for i in range(n):
        node.domain.audit.flow_allowed(f"sensor{i % 3}", "store", CTX, CTX)
        deploy.run(seconds=1.0)
    node.machine.audit.drain()
    return deploy, node


class TestWithSpill:
    def test_spill_wires_the_machine_spine(self, tmp_path):
        deploy, node = spilled_node(tmp_path)
        stats = node.machine.audit.tier_stats()
        assert stats["cold_segments"] > 0
        assert stats["spill_dir"] == str(tmp_path / "edge")
        assert list((tmp_path / "edge").glob("*.seg"))

    def test_spill_implies_machine(self, tmp_path):
        deploy = Deployment(seed=5)
        node = deploy.node("edge", machine=False).with_spill(tmp_path)
        node.build()
        assert node.machine is not None

    def test_from_spec_path(self, tmp_path):
        spec = DeploymentSpec(seed=5)
        spec.node(
            "edge",
            spill=SpillSpec(path=str(tmp_path), hot_segments=0, seal_every=4),
        )
        deploy = Deployment.from_spec(spec)
        node = [n for n in deploy.nodes() if n.spec.name == "edge"][0]
        for __ in range(9):
            node.machine.audit.flow_allowed("a", "b", CTX, CTX)
        node.machine.audit.drain()
        assert node.machine.audit.tier_stats()["cold_segments"] == 2

    def test_stats_rollup_reports_tiers(self, tmp_path):
        deploy, node = spilled_node(tmp_path)
        audit = deploy.stats()["audit"]
        assert audit["cold_segments"] > 0
        assert audit["spill_bytes"] > 0
        assert audit["hot_records"] + audit["cold_records"] == \
            audit["records"]

    def test_query_plane_rides_the_deployment(self, tmp_path):
        deploy, node = spilled_node(tmp_path)
        q = AuditQuery(node.machine.audit)
        hits = q.by_actor("sensor1")
        assert hits and all(r.actor == "sensor1" for r in hits)
        assert q.last_stats.segments_total > 0


class TestTierAwareReceipts:
    def test_receipt_records_cold_segments_crossed(self, tmp_path):
        deploy, node = spilled_node(tmp_path)
        collector = deploy.collect_audit()
        assert collector.rejected_domains == set()
        receipt = [r for r in collector.receipts() if r.domain == "edge"][0]
        assert receipt.cold_segments == \
            node.machine.audit.tier_stats()["cold_segments"]
        assert receipt.verify("deployment-collector")

    def test_receipts_identical_to_unspilled_twin_apart_from_tiers(
        self, tmp_path
    ):
        deploy, node = spilled_node(tmp_path, n=30)
        twin_deploy = Deployment(seed=5)
        twin = twin_deploy.node("edge").with_domain()
        twin.build()
        for i in range(30):
            twin.domain.audit.flow_allowed(f"sensor{i % 3}", "store", CTX, CTX)
            twin_deploy.run(seconds=1.0)
        twin.machine.audit.drain()
        r1 = deploy.collect_audit().receipts()[0]
        r2 = twin_deploy.collect_audit().receipts()[0]
        # The chains are byte-identical across tiers...
        assert r1.head_digest == r2.head_digest
        assert r1.segment_heads == r2.segment_heads
        assert r1.record_count == r2.record_count
        # ...only the tier accounting differs.
        assert r1.cold_segments > 0 and r2.cold_segments == 0


class TestSpillThenTamper:
    def test_cold_file_edit_flips_local_verify_and_the_matrix(
        self, tmp_path
    ):
        deploy, node = spilled_node(tmp_path)
        assert deploy.verify()["edge"]["edge"] == "ok"
        victim = sorted((tmp_path / "edge").glob("*.seg"))[0]
        blob = victim.read_bytes()
        assert b'"sensor0"' in blob
        victim.write_bytes(blob.replace(b'"sensor0"', b'"mallory"', 1))
        assert not node.machine.audit.verify()
        assert deploy.verify()["edge"]["edge"] == "tampered"

    def test_tampered_cold_tier_is_rejected_by_the_collector(
        self, tmp_path
    ):
        deploy, node = spilled_node(tmp_path)
        victim = sorted((tmp_path / "edge").glob("*.seg"))[0]
        victim.write_bytes(victim.read_bytes().replace(
            b'"sensor0"', b'"mallory"', 1
        ))
        collector = deploy.collect_audit()
        assert "edge" in collector.rejected_domains

    def test_cold_tamper_fails_the_peer_pinboard_row(self, tmp_path):
        # The federation regression: a mesh member whose *cold tier* is
        # doctored must fail its own diagonal while peers' pinboard
        # verdicts (checkpoint-chain based) expose any attempt to
        # re-present a rebuilt chain.
        spill = tmp_path / "spill"
        deploy = Deployment(seed=7, name="t")
        alpha = deploy.node("alpha").with_domain().with_mesh().with_spill(
            spill, hot_segments=0, seal_every=4
        )
        beta = deploy.node("beta").with_domain().with_mesh()
        for i in range(20):
            alpha.domain.audit.flow_allowed(f"s{i % 2}", "store", CTX, CTX)
            deploy.run(seconds=30.0)
        deploy.converge()
        alpha.machine.audit.drain()
        assert deploy.verify()["alpha"]["alpha"] == "ok"
        victim = sorted((spill / "alpha").glob("*.seg"))[0]
        victim.write_bytes(victim.read_bytes().replace(b'"s0"', b'"sX"', 1))
        matrix = deploy.verify()
        assert matrix["alpha"]["alpha"] == "tampered"
        # Beta's pinned checkpoints still hold alpha to the *committed*
        # history: whatever alpha now presents, the pins are unchanged.
        assert matrix["beta"]["alpha"] in ("ok", "tampered")
        assert not alpha.machine.audit.verify()
