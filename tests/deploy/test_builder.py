"""The deployment façade: wiring defaults, verdict matrix, rollups."""

import pytest

from repro.audit import AuditLog, AuditSink, AuditSpine, SpineEmitter
from repro.deploy import Deployment, DeploymentSpec, NodeSpec
from repro.errors import DiscoveryError
from repro.ifc import SecurityContext
from repro.iot import IoTWorld
from repro.middleware import Message, MessageType

MT = MessageType.simple("deploy-test", value=float)
CTX = SecurityContext.of(["shared"], [])


def two_node_mesh(seed=3, retain_every=None):
    deploy = Deployment(seed=seed, name="t")
    alpha = deploy.node("alpha").with_domain().with_mesh()
    beta = deploy.node("beta").with_domain().with_mesh().with_pinboard(
        retain_every=retain_every
    )
    return deploy, alpha, beta


class TestAuditSinkProtocol:
    def test_every_audit_writer_satisfies_the_sink_protocol(self):
        spine = AuditSpine()
        assert isinstance(AuditLog(), AuditSink)
        assert isinstance(spine, AuditSink)
        assert isinstance(spine.emitter("bus"), AuditSink)

    def test_emitter_exposes_spine_identity(self):
        spine = AuditSpine(name="audit@host")
        assert spine.emitter("bus").name == "audit@host"


class TestNodeWiring:
    def test_node_builds_machine_substrate_and_spine_backed_domain(self):
        deploy = Deployment(seed=1)
        node = deploy.node("n1").with_domain()
        assert node.machine.hostname == "n1"
        assert node.substrate.machine is node.machine
        # The domain's whole stack writes into the machine spine.
        assert isinstance(node.domain.audit, SpineEmitter)
        assert node.domain.audit.spine is node.machine.audit
        assert node.domain.bus.audit.spine is node.machine.audit

    def test_shared_clock_reaches_the_spine(self):
        deploy = Deployment(seed=1)
        node = deploy.node("n1").with_domain()
        deploy.run(seconds=30.0)
        node.domain.audit.flow_allowed("a", "b", CTX, CTX)
        assert node.machine.audit.records()[-1].timestamp == 30.0

    def test_detached_domain_keeps_the_old_audit_log_shim(self):
        deploy = Deployment(seed=1)
        node = deploy.node("n1").with_domain(spine_backed=False)
        assert isinstance(node.domain.audit, AuditLog)
        assert node.domain.audit is not node.machine.audit

    def test_bus_only_domain_helper(self):
        deploy = Deployment(seed=1)
        domain = deploy.domain("hospital")
        assert isinstance(domain.audit, AuditLog)
        assert deploy.domain("hospital") is domain  # get-or-create
        assert "hospital" in deploy.world.domains

    def test_hostname_override(self):
        deploy = Deployment(seed=1)
        node = deploy.node("city", hostname="city-hq").with_domain("city")
        assert node.machine.hostname == "city-hq"
        assert deploy.world.domains["city"] is node.domain

    def test_configuring_a_built_node_is_an_error(self):
        deploy = Deployment(seed=1)
        node = deploy.node("n1")
        node.build()
        with pytest.raises(RuntimeError):
            node.with_mesh()

    def test_missing_planes_raise_helpfully(self):
        deploy = Deployment(seed=1)
        node = deploy.node("n1")
        with pytest.raises(DiscoveryError):
            node.domain
        with pytest.raises(DiscoveryError):
            node.pinboard

    def test_node_overrides_conflict_is_an_error(self):
        deploy = Deployment(seed=1)
        deploy.node("n1")
        with pytest.raises(ValueError):
            deploy.node("n1", hostname="other")

    def test_explicit_machine_off_is_bus_only(self):
        deploy = Deployment(seed=1)
        node = deploy.node("relay", machine=False)
        assert node.machine is None and node.substrate is None
        assert node.domain.name == "relay"  # a spec must build something

    def test_verify_diagonal_covers_both_chains_under_one_name(self):
        # hostname and detached-domain name collide ('x'): the diagonal
        # must fail if EITHER chain fails.
        deploy = Deployment(seed=1)
        node = deploy.node("x").with_domain(spine_backed=False)
        node.machine.audit.flow_allowed("a", "b", CTX, CTX)
        node.machine.audit.drain()
        record = node.machine.audit.records()[0]
        object.__setattr__(record, "actor", "evil")
        assert not node.machine.audit.verify()
        assert node.domain.audit.verify()
        assert deploy.verify()["x"]["x"] == "tampered"

    def test_bare_directory_read_is_adopted_by_first_discovery_node(self):
        # Reading deploy.directory() early must not brick later
        # with_discovery() builds: the first serving node adopts the
        # directory and late-binds its audit spine.
        deploy = Deployment(seed=1)
        directory = deploy.directory()  # unserved, unaudited
        assert directory.audit is None
        node = deploy.node("server").with_mesh().with_discovery()
        node.build()
        assert deploy.directory() is directory
        assert directory.audit is not None
        assert directory.audit.spine is node.machine.audit
        # A second server is still rejected.
        with pytest.raises(ValueError):
            deploy.node("other").with_discovery().build()

    def test_directory_is_single_through_reentrant_build(self):
        deploy = Deployment(seed=1)
        node = deploy.node("y").with_mesh().with_discovery()
        directory = deploy.directory(node)  # triggers build, which serves it
        assert deploy.directory() is directory
        assert deploy.directory(node) is directory

    def test_tick_drain_off_gives_timestamp_only_machines(self):
        # The bench knob: no clock-tick drain hooks, but timestamps
        # still come from the simulated clock.
        deploy = Deployment(seed=1, tick_drain=False)
        node = deploy.node("n1").with_domain()
        deploy.run(seconds=10.0)
        node.domain.audit.flow_allowed("a", "b", CTX, CTX)
        assert node.machine.audit.records()[-1].timestamp == 10.0
        assert node.machine._tick_source is None

    def test_domain_mode_conflict_raises(self):
        from repro.accesscontrol import EnforcementMode

        deploy = Deployment(seed=1)
        deploy.domain("city", mode=EnforcementMode.AC_AND_IFC)
        with pytest.raises(ValueError):
            deploy.domain("city", mode=EnforcementMode.AC_ONLY)
        # Re-requesting without a mode (or the same mode) is fine.
        assert deploy.domain("city") is deploy.world.domains["city"]

    def test_second_directory_server_raises(self):
        deploy = Deployment(seed=1)
        first = deploy.node("a").with_discovery()
        first.build()
        second = deploy.node("b").with_discovery()
        with pytest.raises(ValueError):
            second.build()
        # The first server keeps the directory.
        assert deploy.directory() is deploy.directory(first)

    def test_wrapping_an_existing_world(self):
        world = IoTWorld(seed=9)
        deploy = Deployment.of(world)
        assert deploy.world is world
        assert Deployment.of(deploy) is deploy


class TestFederatedDeployment:
    def test_mesh_members_converge_and_mask(self):
        deploy, alpha, beta = two_node_mesh()
        sender = alpha.launch("sender", CTX, handler=lambda a, m: None)
        got = []
        beta.launch("sink", CTX, handler=lambda a, m: got.append(m))
        deploy.converge()
        alpha.substrate.send(
            sender, beta.substrate, "sink",
            Message(MT, {"value": 1.0}, context=CTX),
        )
        deploy.run(seconds=5)
        assert len(got) == 1
        assert alpha.substrate.stats.sent_masked == 1
        assert alpha.substrate.stats.sent_tagset == 0
        assert deploy.network.stats.handshake_sent == 0

    def test_verify_matrix_peers_plus_diagonal(self):
        deploy, alpha, beta = two_node_mesh()
        deploy.converge()
        matrix = deploy.verify()
        assert matrix["alpha"]["beta"] == "ok"
        assert matrix["beta"]["alpha"] == "ok"
        assert matrix["alpha"]["alpha"] == "ok"  # local chain verdict

    def test_verify_catches_a_censored_replay_from_the_peer_row(self):
        from repro.apps import censored_replay

        deploy, alpha, beta = two_node_mesh()
        sender = alpha.launch("sender", CTX, handler=lambda a, m: None)
        beta.launch("sink", CTX, handler=lambda a, m: None)
        deploy.converge()
        for __ in range(4):
            alpha.substrate.send(
                sender, beta.substrate, "sink",
                Message(MT, {"value": 2.0}, context=CTX),
            )
            deploy.run(seconds=120)
        forged = censored_replay(alpha.mesh_node.spine)
        assert forged.verify()
        alpha.mesh_node.spine = forged
        matrix = deploy.verify()
        assert matrix["beta"]["alpha"] == "tampered"
        assert matrix["alpha"]["alpha"] == "ok"  # the diagonal is fooled

    def test_pinboard_retention_passthrough(self):
        deploy, alpha, beta = two_node_mesh(retain_every=3)
        assert beta.pinboard.retain_every == 3
        assert alpha.pinboard.retain_every is None

    def test_stats_rolls_up_every_plane(self):
        deploy, alpha, beta = two_node_mesh()
        deploy.converge()
        rollup = deploy.stats()
        assert rollup["federation"]["members"] == 2
        assert rollup["federation"]["converged"] is True
        assert rollup["federation"]["pins"] >= 2
        assert rollup["audit"]["records"] == sum(
            len(s) for s in deploy.spines().values()
        )
        assert set(rollup) == {
            "flows", "substrate", "decisions", "audit", "federation",
            "network", "transport", "workers", "verify", "analysis",
        }
        # No with_workers() in this deployment: the rollup says so.
        assert rollup["workers"] == {"count": 0, "ops": 0, "throughput": 0.0}

    def test_collect_audit_covers_spines_and_detached_domains(self):
        deploy, alpha, beta = two_node_mesh()
        deploy.domain("standalone").audit.flow_allowed("a", "b", CTX, CTX)
        deploy.converge()
        collector = deploy.collect_audit()
        assert collector.rejected_domains == set()
        domains = {d for d, __ in collector.merged()}
        assert {"alpha", "beta", "standalone"} <= domains

    def test_attested_nodes_share_a_deployment_verifier(self):
        deploy = Deployment(seed=2)
        # Build order must not matter: n1 exists before anyone is attested.
        n1 = deploy.node("n1").with_domain()
        n1.build()
        n2 = deploy.node("n2").with_substrate(attested=True)
        sender = n2.launch("s", CTX, handler=lambda a, m: None)
        n1.launch("r", CTX, handler=lambda a, m: None)
        ok = n2.substrate.send(
            sender, n1.substrate, "r", Message(MT, {"value": 0.0}, context=CTX)
        )
        assert ok
        assert n2.substrate.stats.attestation_failures == 0


class TestDeclarativeSpec:
    def test_from_spec_builds_the_same_deployment(self):
        spec = DeploymentSpec(name="declared", seed=3)
        spec.node("alpha", domain="alpha", mesh=True)
        spec.node("beta", domain="beta", mesh=True, pinboard_retain_every=2)
        deploy = Deployment.from_spec(spec)
        assert {n.spec.name for n in deploy.nodes()} == {"alpha", "beta"}
        assert deploy.node("beta").pinboard.retain_every == 2
        assert deploy.converge() >= 1
        assert deploy.mesh.converged()

    def test_nodespec_normalisation(self):
        spec = NodeSpec("n", pinboard_retain_every=4)
        assert spec.mesh and spec.substrate and spec.machine
        assert spec.hostname == "n"
        bus_only = NodeSpec("d", machine=False)
        assert not bus_only.machine and not bus_only.substrate
        assert bus_only.domain == "d"
        # ...but an explicit mesh request implies the full machine stack.
        meshy = NodeSpec("m", machine=False, mesh=True)
        assert meshy.machine and meshy.substrate

    def test_duplicate_spec_name_rejected(self):
        deploy = Deployment(seed=1)
        deploy.apply(NodeSpec("n1"))
        with pytest.raises(ValueError):
            deploy.apply(NodeSpec("n1"))
