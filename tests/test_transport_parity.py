"""Property: coalescing is invisible except for delivery timing.

For any scripted send sequence under random flight windows, batch caps,
loss probabilities and partitions, the coalesced transport must produce
record-for-record the same outcome as the per-datagram path: identical
per-``(source, destination, kind)`` delivery sequences and identical
network counters (the loss RNG rolls at send time in send order, so the
two arms consume the same random sequence).  Only ``delivered_at`` may
differ — by at most the window, never early (asserted in
``tests/test_transport.py``).

Delivery-time state (hosts going offline) is deliberately outside the
property: shifting a delivery by up to the window across an offline
transition legitimately changes its fate, which is the documented
semantic boundary (``docs/transport_plane.md``), covered by the
deterministic edge tests instead.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network
from repro.sim import Simulator

HOSTS = ("h0", "h1", "h2")

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("send"),
            st.integers(0, 2),
            st.integers(0, 2),
            st.sampled_from(["data", "gossip"]),
            st.integers(0, 50),
        ),
        # Centiseconds: quantized so both arms replay identical floats.
        st.tuples(st.just("advance"), st.integers(0, 60)),
        st.tuples(st.just("partition")),
        st.tuples(st.just("heal")),
    ),
    min_size=1,
    max_size=40,
)


def _run(script, window_cs, max_batch, loss, seed, coalesce):
    sim = Simulator(seed=seed)
    net = Network(sim, default_latency=0.25)
    inbox = {}

    def receiver(datagram):
        key = (datagram.source, datagram.destination, datagram.kind)
        inbox.setdefault(key, []).append(datagram.payload)

    for host in HOSTS:
        net.add_host(host, receiver=receiver)
    for a in HOSTS:
        for b in HOSTS:
            if a != b:
                net.link(a, b, loss_probability=loss, symmetric=False)
    if coalesce:
        net.configure_transport(window_cs / 100.0, max_batch)

    payload = 0
    for op in script:
        if op[0] == "send":
            _, src, dst, kind, size = op
            if src == dst:
                continue
            net.send(HOSTS[src], HOSTS[dst], payload, kind=kind, size=size)
            payload += 1
        elif op[0] == "advance":
            sim.run_for(op[1] / 100.0)
        elif op[0] == "partition":
            net.partition({"h0"}, {"h1"})
        else:
            net.heal_partitions()
    sim.run_for(10.0)

    stats = net.stats
    return inbox, (
        stats.sent,
        stats.delivered,
        stats.dropped,
        stats.blocked_partition,
        stats.gossip_sent,
        dict(stats.bytes_by_kind),
        dict(stats.bytes_delivered_by_kind),
    )


@given(
    script=ops,
    window_cs=st.integers(0, 30),
    max_batch=st.integers(1, 8),
    loss=st.sampled_from([0.0, 0.3, 0.6]),
    seed=st.integers(0, 999),
)
@settings(max_examples=60, deadline=None)
def test_coalesced_delivery_is_record_identical(
    script, window_cs, max_batch, loss, seed
):
    plain_inbox, plain_stats = _run(
        script, window_cs, max_batch, loss, seed, coalesce=False
    )
    coalesced_inbox, coalesced_stats = _run(
        script, window_cs, max_batch, loss, seed, coalesce=True
    )
    assert coalesced_inbox == plain_inbox
    assert coalesced_stats == plain_stats
