"""System-level property tests: enforcement invariants under random use.

The invariant behind all of the paper's claims: *no matter how
components are wired, reconfigured or driven, a delivered message's
context always satisfies the flow rule against its receiver* — and the
audit log stays verifiable throughout.  Hypothesis generates random
component populations, wiring attempts and publishes; the invariants
must hold on every interleaving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import AuditLog, RecordKind
from repro.errors import ReproError
from repro.ifc import Label, SecurityContext, can_flow
from repro.middleware import (
    CommandKind,
    Component,
    ControlMessage,
    EndpointKind,
    MessageBus,
    MessageType,
    Reconfigurator,
)

READING = MessageType.simple("reading", value=float)
TAGS = ["t0", "t1", "t2"]

labels = st.builds(
    lambda names: Label.of(*names),
    st.frozensets(st.sampled_from(TAGS), max_size=3),
)
contexts = st.builds(SecurityContext, labels, labels)

#: A random action: wire two components, publish from one, or reconfigure.
actions = st.lists(
    st.one_of(
        st.tuples(st.just("connect"), st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.just("publish"), st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.just("unmap"), st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.just("isolate"), st.integers(0, 4), st.integers(0, 4)),
    ),
    max_size=25,
)


def build_population(ctxs):
    audit = AuditLog()
    bus = MessageBus(audit=audit)
    rc = Reconfigurator(bus)
    components = []
    deliveries = []
    for i, ctx in enumerate(ctxs):
        component = Component(f"c{i}", ctx, owner="op")
        component.add_endpoint("out", EndpointKind.SOURCE, READING)
        component.add_endpoint(
            "in", EndpointKind.SINK, READING,
            handler=(lambda comp: lambda c, e, m: deliveries.append((m, comp)))(
                component
            ),
        )
        component.allow_controller("pe")
        bus.register(component)
        components.append(component)
    return audit, bus, rc, components, deliveries


@settings(max_examples=60, deadline=None)
@given(st.lists(contexts, min_size=5, max_size=5), actions)
def test_delivered_messages_always_satisfy_flow_rule(ctxs, script):
    audit, bus, rc, components, deliveries = build_population(ctxs)
    for action, a, b in script:
        src, dst = components[a], components[b]
        try:
            if action == "connect" and a != b:
                bus.connect("op", src, "out", dst, "in")
            elif action == "publish":
                bus.publish(src, "out", value=1.0)
            elif action == "unmap":
                rc.apply(ControlMessage("pe", src.name, CommandKind.UNMAP,
                                        {"sink": dst.name}))
            elif action == "isolate":
                rc.apply(ControlMessage("pe", src.name, CommandKind.ISOLATE))
        except ReproError:
            pass  # refusals are expected; the invariant is about deliveries

    # THE invariant: every delivery satisfied the flow rule at its moment
    # (contexts here never change mid-run, so we can check post hoc).
    for message, receiver in deliveries:
        assert can_flow(message.context, receiver.context)

    # And the audit chain survived whatever happened.
    assert audit.verify()
    # Every delivery has a corresponding FLOW_ALLOWED record.
    allowed = [r for r in audit if r.kind == RecordKind.FLOW_ALLOWED]
    assert len(allowed) >= len(deliveries)


@settings(max_examples=40, deadline=None)
@given(st.lists(contexts, min_size=3, max_size=3))
def test_wiring_succeeds_exactly_when_flow_rule_allows(ctxs):
    audit, bus, rc, components, deliveries = build_population(ctxs)
    for i, src in enumerate(components):
        for j, dst in enumerate(components):
            if i == j:
                continue
            legal = can_flow(src.context, dst.context)
            try:
                bus.connect("op", src, "out", dst, "in")
                wired = True
            except ReproError:
                wired = False
            assert wired == legal


@settings(max_examples=40, deadline=None)
@given(st.lists(contexts, min_size=4, max_size=4), st.data())
def test_denials_always_leave_evidence(ctxs, data):
    """Every refused wiring leaves a FLOW_DENIED record (Concern 3)."""
    audit, bus, rc, components, deliveries = build_population(ctxs)
    pairs = [
        (a, b)
        for a in components
        for b in components
        if a is not b and not can_flow(a.context, b.context)
    ]
    if not pairs:
        return
    src, dst = data.draw(st.sampled_from(pairs))
    try:
        bus.connect("op", src, "out", dst, "in")
    except ReproError:
        pass
    denials = audit.denials()
    assert any(r.actor == src.name and r.subject == dst.name for r in denials)
