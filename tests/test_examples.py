"""Examples must not rot: smoke-run every example end-to-end.

Each ``examples/*.py`` is loaded as a module and its ``main()`` is
executed (all seven examples — not just a subset — so API drift in any
plane shows up here first); the federation example additionally asserts
the tamper-detection story the deployment façade's ``verify()`` matrix
hangs on.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load(path: Path):
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_all_seven_examples_present():
    assert len(EXAMPLES) == 7, [p.stem for p in EXAMPLES]


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_end_to_end(path, capsys):
    module = load(path)
    assert callable(getattr(module, "main", None)), "examples expose main()"
    module.main()
    # Every example narrates what it demonstrates; silence means broken.
    out = capsys.readouterr().out
    assert out.strip()
    if path.stem == "federated_city":
        # The acceptance story: convergence plus the censored-replay
        # forgery caught by every peer's pinboard row.
        assert "vocabulary converged (every pair masking): True" in out
        assert out.count("tampered") == 3


def test_examples_use_the_deploy_facade_not_hand_wiring():
    """The acceptance grep: no direct Machine/MessagingSubstrate/
    GossipMesh construction outside repro/deploy (quickstart and
    service_composition teach the bus-level primitives, which is why the
    grep targets the machine-level planes)."""
    banned = ("Machine(", "MessagingSubstrate(", "GossipMesh(")
    for path in EXAMPLES:
        text = path.read_text()
        for token in banned:
            assert token not in text, f"{path.name} hand-wires {token}"
    apps = Path(__file__).parent.parent / "src" / "repro" / "apps"
    for path in sorted(apps.glob("*.py")):
        text = path.read_text()
        for token in banned:
            assert token not in text, f"apps/{path.name} hand-wires {token}"
