"""Examples must not rot: import every example, smoke-run the federated one.

Each ``examples/*.py`` is loaded as a module (guarded mains don't run),
which catches import-time breakage against the current API; the
federation example's ``main()`` is executed end-to-end since it asserts
the tamper-detection story this PR's acceptance hangs on.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load(path: Path):
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    module = load(path)
    assert callable(getattr(module, "main", None)), "examples expose main()"


def test_federated_city_example_runs(capsys):
    module = load(Path(__file__).parent.parent / "examples" / "federated_city.py")
    module.main()
    out = capsys.readouterr().out
    assert "vocabulary converged (every pair masking): True" in out
    assert out.count("tampered") == 3  # every peer catches the forgery
