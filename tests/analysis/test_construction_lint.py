"""Construction discipline: only ``repro/analysis`` builds FlowGraphs.

Same technique as the deploy façade's hand-wiring grep
(``tests/test_examples.py`` pattern): scan the source tree for direct
``FlowGraph(...)`` construction outside the analysis plane.  Everything
else must come through :func:`repro.analysis.compile` or
``Deployment.analysis_graph()`` so graphs always reflect compiled
policy, never hand-assembled approximations of it.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent.parent / "src"
ANALYSIS = SRC / "repro" / "analysis"

CONSTRUCTION = re.compile(r"\bFlowGraph\s*\(")


def test_flowgraph_is_only_constructed_inside_the_analysis_plane():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if ANALYSIS in path.parents:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if CONSTRUCTION.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "FlowGraph constructed outside repro/analysis "
        "(use repro.analysis.compile):\n" + "\n".join(offenders)
    )


def test_the_lint_actually_bites():
    matched = CONSTRUCTION.search("graph = FlowGraph(nodes, edges)")
    assert matched
    assert not CONSTRUCTION.search("isinstance(g, FlowGraph)")
