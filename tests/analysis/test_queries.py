"""FlowQuery: BFS/DFS reachability, paths, chains, and work accounting."""

from repro.analysis import (
    VIA_FLOW_RULE,
    FlowEdge,
    FlowGraph,
    FlowNode,
    FlowQuery,
    NodeKind,
    analyse_creep,
)


def chain_graph():
    """a -> b -> c with a detour a -> d (d is a dead end)."""
    nodes = [
        FlowNode(f"component:{n}", NodeKind.COMPONENT) for n in "abcd"
    ]
    edges = [
        FlowEdge("component:a", "component:b", VIA_FLOW_RULE),
        FlowEdge("component:b", "component:c", VIA_FLOW_RULE),
        FlowEdge("component:a", "component:d", VIA_FLOW_RULE),
    ]
    return FlowGraph(nodes=nodes, edges=edges)


class TestReachability:
    def test_can_flow_transitive_and_directional(self):
        query = FlowQuery(chain_graph())
        assert query.can_flow("a", "c")
        assert not query.can_flow("c", "a")
        assert not query.can_flow("d", "b")

    def test_reachable_set(self):
        query = FlowQuery(chain_graph())
        assert query.reachable_set("a") == {
            "component:b", "component:c", "component:d"
        }
        assert query.reachable_set("c") == set()

    def test_queries_ignore_structural_edges(self):
        graph = chain_graph()
        graph.add_node(FlowNode("member:m", NodeKind.MEMBER))
        graph.add_edge(
            FlowEdge("member:m", "component:a", "runs", flow=False)
        )
        assert not FlowQuery(graph).can_flow("member:m", "component:c")


class TestPaths:
    def test_shortest_path_returns_edge_sequence(self):
        query = FlowQuery(chain_graph())
        path = query.shortest_path("a", "c")
        assert [(e.src, e.dst) for e in path] == [
            ("component:a", "component:b"),
            ("component:b", "component:c"),
        ]
        assert query.shortest_path("c", "a") is None

    def test_all_paths_enumerates_simple_paths(self):
        graph = chain_graph()
        graph.add_edge(FlowEdge("component:d", "component:c", VIA_FLOW_RULE))
        query = FlowQuery(graph)
        paths = query.all_paths("a", "c")
        assert len(paths) == 2
        assert {len(p) for p in paths} == {2}

    def test_all_paths_respects_max_hops(self):
        query = FlowQuery(chain_graph())
        assert query.all_paths("a", "c", max_hops=1) == []
        assert len(query.all_paths("a", "c", max_hops=2)) == 1


class TestDeclassifierChains(object):
    def test_chains_name_the_gateways_crossed(self, hospital):
        graph = hospital.analysis_graph()
        query = FlowQuery(graph)
        chains = query.declassifier_chains("ward-sensor", "public-dashboard")
        assert chains == [["anonymiser"]]

    def test_pure_flow_rule_paths_yield_no_chains(self):
        query = FlowQuery(chain_graph())
        assert query.declassifier_chains("a", "c") == []


class TestAccounting:
    def test_last_stats_reflects_the_query(self):
        query = FlowQuery(chain_graph())
        query.can_flow("a", "c")
        stats = query.last_stats
        assert stats.query == "can_flow"
        assert stats.nodes_visited > 0
        assert stats.edges_walked > 0
        assert stats.paths_found == 1
        assert stats.wall_s >= 0.0

    def test_totals_and_calls_accumulate(self):
        query = FlowQuery(chain_graph())
        query.can_flow("a", "b")
        query.reachable_set("a")
        query.shortest_path("a", "c")
        assert query.calls == 3
        assert query.totals.edges_walked >= query.last_stats.edges_walked


class TestCreep:
    def test_trapped_secret_sinks_are_flagged(self):
        graph = FlowGraph(nodes=[
            FlowNode("component:vault", NodeKind.COMPONENT,
                     secrecy=("ns:a", "ns:b", "ns:c")),
            FlowNode("component:open", NodeKind.COMPONENT),
        ])
        report = analyse_creep(graph)
        assert report.trapped == ["vault"]
        assert report.max_secrecy_size == 3
        assert "declassifier" in report.suggestion

    def test_healthy_graph_reports_no_creep(self, hospital):
        report = analyse_creep(hospital.analysis_graph())
        assert report.trapped == []
        assert report.suggestion == "no creep detected"

    def test_empty_graph(self):
        report = analyse_creep(FlowGraph())
        assert report.suggestion == "no contexts registered"
