"""The static≡dynamic property: the graph predicts runtime delivery.

For random small worlds of store-and-forward components,
``FlowQuery.can_flow(src, dst)`` over the compiled graph must agree
exactly with whether a runtime publish from ``src`` transitively
reaches ``dst`` under bus enforcement.  Store-and-forward matters: a
republisher re-emits under its *own* context, which is exactly the
transitivity the graph's multi-hop BFS models (and the conservative
upper bound the query docstring promises).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accesscontrol.pep import EnforcementMode
from repro.analysis import FlowQuery, compile_deployment
from repro.deploy import Deployment
from repro.errors import FlowError
from repro.ifc import SecurityContext
from repro.middleware.component import Component, EndpointKind
from repro.middleware.message import AttributeSpec, MessageType

SECRECY_POOL = ["prop-s1", "prop-s2"]
INTEGRITY_POOL = ["prop-i1"]

TELEMETRY = MessageType("prop-telemetry", [AttributeSpec("value", int)])

context_strategy = st.tuples(
    st.sets(st.sampled_from(SECRECY_POOL)),
    st.sets(st.sampled_from(INTEGRITY_POOL)),
)


def build_world(contexts):
    """A bus of store-and-forward republishers, one per context."""
    deploy = Deployment(seed=0, name="prop")
    domain = deploy.node(
        "prop", machine=False
    ).with_domain(mode=EnforcementMode.IFC_ONLY).domain
    bus = domain.bus
    components = []
    fired = set()
    received = set()
    for i, (secrecy, integrity) in enumerate(contexts):
        comp = Component(
            f"c{i}",
            context=SecurityContext.of(sorted(secrecy), sorted(integrity)),
        )
        comp.add_endpoint("out", EndpointKind.SOURCE, TELEMETRY)

        def forward(component, endpoint, message, _bus=bus):
            received.add(component.name)
            if component.name not in fired:
                fired.add(component.name)
                _bus.publish(component, "out", value=message.values["value"])

        comp.add_endpoint("in", EndpointKind.SINK, TELEMETRY, handler=forward)
        bus.register(comp)
        components.append(comp)
    for src in components:
        for dst in components:
            if src is dst:
                continue
            try:
                bus.connect("prop-owner", src, "out", dst, "in")
            except FlowError:
                pass
    return deploy, components, fired, received


@settings(max_examples=40, deadline=None)
@given(contexts=st.lists(context_strategy, min_size=2, max_size=5))
def test_can_flow_iff_runtime_publish_reaches(contexts):
    deploy, components, fired, received = build_world(contexts)
    query = FlowQuery(compile_deployment(deploy))
    origin = components[0]
    fired.add(origin.name)
    deploy.world.domains["prop"].bus.publish(origin, "out", value=1)
    for target in components[1:]:
        static = query.can_flow(
            f"component:{origin.name}", f"component:{target.name}"
        )
        dynamic = target.name in received
        assert static == dynamic, (
            f"{origin.name}->{target.name}: graph says {static}, "
            f"runtime says {dynamic}"
        )


@settings(max_examples=25, deadline=None)
@given(contexts=st.lists(context_strategy, min_size=2, max_size=4))
def test_reachable_set_matches_runtime_spread(contexts):
    deploy, components, fired, received = build_world(contexts)
    query = FlowQuery(compile_deployment(deploy))
    origin = components[0]
    fired.add(origin.name)
    deploy.world.domains["prop"].bus.publish(origin, "out", value=1)
    statically_reached = {
        ref.split(":", 1)[1]
        for ref in query.reachable_set(f"component:{origin.name}")
        if ref.startswith("component:c")
    }
    # reachable_set never includes its origin; runtime may loop a
    # message back to it, so compare the non-origin spread.
    assert statically_reached == received - {origin.name}
