"""FlowGraph mechanics: nodes, edges, resolution, equality, diff.

Direct ``FlowGraph(...)`` construction is allowed here (and only here):
the lint in ``test_construction_lint.py`` polices ``src/``, not the
analysis plane's own tests.
"""

import pytest

from repro.analysis import (
    VIA_FLOW_RULE,
    VIA_HOSTS,
    FlowEdge,
    FlowGraph,
    FlowNode,
    NodeKind,
)
from repro.errors import AnalysisError


def node(name, kind=NodeKind.COMPONENT, **kw):
    return FlowNode(f"{kind.value}:{name}", kind, **kw)


def small_graph():
    a = node("a", secrecy=("ns:s",))
    b = node("b", secrecy=("ns:s",))
    member = node("host-1", NodeKind.MEMBER)
    domain = node("a", NodeKind.DOMAIN)  # bare name collides with component a
    graph = FlowGraph(
        nodes=[a, b, member, domain],
        edges=[
            FlowEdge(a.node_id, b.node_id, VIA_FLOW_RULE),
            FlowEdge(member.node_id, domain.node_id, VIA_HOSTS, flow=False),
        ],
    )
    return graph, a, b, member, domain


class TestConstruction:
    def test_add_node_is_idempotent_for_identical_values(self):
        graph = FlowGraph()
        graph.add_node(node("a"))
        graph.add_node(node("a"))
        assert len(graph) == 1

    def test_add_node_rejects_conflicting_definitions(self):
        graph = FlowGraph()
        graph.add_node(node("a", secrecy=("ns:s",)))
        with pytest.raises(AnalysisError, match="conflicting"):
            graph.add_node(node("a", secrecy=("ns:t",)))

    def test_add_edge_requires_both_endpoints(self):
        graph = FlowGraph(nodes=[node("a")])
        with pytest.raises(AnalysisError, match="not a node"):
            graph.add_edge(
                FlowEdge("component:a", "component:ghost", VIA_FLOW_RULE)
            )

    def test_duplicate_edges_collapse(self):
        graph, a, b, *_ = small_graph()
        before = len(graph.edges())
        graph.add_edge(FlowEdge(a.node_id, b.node_id, VIA_FLOW_RULE))
        assert len(graph.edges()) == before


class TestResolution:
    def test_resolve_full_id_and_unique_bare_name(self):
        graph, a, b, member, _ = small_graph()
        assert graph.resolve("component:b") is b
        assert graph.resolve("host-1") is member

    def test_resolve_ambiguous_bare_name_raises(self):
        graph, *_ = small_graph()
        with pytest.raises(AnalysisError, match="ambiguous"):
            graph.resolve("a")

    def test_resolve_unknown_raises_and_contains_is_safe(self):
        graph, *_ = small_graph()
        with pytest.raises(AnalysisError, match="unknown"):
            graph.resolve("ghost")
        assert "ghost" not in graph
        assert "component:b" in graph

    def test_node_name_strips_kind_prefix(self):
        assert node("substrate@ward-1").name == "substrate@ward-1"


class TestViews:
    def test_nodes_filter_by_kind(self):
        graph, *_ = small_graph()
        assert [n.kind for n in graph.nodes(NodeKind.MEMBER)] == [
            NodeKind.MEMBER
        ]
        assert len(graph.nodes()) == 4

    def test_edges_flow_only_drops_structural(self):
        graph, *_ = small_graph()
        assert len(graph.edges()) == 2
        assert [e.via for e in graph.edges(flow_only=True)] == [VIA_FLOW_RULE]

    def test_out_edges_default_to_flow_edges(self):
        graph, a, b, member, _ = small_graph()
        assert graph.out_edges(a.node_id)[0].dst == b.node_id
        assert graph.out_edges(member.node_id) == []
        assert len(graph.out_edges(member.node_id, flow_only=False)) == 1

    def test_summary_counts_by_kind(self):
        graph, *_ = small_graph()
        summary = graph.summary()
        assert summary["nodes"] == 4
        assert summary["flow_edges"] == 1
        assert summary["nodes_component"] == 2


class TestEquality:
    def test_construction_order_is_irrelevant(self):
        a, b = node("a"), node("b")
        edge = FlowEdge(a.node_id, b.node_id, VIA_FLOW_RULE)
        one = FlowGraph(nodes=[a, b], edges=[edge])
        two = FlowGraph(nodes=[b, a], edges=[edge])
        assert one == two

    def test_extra_edge_breaks_equality(self):
        a, b = node("a"), node("b")
        one = FlowGraph(nodes=[a, b])
        two = FlowGraph(
            nodes=[a, b], edges=[FlowEdge(a.node_id, b.node_id, VIA_FLOW_RULE)]
        )
        assert one != two


class TestDiff:
    def test_identical_graphs_diff_empty(self):
        one, *_ = small_graph()
        two, *_ = small_graph()
        diff = one.diff(two)
        assert diff.is_empty()
        assert "no new flows" in diff.report()

    def test_added_flow_is_reported_exactly(self):
        base, a, b, *_ = small_graph()
        changed, a2, b2, *_ = small_graph()
        c = changed.add_node(node("c"))
        new_edge = FlowEdge(b2.node_id, c.node_id, VIA_FLOW_RULE)
        changed.add_edge(new_edge)
        diff = base.diff(changed)
        assert diff.added_nodes == [c.node_id]
        assert diff.admits() == [(b2.node_id, c.node_id, VIA_FLOW_RULE)]
        assert not diff.removed_flows
        report = diff.report()
        assert "NEW FLOWS (1)" in report
        assert f"+ {b2.node_id} -> {c.node_id} via {VIA_FLOW_RULE}" in report

    def test_diff_direction_baseline_vs_proposed(self):
        base, a, b, *_ = small_graph()
        changed, a2, b2, *_ = small_graph()
        changed.add_edge(FlowEdge(b2.node_id, a2.node_id, VIA_FLOW_RULE))
        assert base.diff(changed).added_flows
        assert changed.diff(base).removed_flows

    def test_structural_changes_tracked_separately(self):
        base, *_ = small_graph()
        changed, a2, b2, *_ = small_graph()
        changed.add_edge(
            FlowEdge(b2.node_id, a2.node_id, VIA_HOSTS, flow=False)
        )
        diff = base.diff(changed)
        assert not diff.added_flows
        assert len(diff.added_structure) == 1
        assert "structural: +1 -0" in diff.report()
