"""Diff-mode regression: a policy change admits exactly what diff says.

The review workflow the plane is built for: compile the deployed
policy, compile the proposed one, and ``baseline.diff(proposed)``
must name *every* new ``(src, dst, via)`` admissible flow — no more,
no fewer.
"""

from repro.deploy import Deployment
from repro.ifc import Declassifier, PrivilegeSet, SecurityContext
from repro.middleware.component import Component


def world(name: str) -> Deployment:
    deploy = Deployment(seed=11, name=name)
    domain = deploy.node("ward").with_domain().domain
    domain.bus.register(
        Component("ward-sensor", context=SecurityContext.of(["medical"], []))
    )
    domain.bus.register(
        Component("public-dashboard", context=SecurityContext.public())
    )
    return deploy


def anonymiser() -> Declassifier:
    return Declassifier(
        "anonymiser",
        input_context=SecurityContext.of(["medical"], []),
        output_context=SecurityContext.public(),
        privileges=PrivilegeSet.of(remove_secrecy=["medical"]),
    )


class TestGatewayGrant:
    def test_adding_a_declassifier_admits_exactly_the_predicted_flows(self):
        baseline = world("deployed").analysis_graph()
        proposed_deploy = world("proposed").with_gateways(anonymiser())
        diff = baseline.diff(proposed_deploy.analysis_graph())
        assert diff.added_nodes == ["gateway:anonymiser"]
        # Every public writer may also ascend INTO the medical input
        # context, and the public output reaches every reader — the
        # full predicted set, not just the headline chain:
        assert sorted(diff.admits()) == [
            ("component:public-dashboard", "gateway:anonymiser", "flow-rule"),
            ("component:substrate@ward", "gateway:anonymiser", "flow-rule"),
            ("component:ward-sensor", "gateway:anonymiser", "flow-rule"),
            ("gateway:anonymiser", "component:public-dashboard",
             "gateway:anonymiser"),
            ("gateway:anonymiser", "component:substrate@ward",
             "gateway:anonymiser"),
            ("gateway:anonymiser", "component:ward-sensor",
             "gateway:anonymiser"),
        ]
        assert not diff.removed_flows

    def test_diff_report_names_the_new_crossing(self):
        baseline = world("deployed").analysis_graph()
        proposed = world("proposed").with_gateways(anonymiser()).analysis_graph()
        report = baseline.diff(proposed).report()
        assert "gateway:anonymiser -> component:public-dashboard" in report
        assert "[declassifier]" in report


class TestPrivilegeGrant:
    def test_granting_remove_secrecy_admits_exactly_one_privilege_flow(self):
        baseline = world("deployed").analysis_graph()
        changed = world("proposed")
        domain = changed.nodes()[0].domain
        sensor = domain.bus.components["ward-sensor"]
        sensor.privileges = PrivilegeSet.of(remove_secrecy=["medical"])
        diff = baseline.diff(changed.analysis_graph())
        assert diff.added_nodes == []
        assert sorted(diff.admits()) == [
            ("component:ward-sensor", "component:public-dashboard",
             "privilege"),
            ("component:ward-sensor", "component:substrate@ward",
             "privilege"),
        ]

    def test_revoking_the_grant_retires_the_same_flows(self):
        granted = world("deployed")
        domain = granted.nodes()[0].domain
        domain.bus.components["ward-sensor"].privileges = PrivilegeSet.of(
            remove_secrecy=["medical"]
        )
        diff = granted.analysis_graph().diff(world("proposed").analysis_graph())
        assert not diff.added_flows
        assert {(e.src, e.dst) for e in diff.removed_flows} == {
            ("component:ward-sensor", "component:public-dashboard"),
            ("component:ward-sensor", "component:substrate@ward"),
        }
