"""Cache pre-warming: the graph's reachable pairs become cache hits.

The honest claim (docs/analysis_plane.md): pre-warming converts the
first-contact miss of every *statically admissible direct* pair into a
hit; pairs outside the compiled world still miss.  Both sides are
pinned here, and the measured delta goes to ``BENCH_analysis.json``.
"""

from repro.analysis import reachable_pairs
from repro.ifc import SecurityContext, can_flow


def pair_masks(pairs):
    return {
        (s.secrecy.mask, s.integrity.mask, d.secrecy.mask, d.integrity.mask)
        for s, d in pairs
    }


class TestReachablePairs:
    def test_pairs_cover_the_hospital_flows(self, hospital):
        pairs = reachable_pairs(hospital.analysis_graph())
        medical = SecurityContext.of(["medical"], [])
        public = SecurityContext.public()
        masks = pair_masks(pairs)
        assert (
            medical.secrecy.mask, medical.integrity.mask,
            public.secrecy.mask, public.integrity.mask,
        ) not in masks  # medical -> public is NOT directly admissible
        assert (
            public.secrecy.mask, public.integrity.mask,
            medical.secrecy.mask, medical.integrity.mask,
        ) in masks  # public writers reach the medical input context

    def test_gateway_sources_contribute_their_output_context(self, hospital):
        pairs = reachable_pairs(hospital.analysis_graph())
        # Every pair the graph emits is admissible under the flow rule
        # from the *emitting* side: gateway pairs use the output
        # context, which is what their emissions actually carry.
        assert pairs
        for src, dst in pairs:
            assert can_flow(src, dst)

    def test_pairs_are_deduplicated(self, hospital):
        pairs = reachable_pairs(hospital.analysis_graph())
        assert len(pair_masks(pairs)) == len(pairs)


class TestDeploymentPrewarm:
    def test_prewarm_installs_and_reports(self, hospital):
        report = hospital.prewarm_decisions()
        assert report.pairs > 0
        assert report.installed == report.pairs  # cold cache: all new
        assert report.already_warm == 0
        assert report.shards == {"ward-1": report.installed}
        assert report.wall_s >= 0.0
        assert hospital.stats()["analysis"]["prewarmed_pairs"] == report.pairs

    def test_prewarm_is_idempotent(self, hospital):
        first = hospital.prewarm_decisions()
        second = hospital.prewarm_decisions()
        assert second.installed == 0
        assert second.already_warm == first.pairs

    def test_prewarmed_pairs_hit_where_cold_pairs_miss(self, hospital_factory):
        cold = hospital_factory(seed=3)
        warm = hospital_factory(seed=3)
        warm_graph = warm.analysis_graph()
        warm.prewarm_decisions(graph=warm_graph)
        workload = reachable_pairs(warm_graph)
        assert workload

        def drive(deploy):
            shard = deploy.nodes()[0].machine.shard
            hits, misses = shard.cache.hits, shard.cache.misses
            for src, dst in workload:
                shard.cache.evaluate(src, dst)
            return shard.cache.hits - hits, shard.cache.misses - misses

        warm_hits, warm_misses = drive(warm)
        cold_hits, cold_misses = drive(cold)
        assert warm_misses == 0
        assert warm_hits == len(workload)
        assert cold_misses == len(workload)
        assert cold_hits == 0

    def test_unforeseen_pairs_still_miss_after_prewarm(self, hospital):
        hospital.prewarm_decisions()
        shard = hospital.nodes()[0].machine.shard
        misses = shard.cache.misses
        shard.cache.evaluate(
            SecurityContext.of(["never-compiled"], []),
            SecurityContext.public(),
        )
        assert shard.cache.misses == misses + 1
