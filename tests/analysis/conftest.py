"""Shared worlds for the analysis-plane tests.

``hospital()`` is the canonical Fig. 6 shape: a medical sensor whose
readings only reach the public dashboard through the anonymising
declassifier.  The gate, prewarm and query tests all interrogate the
same deployment so their expectations stay mutually consistent.
"""

import pytest

from repro.deploy import Deployment
from repro.ifc import Declassifier, PrivilegeSet, SecurityContext
from repro.middleware.component import Component


def build_hospital(seed: int = 7) -> Deployment:
    deploy = Deployment(seed=seed, name="hospital")
    ward = deploy.node("ward", hostname="ward-1").with_domain().with_substrate()
    domain = ward.domain
    domain.bus.register(
        Component("ward-sensor", context=SecurityContext.of(["medical"], []))
    )
    domain.bus.register(
        Component("public-dashboard", context=SecurityContext.public())
    )
    deploy.register_gateway(
        Declassifier(
            "anonymiser",
            input_context=SecurityContext.of(["medical"], []),
            output_context=SecurityContext.public(),
            privileges=PrivilegeSet.of(remove_secrecy=["medical"]),
        )
    )
    return deploy


@pytest.fixture
def hospital() -> Deployment:
    return build_hospital()


@pytest.fixture
def hospital_factory():
    return build_hospital
