"""The compiler walks deployments/specs/gateways/rules into one graph.

The load-bearing pin is the ``from_spec`` round-trip guard: compiling a
freshly built :class:`Deployment` and compiling its
:class:`DeploymentSpec` twin must yield *identical* graphs (value
equality), across every spec shape the builder normalises differently.
"""

import pytest

from repro.analysis import (
    VIA_CARRIES,
    VIA_DELEGATES,
    VIA_PRIVILEGE,
    VIA_RUNS,
    NodeKind,
    compile,
    compile_deployment,
    compile_spec,
)
from repro.deploy import Deployment, DeploymentSpec, NodeSpec
from repro.errors import AnalysisError
from repro.ifc import (
    PrivilegeAuthority,
    PrivilegeSet,
    SecurityContext,
    TagRegistry,
)
from repro.middleware.component import Component
from repro.policy.legal import geo_fence_obligation
from repro.policy.rules import NotifyAction, Rule

SPEC_SHAPES = {
    "domain-mesh": NodeSpec(name="n0", machine=True, substrate=True,
                            domain="ops", mesh=True),
    "machine-only": NodeSpec(name="n0", machine=True, domain=None),
    "bus-only": NodeSpec(name="n0", machine=False),
    "no-substrate": NodeSpec(name="n0", machine=True, substrate=False,
                             domain="ops"),
    "workers": NodeSpec(name="n0", machine=True, workers=2, domain="ops"),
}


class TestRoundTrip:
    @pytest.mark.parametrize("shape", sorted(SPEC_SHAPES), ids=str)
    def test_fresh_deployment_equals_its_spec_twin(self, shape):
        spec = DeploymentSpec(
            name="twin", seed=3, nodes=[SPEC_SHAPES[shape]]
        )
        live = compile_deployment(Deployment.from_spec(spec))
        declared = compile_spec(spec)
        assert live == declared, live.diff(declared).report()

    def test_round_trip_holds_for_multi_node_federation(self):
        spec = DeploymentSpec(
            name="fed",
            seed=5,
            nodes=[
                NodeSpec(name=f"n{i}", machine=True, substrate=True,
                         domain=f"d{i}", mesh=True)
                for i in range(4)
            ],
        )
        live = compile_deployment(Deployment.from_spec(spec))
        assert live == compile_spec(spec)

    def test_adopted_components_break_the_twin_symmetry_visibly(self):
        spec = DeploymentSpec(
            name="twin", seed=3, nodes=[SPEC_SHAPES["domain-mesh"]]
        )
        deploy = Deployment.from_spec(spec)
        deploy.nodes()[0].domain.bus.register(
            Component("late", context=SecurityContext.public())
        )
        diff = compile_spec(spec).diff(compile_deployment(deploy))
        assert "component:late" in diff.added_nodes


class TestDeploymentWalk:
    def test_substrate_daemon_is_modelled(self, hospital):
        graph = hospital.analysis_graph()
        daemon = graph.resolve("component:substrate@ward-1")
        assert daemon.secrecy == ()
        runs = [
            e for e in graph.out_edges("member:ward-1", flow_only=False)
            if e.via == VIA_RUNS
        ]
        assert [e.dst for e in runs] == [daemon.node_id]

    def test_structural_skeleton(self, hospital):
        graph = hospital.analysis_graph()
        assert graph.resolve("domain:ward").kind is NodeKind.DOMAIN
        assert graph.resolve("engine:ward-policy-engine").kind is NodeKind.ENGINE
        adopted = {
            e.dst for e in graph.out_edges("domain:ward", flow_only=False)
            if e.via == "adopts"
        }
        assert {"component:ward-sensor", "component:public-dashboard"} <= adopted

    def test_tag_carriers(self, hospital):
        graph = hospital.analysis_graph()
        tag = graph.nodes(NodeKind.TAG)[0]
        carried_by = {
            e.dst for e in graph.out_edges(tag.node_id, flow_only=False)
            if e.via == VIA_CARRIES
        }
        assert "component:ward-sensor" in carried_by
        assert "gateway:anonymiser" in carried_by

    def test_gateway_node_carries_both_contexts(self, hospital):
        graph = hospital.analysis_graph()
        anon = graph.resolve("gateway:anonymiser")
        assert anon.secrecy and not anon.out_secrecy

    def test_gateway_crossing_edges(self, hospital):
        graph = hospital.analysis_graph()
        into = [
            e for e in graph.out_edges("component:ward-sensor")
            if e.dst == "gateway:anonymiser"
        ]
        assert into and into[0].via == "flow-rule"
        out = graph.out_edges("gateway:anonymiser")
        crossing = {e.dst: e for e in out if e.via == "gateway:anonymiser"}
        assert "component:public-dashboard" in crossing
        assert crossing["component:public-dashboard"].detail == ("declassifier",)

    def test_no_direct_sensor_to_dashboard_edge(self, hospital):
        graph = hospital.analysis_graph()
        assert not any(
            e.dst == "component:public-dashboard"
            for e in graph.out_edges("component:ward-sensor")
        )

    def test_privilege_edge_names_shed_tags(self):
        deploy = Deployment(seed=1, name="priv")
        domain = deploy.node("ops").with_domain().domain
        domain.bus.register(Component(
            "exporter",
            context=SecurityContext.of(["medical"], []),
            privileges=PrivilegeSet.of(remove_secrecy=["medical"]),
        ))
        domain.bus.register(
            Component("sink", context=SecurityContext.public())
        )
        graph = deploy.analysis_graph()
        edges = [
            e for e in graph.out_edges("component:exporter")
            if e.dst == "component:sink"
        ]
        assert [e.via for e in edges] == [VIA_PRIVILEGE]
        assert edges[0].detail == ("shed:local:medical",)

    def test_rule_notifications_are_flow_edges(self):
        deploy = Deployment(seed=1, name="eca")
        domain = deploy.node("ops").with_domain().domain
        domain.engine.add_rule(
            Rule("page-oncall", "alarm", [NotifyAction("oncall-pager")])
        )
        graph = deploy.analysis_graph()
        edges = graph.out_edges("engine:ops-policy-engine")
        assert [(e.dst, e.via) for e in edges] == [
            ("notify:oncall-pager", "rule:page-oncall")
        ]

    def test_obligations_and_authority(self, hospital):
        obligation = geo_fence_obligation(
            data_sources={"ward-sensor"},
            forbidden_sinks={"public-dashboard"},
        )
        registry = TagRegistry()
        registry.register("medical", owner="hospital-root")
        authority = PrivilegeAuthority(registry)
        authority.delegate(
            "hospital-root", "anonymiser",
            PrivilegeSet.of(remove_secrecy=["medical"]),
        )
        graph = compile_deployment(
            hospital,
            obligations=[obligation],
            authority=authority,
        )
        obliged = graph.out_edges("obligation:geo-eu", flow_only=False)
        assert {e.dst for e in obliged} == {
            "component:ward-sensor", "component:public-dashboard"
        }
        delegations = graph.out_edges("principal:hospital-root",
                                      flow_only=False)
        assert [(e.dst, e.via) for e in delegations] == [
            ("principal:anonymiser", VIA_DELEGATES)
        ]


class TestDispatch:
    def test_compile_dispatches_on_shape(self, hospital):
        spec = DeploymentSpec(name="x", nodes=[SPEC_SHAPES["machine-only"]])
        assert compile(spec) == compile_spec(spec)
        assert compile(hospital) == compile_deployment(hospital)

    def test_compile_rejects_unknown_sources(self):
        with pytest.raises(AnalysisError, match="cannot compile"):
            compile(object())
