"""The pre-deploy gate: verdicts, audit evidence, and verify() wiring.

Ends with the acceptance scenario: a 16-node federated world where a
chain of two declassifiers statically admits a forbidden flow that no
runtime check has tripped over (no message was ever sent), and the gate
catches it with the chain as evidence.
"""

import pytest

from repro.analysis import (
    VERDICT_FORBIDDEN,
    VERDICT_MISSING,
    VERDICT_OK,
    VERDICT_UNRESOLVED,
    Forbid,
    Require,
    assertions_from_obligations,
    run_gate,
)
from repro.audit.records import RecordKind
from repro.deploy import Deployment, VerdictMatrix
from repro.errors import AnalysisError
from repro.ifc import Declassifier, PrivilegeSet, SecurityContext
from repro.middleware.component import Component
from repro.policy.legal import geo_fence_obligation


def disjoint_world() -> Deployment:
    """Two stores with disjoint secrecy and no bridging gateway: no
    admissible path exists between them in either direction."""
    deploy = Deployment(seed=2, name="disjoint")
    domain = deploy.node("ops").with_domain().domain
    domain.bus.register(Component(
        "medical-store", context=SecurityContext.of(["medical"], []),
    ))
    domain.bus.register(Component(
        "billing-store", context=SecurityContext.of(["finance"], []),
    ))
    return deploy


class TestVerdicts:
    def test_forbid_without_path_is_ok(self):
        report = run_gate(
            disjoint_world().analysis_graph(),
            [Forbid("medical-store", "billing-store")],
        )
        assert report.ok()
        assert report.findings[0].verdict == VERDICT_OK

    def test_forbid_with_path_fails_with_evidence(self, hospital):
        report = run_gate(
            hospital.analysis_graph(),
            [Forbid("ward-sensor", "public-dashboard")],
        )
        finding = report.findings[0]
        assert not report.ok()
        assert finding.verdict == VERDICT_FORBIDDEN
        assert finding.chains == [["anonymiser"]]
        assert finding.path == [
            "component:ward-sensor -> gateway:anonymiser via flow-rule",
            "gateway:anonymiser -> component:public-dashboard "
            "via gateway:anonymiser",
        ]
        assert "anonymiser" in finding.reason

    def test_require_present_and_missing(self):
        graph = disjoint_world().analysis_graph()
        report = run_gate(graph, [
            Require("substrate@ops", "medical-store"),
            Require("medical-store", "billing-store"),
        ])
        verdicts = [f.verdict for f in report.findings]
        assert verdicts == [VERDICT_OK, VERDICT_MISSING]
        assert len(report.violations()) == 1

    @pytest.mark.parametrize("assertion", [
        Forbid("ghost", "public-dashboard"),
        Require("ward-sensor", "ghost"),
    ], ids=["forbid", "require"])
    def test_unknown_nodes_fail_closed(self, hospital, assertion):
        report = run_gate(hospital.analysis_graph(), [assertion])
        finding = report.findings[0]
        assert finding.verdict == VERDICT_UNRESOLVED
        assert finding.violation
        assert "fail closed" in finding.reason

    def test_unknown_assertion_type_raises(self, hospital):
        class Audit(Forbid.__bases__[0]):
            pass
        with pytest.raises(AnalysisError, match="unknown assertion"):
            run_gate(hospital.analysis_graph(), [Audit("a", "b")])

    def test_report_accounting_and_text(self, hospital):
        report = run_gate(hospital.analysis_graph(), [
            Forbid("ward-sensor", "public-dashboard"),
            Require("ward-sensor", "anonymiser"),
        ])
        assert report.queries > 0
        assert report.wall_s >= 0.0
        assert report.graph_summary["nodes"] > 0
        text = report.report()
        assert "2 assertion(s), 1 violation(s)" in text
        assert "[forbidden-flow] forbid:ward-sensor->public-dashboard" in text
        assert report.rows() == {
            "forbid:ward-sensor->public-dashboard": VERDICT_FORBIDDEN,
            "require:ward-sensor->anonymiser": VERDICT_OK,
        }

    def test_obligations_derive_forbid_assertions(self):
        obligation = geo_fence_obligation(
            data_sources={"ward-sensor"},
            forbidden_sinks={"offshore", "partner"},
        )
        derived = assertions_from_obligations([obligation])
        assert sorted(a.label() for a in derived) == [
            "forbid:ward-sensor->offshore",
            "forbid:ward-sensor->partner",
        ]


class TestDeploymentWiring:
    def test_findings_land_as_analysis_audit_records(self, hospital):
        hospital.with_flow_assertions(
            [Forbid("ward-sensor", "public-dashboard")]
        )
        hospital.run_analysis_gate()
        spine = hospital.nodes()[0].machine.audit
        records = spine.records(kind=RecordKind.ANALYSIS)
        assert len(records) == 1
        record = records[0]
        assert record.actor == "analysis-gate"
        assert record.subject == "forbid:ward-sensor->public-dashboard"
        assert record.detail["verdict"] == VERDICT_FORBIDDEN
        assert record.detail["violation"] is True
        assert record.detail["chains"] == [["anonymiser"]]
        # The evidence is part of the tamper-evident chain.
        assert spine.verify()

    def test_verify_matrix_grows_an_analysis_row(self, hospital):
        hospital.with_flow_assertions([
            Forbid("ward-sensor", "public-dashboard"),
            Require("ward-sensor", "anonymiser"),
        ])
        matrix = hospital.verify()
        assert isinstance(matrix, VerdictMatrix)
        assert matrix["analysis"] == {
            "forbid:ward-sensor->public-dashboard": VERDICT_FORBIDDEN,
            "require:ward-sensor->anonymiser": VERDICT_OK,
        }
        assert matrix.analysis is not None
        assert not matrix.ok()
        # The federation rows themselves are untampered: only the
        # static gate is failing this deployment.
        assert matrix["ward-1"]["ward-1"] == "ok"

    def test_verify_without_assertions_skips_the_gate(self, hospital):
        matrix = hospital.verify()
        assert "analysis" not in matrix
        assert matrix.analysis is None
        assert matrix.ok()

    def test_verify_analysis_flag_forces_and_suppresses(self, hospital):
        forced = hospital.verify(analysis=True)
        assert forced.analysis is not None
        assert forced.analysis.findings == []
        assert forced.ok()
        hospital.with_flow_assertions(
            [Forbid("ward-sensor", "public-dashboard")]
        )
        suppressed = hospital.verify(analysis=False)
        assert suppressed.analysis is None
        assert suppressed.ok()

    def test_stats_rollup_mirrors_the_verify_plane(self, hospital):
        assert hospital.stats()["analysis"] == {
            "compiles": 0, "gates": 0, "assertions_checked": 0,
            "violations": 0, "queries": 0, "prewarmed_pairs": 0,
            "wall_s": 0.0,
        }
        hospital.with_flow_assertions([
            Forbid("ward-sensor", "public-dashboard"),
            Require("ward-sensor", "anonymiser"),
        ])
        hospital.verify()
        rollup = hospital.stats()["analysis"]
        assert rollup["compiles"] == 1
        assert rollup["gates"] == 1
        assert rollup["assertions_checked"] == 2
        assert rollup["violations"] == 1
        assert rollup["queries"] > 0
        assert rollup["wall_s"] >= 0.0


def federated_research_world() -> Deployment:
    """16 mesh members; domain d0 holds the patient feed, d15 the
    offshore archive, and two registered declassifiers form the only —
    and forbidden — route between them."""
    deploy = Deployment(seed=42, name="research-fed")
    for i in range(16):
        deploy.node(f"n{i}", hostname=f"host-{i}").with_domain(
            f"d{i}"
        ).with_mesh()
    deploy.nodes()[0].domain.bus.register(Component(
        "patient-feed", context=SecurityContext.of(["patient"], []),
    ))
    deploy.nodes()[15].domain.bus.register(Component(
        "offshore-archive", context=SecurityContext.public(),
    ))
    deploy.with_gateways(
        Declassifier(
            "pseudonymise",
            input_context=SecurityContext.of(["patient"], []),
            output_context=SecurityContext.of(["cohort"], []),
            privileges=PrivilegeSet.of(remove_secrecy=["patient"],
                                       add_secrecy=["cohort"]),
        ),
        Declassifier(
            "aggregate",
            input_context=SecurityContext.of(["cohort"], []),
            output_context=SecurityContext.public(),
            privileges=PrivilegeSet.of(remove_secrecy=["cohort"]),
        ),
    )
    return deploy


class TestFederatedAcceptance:
    def test_gate_catches_what_the_running_federation_never_saw(self):
        deploy = federated_research_world()
        deploy.with_flow_assertions(
            [Forbid("patient-feed", "offshore-archive")]
        )
        # Run the federation: gossip converges, pinboards pin, every
        # runtime check passes — nobody ever published a message, so
        # enforcement had nothing to deny.
        deploy.run(hours=1)
        assert deploy.converge() >= 0
        matrix = deploy.verify()
        runtime_rows = {
            observer: verdicts
            for observer, verdicts in matrix.items()
            if observer != "analysis"
        }
        assert len(runtime_rows) == 16
        assert all(
            verdict in ("ok", "unpinned")
            for row in runtime_rows.values()
            for verdict in row.values()
        )
        for node in deploy.nodes():
            assert node.domain.bus.stats.denied == 0
        # ... and yet the deployment is not shippable: the static gate
        # finds the two-hop declassifier chain to the forbidden sink.
        assert not matrix.ok()
        finding = matrix.analysis.findings[0]
        assert finding.verdict == VERDICT_FORBIDDEN
        assert finding.chains == [["pseudonymise", "aggregate"]]
        assert len(finding.path) == 3

    def test_dropping_the_second_declassifier_closes_the_route(self):
        deploy = federated_research_world()
        deploy._gateways.pop()  # remove "aggregate"
        report = run_gate(
            deploy.analysis_graph(),
            [Forbid("patient-feed", "offshore-archive")],
        )
        assert report.ok()
