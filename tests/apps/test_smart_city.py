"""Smart city: federation, gateways, and the IFC-vs-AC-only contrast."""

import pytest

from repro.accesscontrol import EnforcementMode
from repro.apps import SmartCitySystem
from repro.iot import IoTWorld


def build(mode=EnforcementMode.AC_AND_IFC, households=3):
    world = IoTWorld(seed=5, mode=mode)
    city = SmartCitySystem(world, household_count=households,
                           sample_interval=600.0)
    city.run(hours=1)
    return city


class TestFederatedCollection:
    def test_aggregator_collects_from_all_households(self):
        city = build()
        sources = {m.values.get("unit") for m in city.aggregator.received}
        assert len(city.aggregator.received) == 3 * 6  # 3 homes, 6 samples/h

    def test_each_household_is_its_own_domain(self):
        city = build()
        assert set(city.households) <= set(city.world.domains)

    def test_gateways_forward_everything(self):
        city = build()
        for household in city.households.values():
            assert household.gateway.forwarded == 6


class TestLeakExperiment:
    def test_ifc_blocks_raw_leak(self):
        city = build(EnforcementMode.AC_AND_IFC)
        leak = city.attempt_raw_leak()
        assert leak["delivered"] == 0
        assert leak["denied"] >= 1

    def test_ac_only_leaks(self):
        city = build(EnforcementMode.AC_ONLY)
        leak = city.attempt_raw_leak()
        assert leak["delivered"] == len(city.aggregator.received)

    def test_geo_fence_audit_flags_the_ac_only_leak(self):
        city = build(EnforcementMode.AC_ONLY)
        city.attempt_raw_leak()
        report = city.geo_fence_auditor().run(city.city.audit)
        assert not report.compliant

    def test_geo_fence_audit_passes_under_ifc(self):
        city = build(EnforcementMode.AC_AND_IFC)
        city.attempt_raw_leak()
        report = city.geo_fence_auditor().run(city.city.audit)
        assert report.compliant

    def test_federated_audit_collects_all_domains(self):
        city = build()
        collector = city.world.collect_audit()
        assert collector.rejected_domains == set()
        # home domains + city logged flows
        domains_with_records = {d for d, __ in collector.merged()}
        assert "city" in domains_with_records
        assert any(d.startswith("home-") for d in domains_with_records)
