"""Smart city: federation, gateways, and the IFC-vs-AC-only contrast."""

import pytest

from repro.accesscontrol import EnforcementMode
from repro.apps import SmartCitySystem
from repro.iot import IoTWorld


def build(mode=EnforcementMode.AC_AND_IFC, households=3):
    world = IoTWorld(seed=5, mode=mode)
    city = SmartCitySystem(world, household_count=households,
                           sample_interval=600.0)
    city.run(hours=1)
    return city


class TestFederatedCollection:
    def test_aggregator_collects_from_all_households(self):
        city = build()
        sources = {m.values.get("unit") for m in city.aggregator.received}
        assert len(city.aggregator.received) == 3 * 6  # 3 homes, 6 samples/h

    def test_each_household_is_its_own_domain(self):
        city = build()
        assert set(city.households) <= set(city.world.domains)

    def test_gateways_forward_everything(self):
        city = build()
        for household in city.households.values():
            assert household.gateway.forwarded == 6


class TestLeakExperiment:
    def test_ifc_blocks_raw_leak(self):
        city = build(EnforcementMode.AC_AND_IFC)
        leak = city.attempt_raw_leak()
        assert leak["delivered"] == 0
        assert leak["denied"] >= 1

    def test_ac_only_leaks(self):
        city = build(EnforcementMode.AC_ONLY)
        leak = city.attempt_raw_leak()
        assert leak["delivered"] == len(city.aggregator.received)

    def test_geo_fence_audit_flags_the_ac_only_leak(self):
        city = build(EnforcementMode.AC_ONLY)
        city.attempt_raw_leak()
        report = city.geo_fence_auditor().run(city.city.audit)
        assert not report.compliant

    def test_geo_fence_audit_passes_under_ifc(self):
        city = build(EnforcementMode.AC_AND_IFC)
        city.attempt_raw_leak()
        report = city.geo_fence_auditor().run(city.city.audit)
        assert report.compliant

    def test_federated_audit_collects_all_domains(self):
        city = build()
        collector = city.world.collect_audit()
        assert collector.rejected_domains == set()
        # home domains + city logged flows
        domains_with_records = {d for d, __ in collector.merged()}
        assert "city" in domains_with_records
        assert any(d.startswith("home-") for d in domains_with_records)


def build_federated(districts=3, hours=2.0):
    from repro.apps import FederatedSmartCity

    world = IoTWorld(seed=11)
    city = FederatedSmartCity(world, district_count=districts,
                              sample_interval=600.0, report_interval=1800.0,
                              mesh_interval=60.0)
    city.run(hours=hours)
    return city


class TestFederatedSmartCity:
    def test_mesh_converges_and_reports_are_masked(self):
        city = build_federated()
        assert city.mesh.converged()
        assert len(city.collected) == 3 * 3  # 3 districts, 3 reports in 2h
        for district in city.districts.values():
            stats = district.substrate.stats
            assert stats.sent == district.reports_sent
            assert stats.sent_masked == stats.sent  # never a tag-set send
            assert stats.sent_tagset == 0

    def test_no_pairwise_handshake_traffic(self):
        city = build_federated()
        # The 3-step HELLO/ACK/FIN never runs: gossip carried the tables.
        assert city.world.network.stats.handshake_sent == 0
        assert city.world.network.stats.gossip_sent > 0

    def test_gateways_are_discoverable_with_their_hosts(self):
        city = build_federated()
        gateways = city.directory.find(querier_host="city-hq", kind="gateway")
        assert len(gateways) == 3
        for name in city.districts:
            assert city.directory.entry(f"{name}-gateway").host == f"{name}-hub"

    def test_every_pinboard_vouches_for_every_peer(self):
        city = build_federated()
        for host, view in city.verify_federation().items():
            assert view and all(v == "ok" for v in view.values()), (host, view)

    def test_censored_replay_detected_by_all_peers(self):
        from repro.apps import censored_replay

        city = build_federated()
        victim = city.mesh.node("district-2-hub")
        forged = censored_replay(victim.spine)
        assert forged.verify()  # the forgery is locally consistent
        assert forged.checkpoint_position == city.districts[
            "district-2"].machine.audit.checkpoint_position
        victim.spine = forged
        for host, view in city.verify_federation().items():
            if host == "district-2-hub":
                continue
            assert view["district-2-hub"] == "tampered", (host, view)


def test_federated_city_mesh_interval_respected_on_existing_deployment():
    """An explicit mesh_interval must apply (or raise), never be
    silently discarded, when a pre-built Deployment is passed."""
    import pytest
    from repro.deploy import Deployment

    deploy = Deployment(seed=1, mesh_interval=30.0)
    from repro.apps import FederatedSmartCity

    city = FederatedSmartCity(deploy, district_count=2, mesh_interval=15.0)
    assert deploy.mesh.interval == 15.0

    started = Deployment(seed=2, mesh_interval=30.0)
    started.node("seed-node").with_mesh().build()
    started.mesh  # materialise the mesh at 30s
    with pytest.raises(RuntimeError):
        FederatedSmartCity(started, district_count=2, mesh_interval=15.0)
