"""Timed declassification (Concern 6) and ε-DP statistics (§4)."""

import pytest

from repro.apps import HomeMonitoringSystem
from repro.errors import FlowError, PolicyError
from repro.ifc import (
    Declassifier,
    PassiveEntity,
    PrivilegeSet,
    SecurityContext,
    embargo_guard,
)
from repro.iot import IoTWorld, PatientProfile
from repro.sim import Simulator


class TestEmbargoGuard:
    def _gateway(self, sim) -> Declassifier:
        return Declassifier(
            "declassifier-2050",
            input_context=SecurityContext.of(["gov-secret"], []),
            output_context=SecurityContext.public(),
            privileges=PrivilegeSet.of(
                add_secrecy=["gov-secret"], remove_secrecy=["gov-secret"]
            ),
            guards=[embargo_guard(release_at=1000.0, clock=sim.now)],
        )

    def test_release_refused_before_embargo(self):
        sim = Simulator()
        gateway = self._gateway(sim)
        item = PassiveEntity("records",
                             SecurityContext.of(["gov-secret"], []))
        with pytest.raises(FlowError):
            gateway.process(item)

    def test_release_allowed_after_embargo(self):
        """'After a certain period of time, governmental data previously
        considered secret should become public' (§9.2)."""
        sim = Simulator()
        gateway = self._gateway(sim)
        item = PassiveEntity("records",
                             SecurityContext.of(["gov-secret"], []))
        sim.clock.advance(1000.0)
        result = gateway.process(item)
        assert result.output.context.is_public()


class TestDifferentiallyPrivateStatistics:
    def _system(self, dp_epsilon):
        world = IoTWorld(seed=13)
        return HomeMonitoringSystem(
            world,
            [
                PatientProfile("ann", device_standard=True),
                PatientProfile("may", device_standard=True),
            ],
            sample_interval=600.0,
            dp_epsilon=dp_epsilon,
        )

    def test_dp_mean_noisy_but_plausible(self):
        exact_system = self._system(dp_epsilon=None)
        exact_system.run(hours=4)
        exact = exact_system.stats_generator.publish_statistics()

        dp_system = self._system(dp_epsilon=2.0)
        dp_system.run(hours=4)
        noisy = dp_system.stats_generator.publish_statistics()

        assert noisy != exact              # noise was added
        assert abs(noisy - exact) < 30.0   # but utility preserved

    def test_dp_output_still_declassified(self):
        system = self._system(dp_epsilon=2.0)
        system.run(hours=2)
        system.stats_generator.publish_statistics()
        message = system.ward_manager.received[-1]
        assert "stats" in message.context.secrecy
        assert "ann" not in message.context.secrecy

    def test_dp_budget_eventually_exhausts(self):
        """'Regulates the queries on a dataset' — the accountant stops
        unlimited re-querying."""
        system = self._system(dp_epsilon=4.0)  # budget 10.0 -> 2 queries
        system.run(hours=2)
        assert system.stats_generator.publish_statistics() is not None
        system.run(hours=2)
        assert system.stats_generator.publish_statistics() is not None
        system.run(hours=2)
        with pytest.raises(PolicyError):
            system.stats_generator.publish_statistics()
