"""The Figs. 4-7 home-monitoring system, end to end."""

import pytest

from repro.apps import (
    EMERGENCY_INTERVAL,
    HomeMonitoringSystem,
    analyser_context,
    patient_context,
)
from repro.audit import RecordKind, graph_from_log
from repro.errors import FlowError
from repro.ifc import can_flow
from repro.iot import IoTWorld, PatientProfile


@pytest.fixture
def system():
    world = IoTWorld(seed=3)
    patients = [
        PatientProfile("ann", device_standard=True,
                       emergency_at=3600.0, emergency_duration=1800.0),
        PatientProfile("zeb", device_standard=False),
    ]
    return HomeMonitoringSystem(world, patients, sample_interval=300.0)


class TestFig4Contexts:
    def test_ann_flows_to_her_analyser(self):
        assert can_flow(patient_context("ann", True), analyser_context("ann"))

    def test_zeb_blocked_from_ann_analyser(self):
        assert not can_flow(patient_context("zeb", False),
                            analyser_context("ann"))

    def test_zeb_nonstandard_blocked_from_own_analyser(self):
        """Fig. 5's premise: even Zeb's own analyser demands hosp-dev."""
        assert not can_flow(patient_context("zeb", False),
                            analyser_context("zeb"))

    def test_direct_wiring_of_zeb_to_analyser_refused(self, system):
        zeb = system.patients["zeb"]
        with pytest.raises(FlowError):
            system.hospital.bus.connect(
                "hospital", zeb.sensor, "out", zeb.analyser, "in"
            )


class TestFig5Sanitiser:
    def test_nonstandard_data_reaches_analyser_via_sanitiser(self, system):
        system.run(hours=1)
        zeb = system.patients["zeb"]
        assert zeb.sanitiser is not None
        assert zeb.sanitiser.sanitised > 0
        assert len(zeb.analyser.received) == zeb.sanitiser.sanitised

    def test_sanitised_messages_carry_endorsed_context(self, system):
        system.run(hours=1)
        zeb = system.patients["zeb"]
        message = zeb.analyser.received[0]
        assert "hosp-dev" in message.context.integrity
        assert "zeb-dev" not in message.context.integrity

    def test_sanitiser_context_switches_audited(self, system):
        system.run(hours=1)
        endorsements = [
            r for r in system.hospital.audit
            if r.kind == RecordKind.ENDORSEMENT and "sanitiser" in r.actor
        ]
        assert endorsements

    def test_standard_device_needs_no_sanitiser(self, system):
        assert system.patients["ann"].sanitiser is None


class TestFig6Statistics:
    def test_ward_manager_receives_only_declassified_stats(self, system):
        system.run(hours=1)
        mean = system.stats_generator.publish_statistics()
        assert mean is not None
        received = system.ward_manager.received
        assert len(received) == 1
        assert "stats" in received[0].context.secrecy
        assert "ann" not in received[0].context.secrecy

    def test_raw_patient_data_never_reaches_manager(self, system):
        system.run(hours=2)
        system.stats_generator.publish_statistics()
        graph = graph_from_log(system.hospital.audit)
        # manager is reachable only via the stats generator
        for patient in ("ann", "zeb"):
            paths = graph.paths_between(f"{patient}-sensor", "ward-manager")
            assert all("stats-generator" in path for path in paths)

    def test_declassification_recorded_before_release(self, system):
        system.run(hours=1)
        system.stats_generator.publish_statistics()
        declass = system.hospital.audit.records(
            kind=RecordKind.DECLASSIFICATION, actor="stats-generator"
        )
        releases = system.hospital.audit.records(
            kind=RecordKind.FLOW_ALLOWED, actor="stats-generator",
            subject="ward-manager",
        )
        assert declass and releases
        assert min(r.timestamp for r in declass) <= min(
            r.timestamp for r in releases
        )

    def test_empty_window_publishes_nothing(self):
        world = IoTWorld(seed=1)
        system = HomeMonitoringSystem(
            world, [PatientProfile("solo", device_standard=True)]
        )
        assert system.stats_generator.publish_statistics() is None


class TestFig7Emergency:
    def test_emergency_detected_and_policy_fired(self, system):
        system.run(hours=2)
        assert "ann" in system.emergencies_detected
        assert any("ann" in text for __, text in system.alerts)

    def test_doctor_wired_in_by_reconfiguration(self, system):
        assert system.hospital.bus.channels_of(system.emergency_doctor) == []
        system.run(hours=2)
        channels = system.hospital.bus.channels_of(system.emergency_doctor)
        assert channels
        assert channels[0].source.name == "ann-analyser"

    def test_sensor_actuated_to_emergency_rate(self, system):
        system.run(hours=2)
        assert system.patients["ann"].sensor.interval == EMERGENCY_INTERVAL
        # the healthy patient's sensor is untouched
        assert system.patients["zeb"].sensor.interval == 300.0

    def test_no_emergency_without_episode(self):
        world = IoTWorld(seed=3)
        system = HomeMonitoringSystem(
            world, [PatientProfile("calm", device_standard=True)],
            sample_interval=300.0,
        )
        system.run(hours=4)
        assert system.emergencies_detected == []

    def test_reconfiguration_trail_in_audit(self, system):
        system.run(hours=2)
        reconfigs = system.hospital.audit.records(kind=RecordKind.RECONFIGURATION)
        assert any(r.detail.get("command") == "map" for r in reconfigs)
        assert system.hospital.audit.verify()
