"""Assisted living: break-glass override and ad hoc authority."""

import pytest

from repro.apps import RESIDENT, AssistedLivingSystem
from repro.audit import RecordKind
from repro.iot import IoTWorld


@pytest.fixture
def system():
    return AssistedLivingSystem(IoTWorld(seed=11))


class TestNormalOperation:
    def test_no_emergency_access_by_default(self, system):
        assert system.emergency_channels() == 0

    def test_data_stays_home(self, system):
        system.world.run(seconds=600)
        assert len(system.home_hub.received) > 0
        assert len(system.emergency_team.received) == 0


class TestBreakGlass:
    def test_emergency_replugs_streams(self, system):
        system.trigger_emergency(reading=30.0)
        assert system.emergency_channels() == 1
        assert system.home.context.get("emergency.active") is True

    def test_notifications_sent(self, system):
        system.trigger_emergency(reading=30.0)
        channels = [ch for ch, __ in system.alerts]
        assert "emergency-services" in channels
        assert "family" in channels

    def test_team_receives_data_during_emergency(self, system):
        system.trigger_emergency(reading=30.0)
        system.world.run(seconds=600)
        assert len(system.emergency_team.received) > 0

    def test_normal_reading_does_not_trigger(self, system):
        system.trigger_emergency(reading=70.0)  # condition reading < 45
        assert system.emergency_channels() == 0

    def test_stand_down_revokes_access(self, system):
        system.trigger_emergency(reading=30.0)
        before = len(system.emergency_team.received)
        system.resolve_emergency()
        assert system.emergency_channels() == 0
        assert system.home.context.get("emergency.active") is False
        system.world.run(seconds=600)
        assert len(system.emergency_team.received) == before

    def test_break_glass_fully_audited(self, system):
        system.trigger_emergency(reading=30.0)
        system.resolve_emergency()
        log = system.home.audit
        assert log.verify()
        fired = log.records(kind=RecordKind.POLICY_FIRED)
        reconfigs = log.records(kind=RecordKind.RECONFIGURATION)
        assert len(fired) >= 2            # break-glass + stand-down
        assert any(r.detail.get("command") == "map" for r in reconfigs)
        assert any(r.detail.get("command") == "unmap" for r in reconfigs)

    def test_detection_from_live_signal(self):
        """Wire a collapsing signal through the hub's detector."""
        system = AssistedLivingSystem(IoTWorld(seed=2))
        system.motion_sensor.source = lambda t: 30.0  # collapse
        system.world.run(seconds=300)
        assert system.falls_detected > 0
        assert system.emergency_channels() == 1


class TestAdHocAuthority:
    def test_nurse_authority_is_location_gated(self, system):
        assert not system.nurse_may_reconfigure()
        system.nurse_arrives()
        assert system.nurse_may_reconfigure()
        system.nurse_leaves()
        assert not system.nurse_may_reconfigure()

    def test_resident_always_has_authority(self, system):
        assert system.home.authority.may_author_policy(RESIDENT, "ada-wearable")
