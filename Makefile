PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test bench bench-all

# Tier-1 verification: the whole suite, fail-fast.
verify:
	$(PYTHON) -m pytest -x -q

# Unit tests only (fast inner loop; skips the benchmark figures).
test:
	$(PYTHON) -m pytest tests/ -x -q

# Quick bench: the decision-plane microbenchmarks, with the report rows
# printed and BENCH_decision_plane.json regenerated.
bench:
	$(PYTHON) -m pytest benchmarks/test_scale_decision_cache.py -q -s

# The full figure/scale benchmark suite.
bench-all:
	$(PYTHON) -m pytest benchmarks/ -q -s
