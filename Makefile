PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test lint bench bench-wire bench-audit bench-federation \
	bench-workers bench-query bench-transport bench-verify \
	bench-analysis bench-all test-concurrency

# Tier-1 verification: the whole suite, fail-fast.  The bench smoke
# list (decision-plane + wire-plane scale benches, with their ratio
# asserts) is part of the suite, so verify exercises both.
verify:
	$(PYTHON) -m pytest -x -q

# Unit tests only (fast inner loop; skips the benchmark figures).
test:
	$(PYTHON) -m pytest tests/ -x -q

# Lint floor: bytecode-compile everything, then ruff's deterministic
# error set (see ruff.toml).  ruff is optional locally; CI installs it.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; compileall-only lint"; \
	fi

# Quick bench: the decision-plane microbenchmarks, with the report rows
# printed and BENCH_decision_plane.json regenerated.
bench:
	$(PYTHON) -m pytest benchmarks/test_scale_decision_cache.py -q -s

# Wire-plane bench: mask vs tag-set envelopes on the cross-machine
# path; regenerates BENCH_wire_masks.json.
bench-wire:
	$(PYTHON) -m pytest benchmarks/test_scale_wire.py -q -s

# Audit-plane bench: staged spine emission vs synchronous hash-chain
# appends across 1/4/16 sources; regenerates BENCH_audit_plane.json.
bench-audit:
	$(PYTHON) -m pytest benchmarks/test_scale_audit.py -q -s

# Federation-plane bench: gossip convergence rounds/bytes vs pairwise
# handshakes, table compression, post-convergence throughput, and the
# cross-domain pinboard scenario; regenerates BENCH_federation.json.
bench-federation:
	$(PYTHON) -m pytest benchmarks/test_scale_federation.py -q -s

# Worker-plane bench: enforcing-publish throughput and decision-cache
# hit rate at 1/4/16 real worker threads on shared vs. disjoint tag
# working sets; regenerates BENCH_worker_scaling.json.
bench-workers:
	$(PYTHON) -m pytest benchmarks/test_scale_workers.py -q -s

# Query-plane bench: tiered (spill) append throughput vs all-in-memory,
# index-probe selectivity, cold verification and cross-tier identity at
# 10^6 records; regenerates BENCH_audit_query.json.  Scale down with
# QUERY_BENCH_RECORDS=20000 for a smoke run.
bench-query:
	$(PYTHON) -m pytest benchmarks/test_scale_query.py -q -s -p no:randomly

# Transport-plane bench: coalesced vs per-datagram delivery A/B — e2e
# enforcing ring publish at 2/8/16 machines and mesh convergence under
# streaming load at 16/32 substrates; regenerates BENCH_transport.json.
# Scale down with TRANSPORT_BENCH_MSGS / TRANSPORT_BENCH_LOAD and
# demote the wall-clock gates with TRANSPORT_BENCH_STRICT=0 for smoke.
bench-transport:
	$(PYTHON) -m pytest benchmarks/test_scale_transport.py -q -s

# Verification-plane bench: parallel deep verify vs serial, and
# steady-state incremental (watermark-cursor) verify vs full recompute
# at 10^6 records; regenerates BENCH_audit_verify.json.  Scale down
# with VERIFY_BENCH_RECORDS=20000 and demote the wall-clock gates with
# VERIFY_BENCH_STRICT=0 for smoke (the parallel gate also self-demotes
# below 4 CPUs).
bench-verify:
	$(PYTHON) -m pytest benchmarks/test_scale_verify.py -q -s -p no:randomly

# Analysis-plane bench: compile a 16-node federation into the flow
# graph, sweep all-pairs reachability, catch the seeded forbidden
# declassifier chain at the pre-deploy gate, and measure the decision-
# cache cold-start hit-rate delta from pre-warming; regenerates
# BENCH_analysis.json.  Scale down with ANALYSIS_BENCH_NODES=8 for a
# smoke run (the functional gates hold at every scale).
bench-analysis:
	$(PYTHON) -m pytest benchmarks/test_scale_analysis.py -q -s -p no:randomly

# The real-thread stress tests of the contention-proofed planes
# (decision cache snapshot/epoch protocol, audit-spine ring drains).
test-concurrency:
	$(PYTHON) -m pytest -m concurrency -q

# The full figure/scale benchmark suite.
bench-all:
	$(PYTHON) -m pytest benchmarks/ -q -s
