"""Anti-entropy gossip of wire vocabularies across federated substrates.

The wire plane (``repro/ifc/wire.py``, ``docs/wire_plane.md``) lets two
substrates agree a tag↔bit vocabulary through a pairwise 3-step
handshake.  Federations of N administrative domains would need
N(N−1)/2 such handshakes, each shipping whole tag tables — the O(N²)
cost the ROADMAP queues for replacement.  This module disseminates the
same state *transitively*: versioned digests, pull-on-mismatch, and
compressed deltas, in the anti-entropy style semantic/context
middleware uses to scale metadata agreement (Perera et al.;
Vahdat-Nejad).

What gossips (all monotone, so max-merge is sound):

* **tables** — each substrate is the *origin* of its own tag table
  (append-only); nodes relay third-party tables they hold, so content
  reaches everyone in O(log N) rounds without all pairs ever talking;
* **holdings** — a node → origin → version matrix ("node X holds v of
  origin Y's table").  A row reaching origin Y lets Y's codec confirm
  X (:meth:`~repro.ifc.wire.WireCodec.note_confirmed`) and start
  masking to X — the handshake's ACK, learned third-hand;
* **checkpoint claims** — each domain's audit-spine head
  (:class:`~repro.audit.distributed.CheckpointClaim`), pinned by every
  other domain's :class:`~repro.audit.distributed.FederationPinboard`
  so no domain can silently rewrite or truncate pruned history.

All three legs of an exchange ride the network as ``kind="gossip"``
datagrams, so when a member host has the coalescing transport enabled
(``Network.configure_transport`` / :meth:`GossipMesh.configure_transport`;
``docs/transport_plane.md``) its DIGEST/REPLY/DELTA traffic flows
through the same per-``(source, destination, kind)`` outbox as data —
anti-entropy rounds then cost one scheduled delivery event per
``(peer, window)`` instead of one per datagram.

One round, per node pair ``(A, B)`` selected by dimension exchange
(round ``r`` partners each node with the one ``2^(r-1 mod ⌈log₂N⌉)``
positions around the sorted host ring):

```
A -- GossipDigest(holdings, claims) --------------------------> B
A <- GossipReply(holdings, wants, blocks I'm ahead on, claims) - B
A -- GossipDelta(blocks B asked for, holdings) ----------------> B
```

Deltas ship :class:`~repro.ifc.wire.TagBlock` compressed slices, so a
10k-tag vocabulary costs bytes proportional to its *structure*, not its
string length.  When a node pushes blocks it optimistically marks the
receiver as holding them; on a lossless simulated network that is exact
by the end of the round, and under control-datagram loss it is
self-healing: the receiver's own ``wants`` are always computed from
what it *really* stores, so the next round re-pulls the content, and a
mask sent early is dropped-and-audited by the receiver
(``dropped_undecodable``) — delayed delivery, never a mislabel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.audit.distributed import CheckpointClaim, FederationPinboard
from repro.audit.records import RecordKind
from repro.audit.spine import bind_source
from repro.ifc.wire import TagBlock, WireCodec

#: node → origin → table version held (the gossiped knowledge matrix).
Holdings = Mapping[str, Mapping[str, int]]


def _holdings_size(holdings: Holdings) -> int:
    size = 4
    for node, row in holdings.items():
        size += len(node) + 2
        for origin in row:
            size += len(origin) + 2 + 4
    return size


def _claims_size(claims: Sequence[CheckpointClaim]) -> int:
    # domain (length-prefixed) + position + issued_at + 32-byte digest.
    return sum(len(c.domain) + 2 + 4 + 8 + 32 for c in claims)


# -- control payloads (ride the network as kind="gossip" datagrams) ----------


@dataclass(frozen=True)
class GossipControl:
    """Base class for gossip datagram payloads (dispatch marker)."""


@dataclass(frozen=True)
class GossipDigest(GossipControl):
    """Round opener: the sender's knowledge matrix and freshest claims."""

    sender: str
    holdings: Holdings
    claims: Tuple[CheckpointClaim, ...] = ()

    @property
    def wire_size(self) -> int:
        return len(self.sender) + 2 + _holdings_size(self.holdings) + _claims_size(self.claims)


@dataclass(frozen=True)
class GossipReply(GossipControl):
    """Push-pull answer: blocks the responder is ahead on, pulls
    (``wants``: origin → version held) for where it is behind."""

    sender: str
    holdings: Holdings
    wants: Mapping[str, int]
    blocks: Mapping[str, TagBlock]
    claims: Tuple[CheckpointClaim, ...] = ()

    @property
    def wire_size(self) -> int:
        size = len(self.sender) + 2 + _holdings_size(self.holdings)
        size += _claims_size(self.claims)
        size += sum(len(o) + 2 + 4 for o in self.wants)
        size += sum(len(o) + 2 + b.wire_size for o, b in self.blocks.items())
        return size


@dataclass(frozen=True)
class GossipDelta(GossipControl):
    """Round closer: the blocks the reply pulled, plus the sender's
    post-application holdings (it has absorbed the reply's pushes)."""

    sender: str
    holdings: Holdings
    blocks: Mapping[str, TagBlock]

    @property
    def wire_size(self) -> int:
        size = len(self.sender) + 2 + _holdings_size(self.holdings)
        size += sum(len(o) + 2 + b.wire_size for o, b in self.blocks.items())
        return size


@dataclass
class NodeStats:
    """Per-node gossip counters."""

    digests_sent: int = 0
    replies_sent: int = 0
    deltas_sent: int = 0
    bytes_sent: int = 0
    blocks_applied: int = 0
    tags_learned: int = 0
    delta_gaps: int = 0
    claims_pinned: int = 0
    claim_conflicts: int = 0


class MeshNode:
    """One federated substrate's end of the gossip mesh.

    Wraps the substrate's :class:`~repro.ifc.wire.WireCodec` (the node
    is the authoritative *origin* for that codec's interner) plus the
    relay store of third-party tables, the knowledge matrix, and the
    domain's :class:`~repro.audit.distributed.FederationPinboard`.

    Handlers (:meth:`handle_digest` / :meth:`handle_reply` /
    :meth:`handle_delta`) are transport-free — they return the payload
    to send back, or ``None`` — so property tests can drive arbitrary
    interleavings, duplications and drops directly; :meth:`receive`
    adapts them to network datagrams.
    """

    def __init__(
        self,
        host: str,
        codec: WireCodec,
        spine=None,
        mesh: Optional["GossipMesh"] = None,
        audit=None,
        pin_retain_every: Optional[int] = None,
    ):
        self.host = host
        self.codec = codec
        self.spine = spine
        self.mesh = mesh
        self.audit = audit if audit is not None else bind_source(spine, "federation")
        self.pinboard = FederationPinboard(host, retain_every=pin_retain_every)
        self.stats = NodeStats()
        #: The vocabulary this member *brought* to the federation (its
        #: interner length at join).  Convergence is defined over
        #: baselines: learning a peer's tags grows the local interner
        #: (``merge_table``), so "everyone holds everyone's current
        #: table" is a moving target — tags interned after joining ride
        #: the ordinary delta machinery instead, exactly like
        #: post-handshake growth in the pairwise wire plane.
        self.baseline = len(codec.interner)
        #: origin → relayed tag tuple (own origin lives in the interner).
        self._store: Dict[str, Tuple[str, ...]] = {}
        #: node → origin → version (remote rows, max-merged from gossip).
        self._knowledge: Dict[str, Dict[str, int]] = {}
        #: domain → freshest accepted claim (for re-gossip).
        self._claims: Dict[str, CheckpointClaim] = {}

    def __repr__(self) -> str:
        return f"<MeshNode {self.host} origins={len(self.origins())}>"

    # -- local state -------------------------------------------------------

    def origins(self) -> List[str]:
        """Every origin this node holds table content for."""
        known = set(self._store)
        known.add(self.host)
        return sorted(known)

    def tags_known(self, origin: str) -> Tuple[str, ...]:
        """The slice of ``origin``'s table this node holds."""
        if origin == self.host:
            return self.codec.interner.export_table()
        return self._store.get(origin, ())

    def version_of(self, origin: str) -> int:
        if origin == self.host:
            return len(self.codec.interner)
        return len(self._store.get(origin, ()))

    def _own_row(self) -> Dict[str, int]:
        return {origin: self.version_of(origin) for origin in self.origins()}

    def _matrix(self) -> Dict[str, Dict[str, int]]:
        matrix = {node: dict(row) for node, row in self._knowledge.items()}
        matrix[self.host] = self._own_row()
        return matrix

    def _claims_out(self) -> Tuple[CheckpointClaim, ...]:
        if self.spine is not None:
            own = CheckpointClaim.of(
                self.host, self.spine, issued_at=self._now()
            )
            self._claims[self.host] = own
        return tuple(self._claims[d] for d in sorted(self._claims))

    def _now(self) -> float:
        if self.mesh is not None:
            return self.mesh.sim.now()
        return 0.0

    # -- absorption --------------------------------------------------------

    def _note_origin(self, origin: str) -> None:
        """Register an origin we heard of through gossip.

        Even a zero-tag origin gets a store entry and an (empty)
        translator — the same state a pairwise handshake's ``_learn``
        leaves behind — so our holdings row explicitly claims version 0
        of it (confirming empty-table peers, where ``confirmed=0`` and
        ``None`` differ) and its all-clear mask 0 decodes.
        """
        if origin == self.host or origin in self._store:
            return
        self._store[origin] = ()
        self.codec.learn_table(origin, 0, ())

    def _absorb_holdings(self, holdings: Holdings) -> None:
        """Max-merge remote rows; a row about *us* is ignored (we are
        authoritative), a row's entry about our origin confirms the row's
        node for masking."""
        for node, row in holdings.items():
            self._note_origin(node)
            if node == self.host:
                continue
            mine = self._knowledge.setdefault(node, {})
            for origin, version in row.items():
                self._note_origin(origin)
                if origin not in mine or version > mine[origin]:
                    mine[origin] = version
            if self.host in mine:
                # The wire-plane invariant: masks only use bits the peer
                # holds.  Tables are append-only so the claim is monotone.
                self.codec.note_confirmed(node, mine[self.host])

    def _absorb_claims(self, claims: Sequence[CheckpointClaim]) -> None:
        for claim in claims:
            if claim.domain == self.host:
                continue
            fresh = self._claims.get(claim.domain)
            if self.pinboard.pin(claim):
                self.stats.claims_pinned += 1
                if fresh is None or claim.position > fresh.position:
                    self._claims[claim.domain] = claim
                if fresh is None and self.audit is not None:
                    self.audit.append(
                        RecordKind.FEDERATION_PIN,
                        self.host,
                        claim.domain,
                        {"position": claim.position,
                         "head": claim.head_digest[:16]},
                    )
            else:
                # Equivocation: the domain showed someone a different
                # history for a position we already pinned.
                self.stats.claim_conflicts += 1
                if self.audit is not None:
                    self.audit.append(
                        RecordKind.FEDERATION_PIN,
                        self.host,
                        claim.domain,
                        {"conflict": True, "position": claim.position},
                    )

    def _apply_block(self, origin: str, block: TagBlock) -> None:
        """Extend our slice of ``origin``'s table with a gossiped delta."""
        if origin == self.host:
            return  # we are the origin; nobody teaches us our own table
        have = self.version_of(origin)
        if block.base > have:
            # A gap: an earlier delta is missing.  Our wants are always
            # computed from what we actually store, so the next round
            # re-pulls from our true version — drop, don't guess.
            self.stats.delta_gaps += 1
            return
        tags = block.tags()
        new = tags[have - block.base :]
        if not new:
            return
        self._store[origin] = self._store.get(origin, ()) + tuple(new)
        # Keep the codec's per-peer translator in lock-step: data masks
        # arriving from `origin` must remap through these positions.
        self.codec.learn_table(origin, have, new)
        self.stats.blocks_applied += 1
        self.stats.tags_learned += len(new)

    def _blocks_for(
        self, their_row: Mapping[str, int], optimistic_for: Optional[str]
    ) -> Dict[str, TagBlock]:
        """Compressed deltas for every origin we are ahead of ``their_row``
        on.  ``optimistic_for`` marks the receiving node as holding what
        we push (exact on lossless transport; self-healing otherwise —
        see module docstring)."""
        blocks: Dict[str, TagBlock] = {}
        for origin in self.origins():
            mine = self.version_of(origin)
            theirs = their_row.get(origin, 0)
            if mine > theirs:
                slice_ = self.tags_known(origin)[theirs:]
                blocks[origin] = TagBlock.compress(slice_, base=theirs)
                if optimistic_for is not None:
                    row = self._knowledge.setdefault(optimistic_for, {})
                    if mine > row.get(origin, 0):
                        row[origin] = mine
        return blocks

    # -- the exchange ------------------------------------------------------

    def make_digest(self) -> GossipDigest:
        """Open an exchange: our whole knowledge matrix plus claims."""
        self.stats.digests_sent += 1
        return GossipDigest(
            sender=self.host,
            holdings=self._matrix(),
            claims=self._claims_out(),
        )

    def handle_digest(self, digest: GossipDigest) -> GossipReply:
        """Absorb a digest; answer with pushes (their row is behind ours)
        and pulls (``wants`` where ours is behind theirs)."""
        self._absorb_claims(digest.claims)
        sender_row = digest.holdings.get(digest.sender, {})
        blocks = self._blocks_for(sender_row, optimistic_for=digest.sender)
        self._absorb_holdings(digest.holdings)
        wants = {
            origin: self.version_of(origin)
            for origin, version in sender_row.items()
            if version > self.version_of(origin)
        }
        self.stats.replies_sent += 1
        return GossipReply(
            sender=self.host,
            holdings=self._matrix(),
            wants=wants,
            blocks=blocks,
            claims=self._claims_out(),
        )

    def handle_reply(self, reply: GossipReply) -> Optional[GossipDelta]:
        """Apply the reply's pushes, then serve its pulls."""
        self._absorb_claims(reply.claims)
        for origin, block in reply.blocks.items():
            self._apply_block(origin, block)
        blocks = self._blocks_for(reply.wants, optimistic_for=reply.sender)
        self._absorb_holdings(reply.holdings)
        if not blocks:
            return None
        self.stats.deltas_sent += 1
        return GossipDelta(
            sender=self.host, holdings=self._matrix(), blocks=blocks
        )

    def handle_delta(self, delta: GossipDelta) -> None:
        """Close the exchange: apply the pulled blocks."""
        for origin, block in delta.blocks.items():
            self._apply_block(origin, block)
        self._absorb_holdings(delta.holdings)

    # -- transport adaptation ---------------------------------------------

    def receive(self, datagram) -> None:
        """Network entry point: dispatch a gossip datagram, sending any
        response back through the mesh."""
        payload = datagram.payload
        reply: Optional[GossipControl] = None
        if isinstance(payload, GossipDigest):
            reply = self.handle_digest(payload)
        elif isinstance(payload, GossipReply):
            reply = self.handle_reply(payload)
        elif isinstance(payload, GossipDelta):
            self.handle_delta(payload)
        if reply is not None and self.mesh is not None:
            self.mesh._send(self, datagram.source, reply)


@dataclass
class MeshStats:
    """Mesh-wide counters (sum of node sends plus round bookkeeping)."""

    rounds: int = 0
    introductions: int = 0

    def merge_nodes(self, nodes) -> Dict[str, int]:
        total = {
            "digests": 0, "replies": 0, "deltas": 0,
            "bytes": 0, "tags_learned": 0,
        }
        for node in nodes:
            total["digests"] += node.stats.digests_sent
            total["replies"] += node.stats.replies_sent
            total["deltas"] += node.stats.deltas_sent
            total["bytes"] += node.stats.bytes_sent
            total["tags_learned"] += node.stats.tags_learned
        return total


class GossipMesh:
    """The federation plane: N substrates gossiping vocabulary deltas and
    audit checkpoints over the simulated network.

    Rounds are scheduled on the simulation's own event queue
    (:meth:`start` uses ``Simulator.schedule_every``), so anti-entropy
    runs as deterministic background traffic exactly like the audit
    spine's clock-tick drains.  Partner selection is dimension exchange
    on the sorted host ring: round ``r`` pairs each node with the one
    ``2^((r-1) mod ⌈log₂ N⌉)`` positions ahead, which converges content
    in ⌈log₂ N⌉ rounds instead of the N−1 a naive ring needs.

    Example::

        mesh = GossipMesh(network, sim, interval=0.5)
        for substrate in substrates:
            mesh.join_substrate(substrate)
        rounds = mesh.run_until_converged()
        assert mesh.converged()
    """

    def __init__(self, network, sim, interval: float = 1.0, name: str = "mesh"):
        self.network = network
        self.sim = sim
        self.interval = interval
        self.name = name
        self.stats = MeshStats()
        self._nodes: Dict[str, MeshNode] = {}
        self._cancel = None

    # -- membership --------------------------------------------------------

    def nodes(self) -> List[MeshNode]:
        return [self._nodes[h] for h in sorted(self._nodes)]

    def node(self, host: str) -> MeshNode:
        return self._nodes[host]

    def join(
        self,
        host: str,
        codec: WireCodec,
        spine=None,
        register_host: bool = True,
        pin_retain_every: Optional[int] = None,
    ) -> MeshNode:
        """Add a member.  ``register_host`` adds a network host whose
        receiver is the node itself (codec-only members, e.g. benches);
        substrates instead route ``kind="gossip"`` datagrams to the node
        from their own receiver (:meth:`join_substrate`).
        ``pin_retain_every`` sets the member pinboard's retention policy
        (see :class:`~repro.audit.distributed.FederationPinboard`)."""
        if host in self._nodes:
            return self._nodes[host]
        node = MeshNode(
            host, codec, spine=spine, mesh=self,
            pin_retain_every=pin_retain_every,
        )
        self._nodes[host] = node
        if register_host:
            self.network.add_host(host, node.receive)
        return node

    def join_substrate(
        self, substrate, pin_retain_every: Optional[int] = None
    ) -> MeshNode:
        """Enrol a :class:`~repro.middleware.substrate.MessagingSubstrate`:
        its codec becomes the node's origin table, its machine's audit
        spine is claimed/pinned, and the substrate forwards gossip
        datagrams to the node."""
        node = self.join(
            substrate.machine.hostname,
            substrate.wire,
            spine=substrate.machine.audit,
            register_host=False,
            pin_retain_every=pin_retain_every,
        )
        substrate.attach_gossip(node)
        return node

    def configure_transport(
        self, coalesce_window: float = 0.0, max_batch: int = 64
    ) -> None:
        """Enable the network's coalescing outbox for every current
        member host, so gossip DIGEST/REPLY/DELTA datagrams (and the
        member's data traffic) batch per ``(source, destination, kind)``
        flight window.  ``coalesce_window`` should stay well below the
        round ``interval`` — a window approaching the interval delays a
        round's replies into the next round.
        """
        for host in self._nodes:
            self.network.configure_transport(
                coalesce_window, max_batch, host=host
            )

    # -- rounds ------------------------------------------------------------

    def _send(self, node: MeshNode, destination: str, payload: GossipControl) -> None:
        size = payload.wire_size
        node.stats.bytes_sent += size
        self.network.send(node.host, destination, payload, kind="gossip", size=size)

    def _round(self) -> None:
        """One anti-entropy round: every node opens one exchange with its
        dimension-exchange partner for this round."""
        hosts = sorted(self._nodes)
        n = len(hosts)
        if n < 2:
            return
        self.stats.rounds += 1
        dims = max(1, math.ceil(math.log2(n)))
        step = 1 << ((self.stats.rounds - 1) % dims)
        for index, host in enumerate(hosts):
            partner = hosts[(index + step) % n]
            node = self._nodes[host]
            self._send(node, partner, node.make_digest())

    def start(self) -> None:
        """Schedule recurring rounds on the simulator (idempotent)."""
        if self._cancel is None:
            self._cancel = self.sim.schedule_every(
                self.interval, self._round, label=f"{self.name}:round"
            )

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def run_until_converged(self, max_rounds: int = 64) -> int:
        """Drive rounds synchronously (advancing the simulator to deliver
        each round's datagrams) until :meth:`converged`; returns the
        rounds used.  Raises ``RuntimeError`` past ``max_rounds``."""
        rounds = 0
        while not self.converged():
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"mesh not converged after {max_rounds} rounds"
                )
            self._round()
            self.sim.run_for(self.interval)
            rounds += 1
        return rounds

    def introduce(self, querier_host: str, found_hosts) -> int:
        """Discovery piggyback: the querier immediately opens exchanges
        with the hosts it just discovered, instead of waiting for the
        next scheduled round (the 'handshake folded into discovery').
        Returns how many exchanges were opened."""
        node = self._nodes.get(querier_host)
        if node is None:
            return 0
        opened = 0
        for host in sorted(set(found_hosts)):
            if host == querier_host or host not in self._nodes:
                continue
            self._send(node, host, node.make_digest())
            self.stats.introductions += 1
            opened += 1
        return opened

    # -- observation -------------------------------------------------------

    def converged(self) -> bool:
        """Full federation-vocabulary convergence, every pair masking.

        For every ordered pair ``(A, B)``: A can translate everything B
        *brought* to the federation (A's slice of B's table covers B's
        baseline), and A may mask its own brought vocabulary to B (B
        confirmed ≥ A's baseline).  Tags interned after joining —
        including a node's interner growing as it learns peers' tags —
        re-sync through deltas/resyncs, as post-handshake growth always
        has.
        """
        nodes = self.nodes()
        for node in nodes:
            for other in nodes:
                if node is other:
                    continue
                if node.version_of(other.host) < other.baseline:
                    return False
                state = node.codec.peer(other.host)
                if state.confirmed is None:
                    return False
                if state.confirmed < node.baseline:
                    return False
        return True

    def control_bytes(self) -> int:
        """Total gossip bytes shipped so far (all nodes)."""
        return sum(node.stats.bytes_sent for node in self.nodes())

    def pinboards(self) -> Dict[str, FederationPinboard]:
        return {host: node.pinboard for host, node in sorted(self._nodes.items())}

    def verify_federation(
        self,
        mode: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, Dict[str, str]]:
        """Every pinboard's verdict over every *other* member's live spine
        — the cross-domain tamper check (see
        :meth:`~repro.audit.distributed.FederationPinboard.verify`).

        ``mode`` (``"incremental"`` / ``"deep"``) optionally adds each
        spine's own watermark-aware chain check to the pin comparison;
        incremental is cheap enough to run every round.
        """
        spines = {
            host: node.spine
            for host, node in self._nodes.items()
            if node.spine is not None
        }
        return {
            host: node.pinboard.verify(spines, mode=mode, workers=workers)
            for host, node in sorted(self._nodes.items())
        }
