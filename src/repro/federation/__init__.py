"""The federation plane: gossiped wire vocabularies and cross-domain
checkpoint pinning (``docs/federation_plane.md``).

Public API::

    from repro.federation import (
        GossipMesh, MeshNode, MeshStats, NodeStats,
        GossipControl, GossipDigest, GossipReply, GossipDelta,
        CheckpointClaim, FederationPinboard, PinConflict,
    )
"""

from repro.audit.distributed import (
    CheckpointClaim,
    FederationPinboard,
    PinConflict,
)
from repro.federation.gossip import (
    GossipControl,
    GossipDelta,
    GossipDigest,
    GossipMesh,
    GossipReply,
    MeshNode,
    MeshStats,
    NodeStats,
)

__all__ = [
    "CheckpointClaim",
    "FederationPinboard",
    "PinConflict",
    "GossipControl",
    "GossipDelta",
    "GossipDigest",
    "GossipMesh",
    "GossipReply",
    "MeshNode",
    "MeshStats",
    "NodeStats",
]
