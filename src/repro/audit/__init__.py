"""Audit, provenance and compliance (§8.3, Challenge 6, Fig. 11)."""

from repro.audit.records import AuditRecord, RecordKind, record_matches, record_tags
from repro.audit.log import GENESIS_DIGEST, AuditLog, RecorderMixin
from repro.audit.storage import (
    SealedSegment,
    SegmentIndex,
    SegmentStore,
)
from repro.audit.spine import (
    AuditSegment,
    AuditSpine,
    SpineEmitter,
    bind_source,
)
from repro.audit.sink import AuditSink
from repro.audit.query import AuditQuery, QueryStats
from repro.audit.verify import VerifyStats
from repro.audit.provenance import (
    EdgeKind,
    NodeKind,
    ProvenanceGraph,
    ProvenanceQueryResult,
    graph_from_log,
)
from repro.audit.compliance import (
    ComplianceAuditor,
    ComplianceReport,
    Finding,
    all_accesses_consented,
    declassification_precedes_flows,
    denial_rate_below,
    no_flows_to,
)
from repro.audit.visualise import (
    to_dot,
    to_text_tree,
)
from repro.audit.distributed import (
    AuditCollector,
    AuditGap,
    CheckpointClaim,
    FederationPinboard,
    OffloadReceipt,
    PinConflict,
)

__all__ = [
    "AuditRecord",
    "RecordKind",
    "record_matches",
    "record_tags",
    "GENESIS_DIGEST",
    "AuditLog",
    "RecorderMixin",
    "AuditSegment",
    "AuditSink",
    "AuditSpine",
    "AuditQuery",
    "QueryStats",
    "VerifyStats",
    "SealedSegment",
    "SegmentIndex",
    "SegmentStore",
    "SpineEmitter",
    "bind_source",
    "EdgeKind",
    "NodeKind",
    "ProvenanceGraph",
    "ProvenanceQueryResult",
    "graph_from_log",
    "ComplianceAuditor",
    "ComplianceReport",
    "Finding",
    "all_accesses_consented",
    "declassification_precedes_flows",
    "denial_rate_below",
    "no_flows_to",
    "AuditCollector",
    "AuditGap",
    "CheckpointClaim",
    "FederationPinboard",
    "OffloadReceipt",
    "PinConflict",
    "to_dot",
    "to_text_tree",
]
