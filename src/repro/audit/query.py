"""The audit-query plane: historical context query over both tiers.

Context-aware middleware surveys treat historical context query as a
first-class middleware service, not an afterthought — "every flow that
touched tag ``medical:ann`` this hour" is the question compliance,
forensics and policy-feedback tooling actually ask, and a million-record
chain cannot answer it by iterating the whole stream.

:class:`AuditQuery` wraps any :class:`~repro.audit.sink.AuditSink`:

* over a tiered :class:`~repro.audit.spine.AuditSpine` it rides the
  sink's own index-backed ``query()`` — per-segment
  :class:`~repro.audit.storage.SegmentIndex` probes decide which sealed
  segments to scan, so cold spill files are loaded only when their
  index says they can match;
* over a plain :class:`~repro.audit.log.AuditLog` (or any sink without
  a ``query`` method) it falls back to a flat scan with the same
  :func:`~repro.audit.records.record_matches` predicate — identical
  results, just without the index short-circuit.

Every call fills :attr:`AuditQuery.last_stats` with a
:class:`QueryStats` (segments probed / scanned / skipped, cold loads,
records touched), which is how the benchmarks assert "segments scanned
≪ segments total" rather than hoping.

Example::

    q = AuditQuery(machine.audit)
    hour_flows = q.by_tag("medical:ann", since=now - 3600)
    denials = q.by_kind(RecordKind.FLOW_DENIED)
    alice = q.by_entity("alice")           # actor *or* subject
    assert q.last_stats.segments_scanned <= q.last_stats.segments_total
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.audit.records import AuditRecord, RecordKind, record_matches

__all__ = ["AuditQuery", "QueryStats"]


@dataclass
class QueryStats:
    """Per-query accounting of how much of the chain was touched.

    Attributes:
        segments_total: sealed segments the sink holds (index probes).
        segments_scanned: sealed segments whose records were examined.
        segments_skipped: sealed segments the index ruled out.
        cold_loads: spill files read to answer this query.
        records_scanned: records the filter predicate actually saw
            (sealed scans plus the always-scanned open tails).
    """

    segments_total: int = 0
    segments_scanned: int = 0
    segments_skipped: int = 0
    cold_loads: int = 0
    records_scanned: int = 0

    def reset(self) -> None:
        self.segments_total = 0
        self.segments_scanned = 0
        self.segments_skipped = 0
        self.cold_loads = 0
        self.records_scanned = 0


class AuditQuery:
    """Query façade over any audit sink, tiered or flat.

    The filter vocabulary is :func:`~repro.audit.records.record_matches`:
    ``kind`` / ``actor`` / ``subject`` / ``entity`` (actor *or*
    subject) / ``tag`` (qualified ``"namespace:name"``) / ``since`` /
    ``until``.  Results are always seq-ordered and equal to filtering
    the sink's flat record stream — the index layer only decides what
    *not* to read.
    """

    def __init__(self, sink):
        self.sink = sink
        #: Accounting for the most recent query (reset per call).
        self.last_stats = QueryStats()

    def __repr__(self) -> str:
        return f"<AuditQuery over {getattr(self.sink, 'name', self.sink)!r}>"

    def query(
        self,
        kind: Optional[RecordKind] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        entity: Optional[str] = None,
        tag: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[AuditRecord]:
        """Run one filtered query (see the class docstring)."""
        self.last_stats = stats = QueryStats()
        native = getattr(self.sink, "query", None)
        if callable(native):
            return native(
                kind=kind, actor=actor, subject=subject, entity=entity,
                tag=tag, since=since, until=until, stats=stats,
            )
        # Flat fallback: any sink is at least iterable.
        flush = getattr(self.sink, "flush", None)
        if callable(flush):
            flush()
        matched = []
        for record in self.sink:
            stats.records_scanned += 1
            if record_matches(
                record, kind, actor, subject, entity, tag, since, until
            ):
                matched.append(record)
        matched.sort(key=lambda r: r.seq)
        return matched

    # -- the convenience vocabulary ----------------------------------------

    def by_actor(self, actor: str, **filters) -> List[AuditRecord]:
        """Records performed by ``actor``."""
        return self.query(actor=actor, **filters)

    def by_entity(self, entity: str, **filters) -> List[AuditRecord]:
        """Records where ``entity`` is the actor *or* the subject."""
        return self.query(entity=entity, **filters)

    def by_tag(self, tag, **filters) -> List[AuditRecord]:
        """Records whose recorded contexts carry ``tag`` (a qualified
        ``"namespace:name"`` string or anything with ``.qualified``)."""
        qualified = getattr(tag, "qualified", tag)
        return self.query(tag=qualified, **filters)

    def by_kind(self, kind: RecordKind, **filters) -> List[AuditRecord]:
        """Records of one :class:`~repro.audit.records.RecordKind`."""
        return self.query(kind=kind, **filters)

    def time_range(
        self, since: Optional[float] = None, until: Optional[float] = None,
        **filters,
    ) -> List[AuditRecord]:
        """Records inside ``[since, until]`` (inclusive bounds)."""
        return self.query(since=since, until=until, **filters)
