"""Provenance graphs built from IFC audit logs (Fig. 11).

§8.3: "as both provenance and IFC concern the flow of information
between entities, the logs generated during IFC enforcement are a
natural source of provenance information."  Fig. 11 shows the graph
model: data items (F), processes (P) and agents (A), with
``Information Flow`` and ``Controlled by`` edges.

We build the graph on ``networkx`` (substituting for the paper's Neo4J)
and provide the forensic queries the paper motivates: ancestry
("how was this file generated?"), descendants/taint ("where did Ann's
reading end up?"), and leak investigation ("check for all flows relating
to that data", Fig. 6 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.audit.log import AuditLog
from repro.audit.records import AuditRecord, RecordKind


class NodeKind(str, Enum):
    """Fig. 11's node categories."""

    DATA = "data"         # F nodes
    PROCESS = "process"   # P nodes
    AGENT = "agent"       # A nodes


class EdgeKind(str, Enum):
    """Fig. 11's edge categories."""

    FLOW = "information-flow"
    CONTROL = "controlled-by"
    DERIVED = "derived-from"


@dataclass
class ProvenanceQueryResult:
    """Result of a forensic query: matched node ids plus the paths."""

    nodes: Set[str]
    paths: List[List[str]]


class ProvenanceGraph:
    """A directed provenance graph in the style of Fig. 11.

    Nodes carry ``kind`` (:class:`NodeKind`) and optional metadata;
    edges carry ``kind`` (:class:`EdgeKind`) and the timestamp of the
    underlying audit record.  Edges point in the direction information
    moved (source → target).
    """

    def __init__(self) -> None:
        self.graph = nx.MultiDiGraph()

    # -- construction -------------------------------------------------------

    def add_data(self, node_id: str, **meta) -> None:
        """Add a data item (F) node."""
        self.graph.add_node(node_id, kind=NodeKind.DATA, **meta)

    def add_process(self, node_id: str, **meta) -> None:
        """Add a process (P) node."""
        self.graph.add_node(node_id, kind=NodeKind.PROCESS, **meta)

    def add_agent(self, node_id: str, **meta) -> None:
        """Add an agent (A) node — the owner/manager of processes."""
        self.graph.add_node(node_id, kind=NodeKind.AGENT, **meta)

    def add_flow(self, source: str, target: str, timestamp: float = 0.0, **meta) -> None:
        """Record that information flowed source → target."""
        self._ensure(source)
        self._ensure(target)
        self.graph.add_edge(
            source, target, kind=EdgeKind.FLOW, timestamp=timestamp, **meta
        )

    def add_control(self, controller: str, controlled: str) -> None:
        """Record that an agent controls a process (Fig. 11 dashed edges)."""
        self._ensure(controller, NodeKind.AGENT)
        self._ensure(controlled)
        self.graph.add_edge(controller, controlled, kind=EdgeKind.CONTROL)

    def add_derivation(self, source: str, derived: str, timestamp: float = 0.0) -> None:
        """Record that one data item was derived from another."""
        self._ensure(source, NodeKind.DATA)
        self._ensure(derived, NodeKind.DATA)
        self.graph.add_edge(
            source, derived, kind=EdgeKind.DERIVED, timestamp=timestamp
        )

    def _ensure(self, node_id: str, kind: NodeKind = NodeKind.PROCESS) -> None:
        if node_id not in self.graph:
            self.graph.add_node(node_id, kind=kind)

    # -- queries -------------------------------------------------------------

    def _flow_subgraph(self) -> nx.MultiDiGraph:
        keep = [
            (u, v, k)
            for u, v, k, d in self.graph.edges(keys=True, data=True)
            if d.get("kind") in (EdgeKind.FLOW, EdgeKind.DERIVED)
        ]
        return self.graph.edge_subgraph(keep) if keep else nx.MultiDiGraph()

    def ancestry(self, node_id: str) -> Set[str]:
        """Everything that (transitively) contributed to ``node_id`` —
        "how was it created? by whom? how was it manipulated?" (§8.3)."""
        sub = self._flow_subgraph()
        if node_id not in sub:
            return set()
        return nx.ancestors(sub, node_id)

    def descendants(self, node_id: str) -> Set[str]:
        """Everything information from ``node_id`` may have reached —
        the taint set used in leak investigations."""
        sub = self._flow_subgraph()
        if node_id not in sub:
            return set()
        return nx.descendants(sub, node_id)

    def paths_between(
        self, source: str, target: str, max_paths: int = 100
    ) -> List[List[str]]:
        """All simple information-flow paths source → target."""
        sub = self._flow_subgraph()
        if source not in sub or target not in sub:
            return []
        simple = nx.DiGraph(
            (u, v) for u, v, d in sub.edges(data=True)
        )
        paths = []
        for path in nx.all_simple_paths(simple, source, target):
            paths.append(path)
            if len(paths) >= max_paths:
                break
        return paths

    def investigate_leak(self, data_node: str, unauthorised: Set[str]) -> ProvenanceQueryResult:
        """If personal data leaked (Fig. 6 discussion), find every path by
        which ``data_node`` could have reached an unauthorised party."""
        tainted = self.descendants(data_node)
        reached = tainted & unauthorised
        paths: List[List[str]] = []
        for sink in sorted(reached):
            paths.extend(self.paths_between(data_node, sink))
        return ProvenanceQueryResult(reached, paths)

    def controllers_of(self, node_id: str) -> Set[str]:
        """Agents controlling a node — liability apportionment support."""
        return {
            u
            for u, v, d in self.graph.in_edges(node_id, data=True)
            if d.get("kind") == EdgeKind.CONTROL
        }

    def node_kind(self, node_id: str) -> Optional[NodeKind]:
        """The kind of a node, or None if unknown."""
        if node_id not in self.graph:
            return None
        return self.graph.nodes[node_id].get("kind")

    def stats(self) -> Dict[str, int]:
        """Basic size statistics (for reports and benches)."""
        kinds = {k.value: 0 for k in NodeKind}
        for __, data in self.graph.nodes(data=True):
            kind = data.get("kind")
            if kind:
                kinds[kind.value] += 1
        return {
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            **kinds,
        }


def graph_from_log(log: AuditLog) -> ProvenanceGraph:
    """Build a provenance graph from an IFC audit log (§8.3).

    Allowed flows become FLOW edges; declassification/endorsement become
    a process node annotation plus a derivation edge when the record
    names a subject.  Denied flows are *not* edges (no information moved)
    but are attached as node annotations so investigators see attempts.
    """
    graph = ProvenanceGraph()
    for record in log:
        if record.kind == RecordKind.FLOW_ALLOWED:
            graph.add_flow(
                record.actor,
                record.subject,
                timestamp=record.timestamp,
                detail=dict(record.detail),
            )
        elif record.kind in (
            RecordKind.DECLASSIFICATION,
            RecordKind.ENDORSEMENT,
            RecordKind.CONTEXT_CHANGE,
        ):
            graph._ensure(record.actor)
            changes = graph.graph.nodes[record.actor].setdefault("context_changes", [])
            changes.append((record.timestamp, record.kind.value))
        elif record.kind == RecordKind.FLOW_DENIED:
            graph._ensure(record.actor)
            denials = graph.graph.nodes[record.actor].setdefault("denied_attempts", [])
            denials.append((record.timestamp, record.subject))
        elif record.kind == RecordKind.ENTITY_CREATED:
            graph._ensure(record.actor)
            if record.subject:
                graph.add_flow(record.actor, record.subject,
                               timestamp=record.timestamp, created=True)
    return graph
