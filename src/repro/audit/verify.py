"""The verification plane's accounting surface (``docs/audit_storage.md``).

Verification used to be an all-or-nothing recompute; with watermark
cursors and parallel deep sweeps it has *shape* — how many segments were
re-verified versus skipped, how many bytes were re-hashed, how long the
wall clock ran, how many watermarks were honoured or dropped.  Every
``verify_strict`` call fills one :class:`VerifyStats`; spines keep the
last one plus cumulative totals (:meth:`~repro.audit.spine.AuditSpine.
verify_stats`), and ``Deployment.stats()["verify"]`` rolls them up
fleet-wide.

This lives in its own module because both ends of the audit plane need
it: :mod:`repro.audit.storage` (which ``log`` must not import) and
:mod:`repro.audit.log` (which ``storage`` imports for the chain
primitive).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

__all__ = ["VerifyStats"]


@dataclass
class VerifyStats:
    """Per-verification accounting of how much chain was recomputed.

    Attributes:
        mode: ``"incremental"`` or ``"deep"`` (see the verification-modes
            section of ``docs/audit_storage.md``).
        workers: parallelism used for independent sealed/cold segments.
        wall_s: wall-clock seconds the verification took.
        segments_total: chunks (sealed segments + open tails) examined.
        segments_verified: chunks whose chain was actually recomputed.
        segments_skipped: chunks skipped on a valid watermark.
        cold_verified: cold (spilled) segments replayed from disk.
        records_verified: records whose chain step was recomputed.
        bytes_hashed: digest-material bytes re-hashed (canonical record
            bytes + chain digests; cold adds the committed header).
        watermark_hits: valid watermarks honoured (== segments_skipped
            for store-level verification).
        watermark_invalidations: watermarks found stale this pass (anchor
            or file-stat mismatch) and therefore re-verified in full.
        checkpoints_total: retained checkpoint records considered.
        checkpoints_verified: checkpoint bindings re-walked this pass.
        checkpoints_skipped: checkpoint bindings covered by the
            checkpoint-binding watermark and skipped.
    """

    mode: str = "incremental"
    workers: int = 1
    wall_s: float = 0.0
    segments_total: int = 0
    segments_verified: int = 0
    segments_skipped: int = 0
    cold_verified: int = 0
    records_verified: int = 0
    bytes_hashed: int = 0
    watermark_hits: int = 0
    watermark_invalidations: int = 0
    checkpoints_total: int = 0
    checkpoints_verified: int = 0
    checkpoints_skipped: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)
