"""The unified audit-sink surface every audit writer satisfies.

Historically the repo grew two parallel audit APIs: the per-domain
:class:`~repro.audit.log.AuditLog` (synchronous hash-chaining, the
paper's §8.3 construction) and the per-machine
:class:`~repro.audit.spine.AuditSpine` with its per-source
:class:`~repro.audit.spine.SpineEmitter` handles (staged emission off
the delivery path, ``docs/audit_plane.md``).  Both expose the same
write/read/maintenance vocabulary; every consumer that was written
against one silently worked against the other, but nothing *named* the
contract.  :class:`AuditSink` names it.

The contract is what :func:`~repro.audit.spine.bind_source` adapts
between: any component that takes an ``audit`` argument accepts an
:class:`AuditSink` — a plain log, a whole spine, or a bound emitter —
and calls ``bind_source(audit, "<site>")`` to claim its own segment
when the sink is segmented (a no-op for plain logs).  This is what lets
an :class:`~repro.iot.domain.AdministrativeDomain` run *spine-backed*
inside a :class:`~repro.deploy.Deployment`: the domain's bus, policy
engine, reconfigurator and discovery all write into the owning
machine's spine (one tamper-evident chain per node) instead of a
detached per-domain log.

``AuditSink`` is a :func:`~typing.runtime_checkable` protocol, so
``isinstance(log, AuditSink)`` works for duck-typed sinks too; the
recording vocabulary (``flow_allowed`` / ``flow_denied`` /
``context_change`` / ``reconfiguration``) comes from
:class:`~repro.audit.log.RecorderMixin`, which every concrete sink
mixes in.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Protocol, runtime_checkable

from repro.audit.records import AuditRecord, RecordKind
from repro.audit.spine import bind_source  # re-export: the sink adapter
from repro.ifc.labels import SecurityContext

__all__ = ["AuditSink", "bind_source"]


@runtime_checkable
class AuditSink(Protocol):
    """What every audit writer exposes (log, spine, or emitter).

    Writers: :meth:`append` plus the :class:`~repro.audit.log.
    RecorderMixin` vocabulary built on it.  Readers: filtering,
    iteration and the denial hot list.  Integrity: deferred work is
    folded in by :meth:`flush`, :meth:`verify` recomputes the chain(s),
    :attr:`head_digest` authenticates the whole sink, and
    :meth:`export` / :meth:`prune_before` keep offload and retention
    tamper-evident.
    """

    name: str

    # -- writing -----------------------------------------------------------

    def append(
        self,
        kind: RecordKind,
        actor: str,
        subject: str = "",
        detail: Optional[Dict] = None,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> AuditRecord:
        """Record one event (chaining may be deferred; see flush)."""
        ...

    # -- reading -----------------------------------------------------------

    def records(
        self,
        kind: Optional[RecordKind] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[AuditRecord]:
        """Filter records by kind / actor / subject / time window."""
        ...

    def query(
        self,
        kind: Optional[RecordKind] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        entity: Optional[str] = None,
        tag: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        stats=None,
    ) -> List[AuditRecord]:
        """Filtered query with the full audit-plane vocabulary.

        Superset of :meth:`records`: adds ``entity`` (actor *or*
        subject) and ``tag`` (qualified ``"namespace:name"``) filters.
        A tiered :class:`~repro.audit.spine.AuditSpine` answers from
        per-segment indexes (``docs/audit_storage.md``); a plain
        :class:`~repro.audit.log.AuditLog` flat-scans — results are
        identical either way.  ``stats`` optionally receives a
        :class:`~repro.audit.query.QueryStats` to fill.
        """
        ...

    def denials(self) -> List[AuditRecord]:
        """All denied flows/accesses — the compliance hot list."""
        ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[AuditRecord]: ...

    # -- integrity & maintenance ------------------------------------------

    def flush(self) -> int:
        """Fold any deferred records into the chain; returns how many."""
        ...

    def verify(
        self,
        mode: str = ...,  # type: ignore[assignment]
        workers: Optional[int] = None,
    ) -> bool:
        """Recompute every chain; True iff untampered.

        ``mode`` is ``"incremental"`` (skip cold segments behind an
        intact verified watermark — spines default to this) or
        ``"deep"`` (full recompute — flat logs always do this
        regardless).  ``workers`` fans independent segments across a
        thread pool where the sink is segmented; both knobs are
        accepted everywhere so callers can pass them blind.  Every
        tamper class is detected in either mode — see the
        verification-modes section of ``docs/audit_storage.md``.
        """
        ...

    @property
    def head_digest(self) -> str:
        """One digest authenticating the sink's whole retained history."""
        ...

    def export(self) -> List[Dict]:
        """Serialise records (with digests) for offload (Challenge 6)."""
        ...

    def prune_before(self, timestamp: float) -> int:
        """Discard older records, keeping the suffix verifiable."""
        ...
