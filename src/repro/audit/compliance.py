"""Compliance checking and report generation.

Fig. 1's feedback loop: audit "verifies & influences" policy, and the
infrastructure must "demonstrate compliance with regulation, and indicate
whether policy correctly captures legal responsibilities".  This module
turns an audit trail into evidence: obligation checkers scan any
:class:`~repro.audit.sink.AuditSink` — a plain
:class:`~repro.audit.log.AuditLog`, a whole
:class:`~repro.audit.spine.AuditSpine` (tiered or not), or a bound
emitter — and produce a structured :class:`ComplianceReport` suitable
for a regulator or DPO.  Checkers pull records through the sink's
``query()`` surface where it exists, so over a tiered spine they ride
the per-segment indexes (``docs/audit_storage.md``) instead of
iterating the full chain; the reports are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.audit.provenance import ProvenanceGraph, graph_from_log
from repro.audit.records import AuditRecord, RecordKind
from repro.audit.sink import AuditSink
from repro.ifc.tags import Tag, as_tag


def _query(sink: AuditSink, **filters) -> List[AuditRecord]:
    """Pull records from any sink, index-backed when it supports it."""
    query = getattr(sink, "query", None)
    if callable(query):
        return query(**filters)
    return sink.records(**filters)


@dataclass
class Finding:
    """One compliance finding.

    Attributes:
        obligation: name of the checked obligation.
        satisfied: whether the evidence supports compliance.
        evidence: audit record sequence numbers backing the finding.
        explanation: human-readable account.
    """

    obligation: str
    satisfied: bool
    evidence: List[int] = field(default_factory=list)
    explanation: str = ""


@dataclass
class ComplianceReport:
    """The result of running a set of obligation checks over a log."""

    findings: List[Finding] = field(default_factory=list)
    log_verified: bool = True

    @property
    def compliant(self) -> bool:
        """True when the log verified and every obligation held."""
        return self.log_verified and all(f.satisfied for f in self.findings)

    def failures(self) -> List[Finding]:
        """Findings that did not hold."""
        return [f for f in self.findings if not f.satisfied]

    def summary(self) -> str:
        """Short text summary for operators."""
        ok = sum(1 for f in self.findings if f.satisfied)
        status = "COMPLIANT" if self.compliant else "NON-COMPLIANT"
        lines = [
            f"{status}: {ok}/{len(self.findings)} obligations satisfied; "
            f"log integrity {'verified' if self.log_verified else 'FAILED'}"
        ]
        for f in self.failures():
            lines.append(f"  FAIL {f.obligation}: {f.explanation}")
        return "\n".join(lines)


#: An obligation checker inspects the sink/graph and returns a Finding.
ObligationChecker = Callable[[AuditSink, ProvenanceGraph], Finding]


class ComplianceAuditor:
    """Runs registered obligation checkers over an audit log.

    Built-in checker factories cover the obligations the paper motivates:
    no leaks of tagged data to unauthorised parties, mandatory
    sanitisation before analytics (Fig. 6), denial-rate monitoring (a
    spike indicates mis-set policy, §5.2 "help identify policy errors"),
    and declassifier usage accounting.
    """

    def __init__(self) -> None:
        self._checkers: List[ObligationChecker] = []

    def register(self, checker: ObligationChecker) -> None:
        """Add an obligation checker to the audit battery."""
        self._checkers.append(checker)

    def run(self, log: AuditSink) -> ComplianceReport:
        """Execute all checkers; verifies sink integrity first.

        ``log`` is any :class:`~repro.audit.sink.AuditSink` — for a
        tiered spine, integrity verification spans the hot/cold
        boundary and checkers ride the segment indexes.
        """
        graph = graph_from_log(log)
        report = ComplianceReport(log_verified=log.verify())
        for checker in self._checkers:
            report.findings.append(checker(log, graph))
        return report


# -- built-in obligation checker factories -----------------------------------


def no_flows_to(
    forbidden_sinks: Set[str], data_sources: Set[str], obligation: str
) -> ObligationChecker:
    """Checker: no information from ``data_sources`` ever reached any of
    ``forbidden_sinks`` (directly or transitively).

    This is the geo-fencing / purpose-limitation shape: "personal data
    must not leave the EU" (§9.3 Challenge 1) becomes
    ``no_flows_to(non_eu_nodes, personal_data_nodes, "EU residency")``.
    """

    def check(log: AuditSink, graph: ProvenanceGraph) -> Finding:
        violations: List[int] = []
        reached: List[str] = []
        for source in data_sources:
            tainted = graph.descendants(source)
            for sink in tainted & forbidden_sinks:
                reached.append(f"{source} -> {sink}")
        for record in _query(log, kind=RecordKind.FLOW_ALLOWED):
            if record.subject in forbidden_sinks and record.actor in data_sources:
                violations.append(record.seq)
        ok = not reached
        return Finding(
            obligation=obligation,
            satisfied=ok,
            evidence=violations,
            explanation=(
                "no forbidden flows observed"
                if ok
                else "forbidden reachability: " + "; ".join(sorted(reached))
            ),
        )

    return check


def declassification_precedes_flows(
    declassifier: str, sink: str, obligation: str
) -> ObligationChecker:
    """Checker: every flow from ``declassifier`` to ``sink`` happened
    *after* a declassification by the declassifier (Fig. 6: the ward
    manager may only receive data the generator declassified)."""

    def check(log: AuditSink, graph: ProvenanceGraph) -> Finding:
        declass_times = [
            r.timestamp
            for r in _query(log, kind=RecordKind.DECLASSIFICATION, actor=declassifier)
        ]
        bad: List[int] = []
        for record in _query(log, kind=RecordKind.FLOW_ALLOWED, actor=declassifier):
            if record.subject != sink:
                continue
            if not any(t <= record.timestamp for t in declass_times):
                bad.append(record.seq)
        return Finding(
            obligation=obligation,
            satisfied=not bad,
            evidence=bad,
            explanation=(
                "all releases followed declassification"
                if not bad
                else f"{len(bad)} release(s) without prior declassification"
            ),
        )

    return check


def denial_rate_below(threshold: float, obligation: str) -> ObligationChecker:
    """Checker: fraction of denied flows stays under ``threshold``.

    A high denial rate signals that deployed policy and actual system
    behaviour have diverged — the feedback Fig. 1 routes back to policy
    authors ("indicate whether policy correctly captures legal
    responsibilities")."""

    def check(log: AuditSink, graph: ProvenanceGraph) -> Finding:
        flows = _query(log, kind=RecordKind.FLOW_ALLOWED)
        denials = _query(log, kind=RecordKind.FLOW_DENIED)
        total = len(flows) + len(denials)
        rate = (len(denials) / total) if total else 0.0
        ok = rate <= threshold
        return Finding(
            obligation=obligation,
            satisfied=ok,
            evidence=[r.seq for r in denials][:20],
            explanation=f"denial rate {rate:.1%} (threshold {threshold:.1%})",
        )

    return check


def all_accesses_consented(
    consent_tag: "Tag | str", obligation: str
) -> ObligationChecker:
    """Checker: every allowed flow whose source carried personal data also
    carried the consent integrity tag (Concern 1: "a sound legal basis
    (often, explicit consent)")."""

    tag = as_tag(consent_tag)

    def check(log: AuditSink, graph: ProvenanceGraph) -> Finding:
        bad: List[int] = []
        for record in _query(log, kind=RecordKind.FLOW_ALLOWED):
            src = record.source_context
            if src is None:
                continue
            if src.secrecy.is_empty():
                continue  # not personal/sensitive data
            if tag not in src.integrity:
                bad.append(record.seq)
        return Finding(
            obligation=obligation,
            satisfied=not bad,
            evidence=bad,
            explanation=(
                "all sensitive flows carried consent"
                if not bad
                else f"{len(bad)} sensitive flow(s) without consent tag"
            ),
        )

    return check
