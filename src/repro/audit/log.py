"""Tamper-evident, append-only audit log.

The paper requires audit to "demonstrate compliance and aid
accountability" (§5.2) and notes logs "can be made more trustworthy by,
for example, using hardware cryptographic support" (§8.3, citing BBox).
We implement the standard hash-chain construction: each record's digest
covers its canonical serialisation plus the previous digest, so
truncation or in-place modification is detectable by
:meth:`AuditLog.verify`.  Challenge 6 asks "when can logs safely be
pruned?" — :meth:`AuditLog.prune_before` retains a verifiable checkpoint
digest so the remaining suffix still authenticates.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.audit.records import AuditRecord, RecordKind, record_matches
from repro.errors import IntegrityViolation
from repro.ifc.labels import SecurityContext

GENESIS_DIGEST = hashlib.sha256(b"repro-audit-genesis").hexdigest()


def chain_digest(previous: str, canonical: str) -> str:
    """Extend a hash chain by one record's canonical serialisation."""
    h = hashlib.sha256()
    h.update(previous.encode())
    h.update(canonical.encode())
    return h.hexdigest()


class RecorderMixin:
    """Convenience appenders shared by every audit writer.

    Anything exposing ``append(kind, actor, subject, detail,
    source_context, target_context)`` — :class:`AuditLog`, the
    :class:`~repro.audit.spine.AuditSpine` and its per-source emitters —
    gets the domain-specific recording vocabulary from here.
    """

    def flow_allowed(
        self,
        actor: str,
        subject: str,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
        detail: Optional[Dict] = None,
    ) -> AuditRecord:
        """Record a permitted data flow actor → subject."""
        return self.append(
            RecordKind.FLOW_ALLOWED, actor, subject, detail,
            source_context, target_context,
        )

    def flow_denied(
        self,
        actor: str,
        subject: str,
        reason: str,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> AuditRecord:
        """Record a denied data flow with the denial reason."""
        return self.append(
            RecordKind.FLOW_DENIED, actor, subject, {"reason": reason},
            source_context, target_context,
        )

    def context_change(
        self,
        actor: str,
        old: SecurityContext,
        new: SecurityContext,
        detail: Optional[Dict] = None,
    ) -> AuditRecord:
        """Record a context change, classified as declassification (secrecy
        dropped), endorsement (integrity gained), or a plain change."""
        if old.secrecy.tags - new.secrecy.tags:
            kind = RecordKind.DECLASSIFICATION
        elif new.integrity.tags - old.integrity.tags:
            kind = RecordKind.ENDORSEMENT
        else:
            kind = RecordKind.CONTEXT_CHANGE
        return self.append(
            kind, actor, "", detail, source_context=old, target_context=new
        )

    def reconfiguration(
        self, actor: str, target: str, command: str, detail: Optional[Dict] = None
    ) -> AuditRecord:
        """Record a third-party reconfiguration (Fig. 8)."""
        merged = {"command": command}
        merged.update(detail or {})
        return self.append(RecordKind.RECONFIGURATION, actor, target, merged)


class AuditLog(RecorderMixin):
    """Append-only log of :class:`AuditRecord` with a SHA-256 hash chain.

    The log is the universal observer: kernels, substrates, channels,
    policy engines and gateways all append here.  A ``clock`` callable
    supplies timestamps (wire it to the simulator for deterministic
    runs).

    ``buffer_size`` enables the buffered writer used by batched
    workloads: records are appended immediately (they are visible to
    ``records()``/iteration right away) but their chain digests are
    computed lazily, in chunks, once ``buffer_size`` records are pending
    or on an explicit :meth:`flush`.  Everything that *observes* the
    chain — :attr:`head_digest`, :meth:`verify`, :meth:`export`,
    :meth:`prune_before` — flushes first, so the chain construction and
    the ``verify()`` result are byte-identical to an unbuffered log with
    the same records.  Each record's digest material (its canonical
    serialisation) is snapshotted *at append time*, so the chain always
    reflects what was appended: a still-pending record mutated in memory
    before its first flush is chained as appended and the mutation is
    detected by :meth:`verify`, exactly as in unbuffered mode.

    Example::

        log = AuditLog(clock=sim.now)
        log.flow_allowed("sensor", "analyser", src_ctx, dst_ctx)
        assert log.verify()
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        name: str = "audit",
        buffer_size: int = 0,
    ):
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._records: List[AuditRecord] = []
        self._digests: List[str] = []
        # Canonical serialisations of records not yet folded into the
        # chain, snapshotted at append time (see the class docstring).
        self._pending_canonicals: List[str] = []
        self._base_digest = GENESIS_DIGEST
        self._base_seq = 0
        self.buffer_size = buffer_size

    # -- core append/verify ------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    @property
    def pending(self) -> int:
        """Records appended but not yet folded into the hash chain."""
        return len(self._records) - len(self._digests)

    @property
    def head_digest(self) -> str:
        """Digest of the most recent record (genesis digest when empty)."""
        self.flush()
        return self._digests[-1] if self._digests else self._base_digest

    def append(
        self,
        kind: RecordKind,
        actor: str,
        subject: str = "",
        detail: Optional[Dict] = None,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> AuditRecord:
        """Append one record, extending the hash chain.

        In buffered mode the chain extension is deferred; see
        :meth:`flush`.
        """
        record = AuditRecord(
            seq=self._base_seq + len(self._records),
            timestamp=self._clock(),
            kind=kind,
            actor=actor,
            subject=subject,
            detail=dict(detail or {}),
            source_context=source_context,
            target_context=target_context,
        )
        self._records.append(record)
        self._pending_canonicals.append(record.canonical())
        if self.buffer_size <= 0 or self.pending >= self.buffer_size:
            self.flush()
        return record

    def flush(self) -> int:
        """Fold all pending records into the hash chain, in one chunk.

        Returns the number of records whose digests were computed.
        Idempotent; a no-op on an unbuffered or already-flushed log.
        The chain is built from the canonical serialisations captured at
        append time, not from the records' current in-memory state.
        """
        pending = self._pending_canonicals
        if not pending:
            return 0
        digests = self._digests
        digest = digests[-1] if digests else self._base_digest
        for canonical in pending:
            digest = chain_digest(digest, canonical)
            digests.append(digest)
        flushed = len(pending)
        pending.clear()
        return flushed

    def verify(
        self,
        mode: str = "deep",
        workers: Optional[int] = None,
    ) -> bool:
        """Recompute the whole chain; True iff untampered.

        Raises nothing — audit tooling wants a boolean; use
        :meth:`verify_strict` to get the failing position.

        ``mode`` and ``workers`` exist for :class:`AuditSink` signature
        compatibility with the spine's verification plane; a flat log is
        one unsegmented in-memory chain, so every call is a full serial
        recompute regardless (there are no immutable cold segments to
        watermark or fan out).
        """
        if mode not in ("incremental", "deep"):
            raise ValueError(
                f"verification mode must be 'incremental' or 'deep', "
                f"got {mode!r}"
            )
        try:
            self.verify_strict()
            return True
        except IntegrityViolation:
            return False

    def verify_strict(
        self,
        deep: bool = True,
        workers: Optional[int] = None,
    ) -> None:
        """Recompute the chain, raising on the first mismatch.

        ``deep`` and ``workers`` are accepted for signature parity with
        :meth:`~repro.audit.spine.AuditSpine.verify_strict` and ignored:
        a flat log always recomputes everything.
        """
        self.flush()
        digest = self._base_digest
        for i, record in enumerate(self._records):
            digest = chain_digest(digest, record.canonical())
            if digest != self._digests[i]:
                raise IntegrityViolation(
                    f"audit chain broken at seq {record.seq}"
                )

    # -- query & maintenance -------------------------------------------------

    def records(
        self,
        kind: Optional[RecordKind] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[AuditRecord]:
        """Filter records by kind / actor / subject / time window."""
        result = []
        for r in self._records:
            if kind is not None and r.kind != kind:
                continue
            if actor is not None and r.actor != actor:
                continue
            if subject is not None and r.subject != subject:
                continue
            if since is not None and r.timestamp < since:
                continue
            if until is not None and r.timestamp > until:
                continue
            result.append(r)
        return result

    def denials(self) -> List[AuditRecord]:
        """All denied flows/accesses — the compliance hot list."""
        return [r for r in self._records if r.is_denial]

    def query(
        self,
        kind: Optional[RecordKind] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        entity: Optional[str] = None,
        tag: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        stats=None,
    ) -> List[AuditRecord]:
        """Filtered query with the full audit-plane vocabulary.

        The flat-scan implementation of the :class:`~repro.audit.sink.
        AuditSink` ``query()`` surface: same
        :func:`~repro.audit.records.record_matches` predicate — and
        therefore the same results — as a tiered spine's index-backed
        query, minus the index short-circuit (a plain log has no sealed
        segments to skip).  ``entity`` matches actor or subject;
        ``tag`` is a qualified ``"namespace:name"`` string matched
        against either recorded context.
        """
        matched = []
        for record in self._records:
            if stats is not None:
                stats.records_scanned += 1
            if record_matches(
                record, kind, actor, subject, entity, tag, since, until
            ):
                matched.append(record)
        return matched

    def prune_before(self, timestamp: float) -> int:
        """Discard records older than ``timestamp`` (Challenge 6).

        The digest of the last pruned record becomes the new chain base,
        so the retained suffix still verifies; auditors holding the old
        head digest can still authenticate continuity.  Returns the
        number of records pruned.  Buffered appends are flushed first so
        the new chain base is always a real, computed digest.
        """
        self.flush()
        keep_from = 0
        while (
            keep_from < len(self._records)
            and self._records[keep_from].timestamp < timestamp
        ):
            keep_from += 1
        if keep_from == 0:
            return 0
        self._base_digest = self._digests[keep_from - 1]
        self._base_seq = self._records[keep_from - 1].seq + 1
        self._records = self._records[keep_from:]
        self._digests = self._digests[keep_from:]
        return keep_from

    def export(self) -> List[Dict]:
        """Serialise records (with digests) for offload to another party
        (Challenge 6: "can logs be offloaded to others for distributed
        audit?")."""
        self.flush()
        return [
            {"record": r.canonical(), "digest": d}
            for r, d in zip(self._records, self._digests)
        ]
