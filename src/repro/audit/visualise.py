"""Provenance graph rendering (the paper's Neo4J/Cytoscape substitute).

§8.3: "we showed how a popular graph database (Neo4J) and visualisation
tool (Cytoscape) can be used to analyse IFC audit data."  Offline, we
render to Graphviz DOT (viewable anywhere) and to a compact text tree
for terminal inspection.  Node shapes follow Fig. 11's legend: data
items as boxes, processes as ellipses, agents as diamonds; denied
attempts are annotated in red.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.audit.provenance import EdgeKind, NodeKind, ProvenanceGraph

_SHAPES = {
    NodeKind.DATA: "box",
    NodeKind.PROCESS: "ellipse",
    NodeKind.AGENT: "diamond",
}

_EDGE_STYLES = {
    EdgeKind.FLOW: 'color="black"',
    EdgeKind.CONTROL: 'style="dashed", color="gray"',
    EdgeKind.DERIVED: 'color="blue"',
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def to_dot(
    graph: ProvenanceGraph,
    title: str = "provenance",
    highlight: Optional[Set[str]] = None,
) -> str:
    """Render a provenance graph as Graphviz DOT.

    ``highlight`` nodes (e.g. a leak investigation's taint set) are
    filled; nodes with recorded denied attempts get a red border.
    """
    highlight = highlight or set()
    lines: List[str] = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    for node_id, data in graph.graph.nodes(data=True):
        kind = data.get("kind", NodeKind.PROCESS)
        attrs = [f"shape={_SHAPES.get(kind, 'ellipse')}"]
        if node_id in highlight:
            attrs.append('style="filled"')
            attrs.append('fillcolor="khaki"')
        if data.get("denied_attempts"):
            attrs.append('color="red"')
            attrs.append('penwidth=2')
        changes = data.get("context_changes")
        label = node_id
        if changes:
            label += f"\\n({len(changes)} ctx changes)"
        attrs.append(f"label={_quote(label)}")
        lines.append(f"  {_quote(node_id)} [{', '.join(attrs)}];")
    for u, v, data in graph.graph.edges(data=True):
        kind = data.get("kind", EdgeKind.FLOW)
        style = _EDGE_STYLES.get(kind, "")
        timestamp = data.get("timestamp")
        label = f', label="t={timestamp:g}"' if timestamp else ""
        lines.append(f"  {_quote(u)} -> {_quote(v)} [{style}{label}];")
    lines.append("}")
    return "\n".join(lines)


def to_text_tree(
    graph: ProvenanceGraph, root: str, max_depth: int = 5
) -> str:
    """Render the downstream spread of one node as an indented tree.

    The terminal-friendly answer to "where did this data go?" — each
    line one hop further from the root; repeated nodes are marked and
    not expanded again (the graph may be a DAG).
    """
    lines: List[str] = [root]
    seen: Set[str] = {root}

    def walk(node: str, depth: int) -> None:
        if depth > max_depth:
            return
        targets = sorted(
            {
                v
                for __, v, d in graph.graph.out_edges(node, data=True)
                if d.get("kind") in (EdgeKind.FLOW, EdgeKind.DERIVED)
            }
        )
        for target in targets:
            marker = " (seen)" if target in seen else ""
            lines.append("  " * depth + f"-> {target}{marker}")
            if target not in seen:
                seen.add(target)
                walk(target, depth + 1)

    walk(root, 1)
    return "\n".join(lines)
