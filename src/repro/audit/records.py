"""Audit record types.

§1.2: "Once IFC is deployed, audit can easily be supported since a record
can potentially be made of every attempted data transfer or access."
Records capture flows (allowed *and* denied), context changes
(declassification/endorsement), privilege delegations, reconfigurations
(Fig. 8) and policy firings — everything Fig. 1's feedback loop needs to
"verify & influence" policy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from functools import lru_cache
from typing import Any, Dict, FrozenSet, Optional, Set

from repro.ifc.labels import SecurityContext


class RecordKind(str, Enum):
    """Categories of auditable events."""

    FLOW_ALLOWED = "flow-allowed"
    FLOW_DENIED = "flow-denied"
    CONTEXT_CHANGE = "context-change"
    DECLASSIFICATION = "declassification"
    ENDORSEMENT = "endorsement"
    PRIVILEGE_DELEGATION = "privilege-delegation"
    PRIVILEGE_REVOCATION = "privilege-revocation"
    RECONFIGURATION = "reconfiguration"
    POLICY_FIRED = "policy-fired"
    POLICY_CONFLICT = "policy-conflict"
    ACCESS_ALLOWED = "access-allowed"
    ACCESS_DENIED = "access-denied"
    CHANNEL_ESTABLISHED = "channel-established"
    CHANNEL_TORN_DOWN = "channel-torn-down"
    ENTITY_CREATED = "entity-created"
    ATTESTATION = "attestation"
    WIRE_HANDSHAKE = "wire-handshake"
    TABLE_SYNC = "table-sync"
    MISDELIVERY = "misdelivery"
    CHECKPOINT = "checkpoint"
    DISCOVERY = "discovery"
    FEDERATION_PIN = "federation-pin"
    ANALYSIS = "analysis"
    CUSTOM = "custom"


@lru_cache(maxsize=1024)
def _context_payload(ctx: SecurityContext) -> Dict[str, list]:
    # Shared across records (contexts are immutable interned values and
    # canonical() only ever reads it) — one tag walk per distinct
    # context, not per record.
    return {
        "secrecy": sorted(t.qualified for t in ctx.secrecy),
        "integrity": sorted(t.qualified for t in ctx.integrity),
    }


def _context_dict(ctx: Optional[SecurityContext]) -> Optional[Dict[str, list]]:
    if ctx is None:
        return None
    return _context_payload(ctx)


@lru_cache(maxsize=4096)
def _str_json(text: str) -> str:
    # Actors, subjects and kind values repeat across records (entity
    # names, a fixed enum) — cache their JSON-escaped forms.
    return json.dumps(text)


@lru_cache(maxsize=1024)
def _context_json(ctx: SecurityContext) -> str:
    # The serialised form of _context_payload, cached with the same
    # lifetime: contexts repeat across millions of records and their
    # tag lists dominate canonical()'s json.dumps time.
    return json.dumps(
        _context_payload(ctx), sort_keys=True, separators=(",", ":")
    )


def _context_from_dict(body: Optional[Dict]) -> Optional[SecurityContext]:
    if body is None:
        return None
    return SecurityContext.of(body.get("secrecy", ()), body.get("integrity", ()))


@lru_cache(maxsize=1024)
def _context_tags(ctx: SecurityContext) -> FrozenSet[str]:
    """Qualified tags of one context, memoised.

    Contexts are immutable interned-mask values and enforcement reuses a
    handful of them across millions of records, so the per-record tag
    walks in :func:`record_tags` (segment-index builds, tag queries)
    collapse to one dict hit.
    """
    tags = set()
    for tag in ctx.secrecy:
        tags.add(tag.qualified)
    for tag in ctx.integrity:
        tags.add(tag.qualified)
    return frozenset(tags)


@dataclass(frozen=True)
class AuditRecord:
    """One immutable audit event.

    Attributes:
        seq: position in the log (assigned by the log on append).
        timestamp: simulated time of the event.
        kind: record category.
        actor: entity id/name that performed or attempted the action.
        subject: the data item or target entity involved, if any.
        detail: free-form structured detail (flow decision reason, policy
            name, ...), must be JSON-serialisable for canonical hashing.
        source_context / target_context: security contexts at event time,
            recorded so audits can later reconstruct *why* the decision
            was what it was even after labels change.
    """

    seq: int
    timestamp: float
    kind: RecordKind
    actor: str
    subject: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)
    source_context: Optional[SecurityContext] = None
    target_context: Optional[SecurityContext] = None

    def canonical(self) -> str:
        """Deterministic JSON serialisation used for hash chaining.

        Assembled from per-field dumps with the context fragments
        memoised (:func:`_context_json`) — byte-identical to
        ``json.dumps(body, sort_keys=True, separators=(",", ":"))``
        over the same eight keys, which the tier-1 suite pins
        (``test_canonical_matches_reference_encoding``).
        """
        detail = self.detail
        src = self.source_context
        tgt = self.target_context
        return (
            '{"actor":%s,"detail":%s,"kind":%s,"seq":%d,"source_context":%s,'
            '"subject":%s,"target_context":%s,"timestamp":%s}'
            % (
                _str_json(self.actor),
                json.dumps(detail, sort_keys=True, separators=(",", ":"))
                if detail
                else "{}",
                _str_json(self.kind.value),
                self.seq,
                "null" if src is None else _context_json(src),
                _str_json(self.subject),
                "null" if tgt is None else _context_json(tgt),
                json.dumps(self.timestamp),
            )
        )

    @property
    def is_denial(self) -> bool:
        """Whether this record denotes a denied action."""
        return self.kind in (RecordKind.FLOW_DENIED, RecordKind.ACCESS_DENIED)

    @classmethod
    def from_canonical(cls, canonical: str) -> "AuditRecord":
        """Rebuild a record from its :meth:`canonical` serialisation.

        The round trip is byte-stable (``canonical()`` sorts keys and
        qualified tags), which is what lets cold audit segments store
        only the digest material and reconstruct record objects on
        demand (``repro.audit.storage``).
        """
        body = json.loads(canonical)
        return cls(
            seq=body["seq"],
            timestamp=body["timestamp"],
            kind=RecordKind(body["kind"]),
            actor=body["actor"],
            subject=body.get("subject", ""),
            detail=body.get("detail") or {},
            source_context=_context_from_dict(body.get("source_context")),
            target_context=_context_from_dict(body.get("target_context")),
        )


def record_tags(record: AuditRecord) -> Set[str]:
    """Every qualified tag carried by the record's contexts.

    The tag vocabulary the audit-query plane indexes sealed segments by
    ("every flow that touched ``medical:ann``").
    """
    tags: Set[str] = set()
    for ctx in (record.source_context, record.target_context):
        if ctx is not None:
            tags.update(_context_tags(ctx))
    return tags


def record_matches(
    record: AuditRecord,
    kind: Optional[RecordKind] = None,
    actor: Optional[str] = None,
    subject: Optional[str] = None,
    entity: Optional[str] = None,
    tag: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> bool:
    """The one filter predicate every audit sink's ``query()`` applies.

    ``entity`` matches actor *or* subject; ``tag`` is a qualified
    ``"namespace:name"`` string matched against either context.  Both
    tiered (index-probing) and flat (full-scan) query paths funnel
    through this predicate, which is what makes their results
    comparable record-for-record.
    """
    if kind is not None and record.kind != kind:
        return False
    if actor is not None and record.actor != actor:
        return False
    if subject is not None and record.subject != subject:
        return False
    if entity is not None and record.actor != entity and record.subject != entity:
        return False
    if since is not None and record.timestamp < since:
        return False
    if until is not None and record.timestamp > until:
        return False
    if tag is not None and tag not in record_tags(record):
        return False
    return True
