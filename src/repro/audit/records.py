"""Audit record types.

§1.2: "Once IFC is deployed, audit can easily be supported since a record
can potentially be made of every attempted data transfer or access."
Records capture flows (allowed *and* denied), context changes
(declassification/endorsement), privilege delegations, reconfigurations
(Fig. 8) and policy firings — everything Fig. 1's feedback loop needs to
"verify & influence" policy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from repro.ifc.labels import SecurityContext


class RecordKind(str, Enum):
    """Categories of auditable events."""

    FLOW_ALLOWED = "flow-allowed"
    FLOW_DENIED = "flow-denied"
    CONTEXT_CHANGE = "context-change"
    DECLASSIFICATION = "declassification"
    ENDORSEMENT = "endorsement"
    PRIVILEGE_DELEGATION = "privilege-delegation"
    PRIVILEGE_REVOCATION = "privilege-revocation"
    RECONFIGURATION = "reconfiguration"
    POLICY_FIRED = "policy-fired"
    POLICY_CONFLICT = "policy-conflict"
    ACCESS_ALLOWED = "access-allowed"
    ACCESS_DENIED = "access-denied"
    CHANNEL_ESTABLISHED = "channel-established"
    CHANNEL_TORN_DOWN = "channel-torn-down"
    ENTITY_CREATED = "entity-created"
    ATTESTATION = "attestation"
    WIRE_HANDSHAKE = "wire-handshake"
    TABLE_SYNC = "table-sync"
    MISDELIVERY = "misdelivery"
    CHECKPOINT = "checkpoint"
    DISCOVERY = "discovery"
    FEDERATION_PIN = "federation-pin"
    CUSTOM = "custom"


def _context_dict(ctx: Optional[SecurityContext]) -> Optional[Dict[str, list]]:
    if ctx is None:
        return None
    return {
        "secrecy": sorted(t.qualified for t in ctx.secrecy),
        "integrity": sorted(t.qualified for t in ctx.integrity),
    }


@dataclass(frozen=True)
class AuditRecord:
    """One immutable audit event.

    Attributes:
        seq: position in the log (assigned by the log on append).
        timestamp: simulated time of the event.
        kind: record category.
        actor: entity id/name that performed or attempted the action.
        subject: the data item or target entity involved, if any.
        detail: free-form structured detail (flow decision reason, policy
            name, ...), must be JSON-serialisable for canonical hashing.
        source_context / target_context: security contexts at event time,
            recorded so audits can later reconstruct *why* the decision
            was what it was even after labels change.
    """

    seq: int
    timestamp: float
    kind: RecordKind
    actor: str
    subject: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)
    source_context: Optional[SecurityContext] = None
    target_context: Optional[SecurityContext] = None

    def canonical(self) -> str:
        """Deterministic JSON serialisation used for hash chaining."""
        body = {
            "seq": self.seq,
            "timestamp": self.timestamp,
            "kind": self.kind.value,
            "actor": self.actor,
            "subject": self.subject,
            "detail": self.detail,
            "source_context": _context_dict(self.source_context),
            "target_context": _context_dict(self.target_context),
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    @property
    def is_denial(self) -> bool:
        """Whether this record denotes a denied action."""
        return self.kind in (RecordKind.FLOW_DENIED, RecordKind.ACCESS_DENIED)
