"""Distributed audit across federated domains (Challenge 6).

The paper asks: "How to deal with possible audit 'gaps', where components
are no longer accessible, intermittently connected or mobile? ... Can
logs be offloaded to others for distributed audit, and how should this
be managed?"

This module provides:

* :class:`AuditCollector` — merges per-domain logs into a single
  time-ordered view, verifying each contributed chain and flagging
  domains whose logs failed verification;
* gap detection — find windows where a component was known active (it
  appears in neighbours' logs) but contributed no records of its own;
* offload receipts — a log owner can hand a signed-digest receipt to a
  collector before pruning locally, preserving accountability;
* checkpoint cross-pinning — federated domains gossip
  :class:`CheckpointClaim`\\ s (their audit spine's checkpoint-chain
  head and position) and each domain's :class:`FederationPinboard`
  pins its peers' claims, so no domain can silently rewrite or truncate
  even *pruned* history: the pinned digest at a pinned position must
  hold forever.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.audit.records import AuditRecord, RecordKind
from repro.audit.sink import AuditSink


@dataclass
class OffloadReceipt:
    """Receipt a collector issues when accepting an offloaded log segment.

    Attributes:
        domain: the contributing administrative domain.
        head_digest: digest of the last record accepted — for a
            segmented spine this is the checkpoint-chain head, which
            itself folds every segment head.
        record_count: how many records the segment held.
        collector_signature: simulated signature binding the receipt.
        segment_heads: for segmented (spine) logs, the per-source
            ``(source, head digest)`` pairs the receipt covers, so a
            domain pruning one segment can still point at the receipt
            that attested it.
        cold_segments: how many of the contributing sink's sealed
            segments were in the cold (spilled) tier at submission —
            the receipt attests that verification crossed the tier
            boundary, not just hot memory.
    """

    domain: str
    head_digest: str
    record_count: int
    collector_signature: str
    segment_heads: Tuple[Tuple[str, str], ...] = ()
    cold_segments: int = 0

    @staticmethod
    def sign(
        domain: str,
        head_digest: str,
        count: int,
        collector_key: str,
        segment_heads: Tuple[Tuple[str, str], ...] = (),
        cold_segments: int = 0,
    ) -> "OffloadReceipt":
        """Create a receipt; the 'signature' is an HMAC-style digest over
        the receipt body (including any segment heads and the tier
        accounting) with the collector's key (simulated crypto)."""
        body = OffloadReceipt._body(
            domain, head_digest, count, segment_heads, cold_segments,
            collector_key,
        )
        sig = hashlib.sha256(body.encode()).hexdigest()
        return OffloadReceipt(
            domain, head_digest, count, sig, segment_heads, cold_segments
        )

    @staticmethod
    def _body(
        domain: str,
        head_digest: str,
        count: int,
        segment_heads: Tuple[Tuple[str, str], ...],
        cold_segments: int,
        collector_key: str,
    ) -> str:
        segments = ";".join(f"{s}={d}" for s, d in segment_heads)
        return (
            f"{domain}|{head_digest}|{count}|{segments}|cold={cold_segments}"
            f"|{collector_key}"
        )

    def verify(self, collector_key: str) -> bool:
        """Check the receipt was issued by the holder of ``collector_key``."""
        body = OffloadReceipt._body(
            self.domain, self.head_digest, self.record_count,
            tuple(self.segment_heads), self.cold_segments, collector_key,
        )
        return hashlib.sha256(body.encode()).hexdigest() == self.collector_signature


@dataclass(frozen=True)
class CheckpointClaim:
    """One domain's assertion about its own audit spine's head.

    Attributes:
        domain: the claiming administrative domain (spine owner).
        position: absolute checkpoint-chain position of the head
            (:attr:`~repro.audit.spine.AuditSpine.checkpoint_position`).
        head_digest: the checkpoint-chain digest at that position.
        issued_at: simulated time the claim was cut.

    Claims are what the federation plane gossips between domains —
    small, append-only facts a remote pinboard can hold a domain to.
    """

    domain: str
    position: int
    head_digest: str
    issued_at: float = 0.0

    @staticmethod
    def of(domain: str, spine, issued_at: float = 0.0) -> "CheckpointClaim":
        """Cut a claim from a spine (forces a checkpoint so the head is
        current).  ``spine`` is anything exposing the checkpoint-chain
        surface (an :class:`~repro.audit.spine.AuditSpine` or one of its
        emitters).  The head is taken from the chain itself
        (``checkpoint_digest_at(position)``) so a claim compares equal
        to what :meth:`FederationPinboard.verify` will read back —
        including the position-0 case, where the chain's domain-
        separated base digest stands in for a head."""
        spine.head_digest  # property read: forces a checkpoint first
        position = spine.checkpoint_position
        return CheckpointClaim(
            domain=domain,
            position=position,
            head_digest=spine.checkpoint_digest_at(position),
            issued_at=issued_at,
        )


@dataclass(frozen=True)
class PinConflict:
    """Two claims for the same (domain, position) with different digests
    — a domain showing different histories to different peers."""

    domain: str
    position: int
    pinned_digest: str
    claimed_digest: str


class FederationPinboard:
    """Cross-pins of remote domains' checkpoint heads (Challenge 6).

    Each federated domain runs one pinboard; gossiped
    :class:`CheckpointClaim`\\ s accumulate here, per claiming domain and
    per checkpoint position.  The spine's checkpoint chain is
    append-only, so a pinned ``(position, digest)`` pair is a permanent
    commitment: :meth:`pin` rejects a contradictory claim for an
    already-pinned position (equivocation), and :meth:`verify` later
    holds the domain's *live* spine to every pin — a rewrite changes the
    digest at a pinned position, a truncation (e.g. the spine quietly
    replaced with a shorter replay) drops below a pinned position.
    Either way the domain cannot shed history its peers pinned.

    ``retain_every`` bounds per-domain pin memory (the ROADMAP's pin
    retention policy): when set to ``k``, only claims at checkpoint
    positions divisible by ``k`` — plus the newest claim — are kept.
    Retired positions stop being re-checkable (and a late conflicting
    claim for one can no longer be flagged), which is the documented
    trade: coverage granularity for bounded state in long-lived
    federations.  ``None`` (the default) keeps every pin.
    """

    def __init__(self, owner: str, retain_every: Optional[int] = None):
        if retain_every is not None and retain_every < 1:
            raise ValueError("retain_every must be >= 1")
        self.owner = owner
        self.retain_every = retain_every
        self._pins: Dict[str, Dict[int, CheckpointClaim]] = {}
        self.conflicts: List[PinConflict] = []
        #: Pins dropped by the retention policy (never by conflict).
        self.stats_retired = 0

    def __len__(self) -> int:
        return sum(len(by_pos) for by_pos in self._pins.values())

    def pin(self, claim: CheckpointClaim) -> bool:
        """Record a claim.  Returns False — and records a
        :class:`PinConflict` — when it contradicts the digest already
        pinned for the same (domain, position); re-pinning an identical
        claim is an accepted no-op.  Claims about the owner itself are
        ignored (a domain does not pin its own history)."""
        if claim.domain == self.owner:
            return True
        by_pos = self._pins.setdefault(claim.domain, {})
        held = by_pos.get(claim.position)
        if held is not None:
            if held.head_digest != claim.head_digest:
                self.conflicts.append(
                    PinConflict(
                        claim.domain,
                        claim.position,
                        held.head_digest,
                        claim.head_digest,
                    )
                )
                return False
            return True
        by_pos[claim.position] = claim
        self._apply_retention(by_pos)
        return True

    def _apply_retention(self, by_pos: Dict[int, CheckpointClaim]) -> None:
        """Drop pins the retention policy no longer keeps: every ``k``-th
        checkpoint position survives, and so does the newest pin."""
        k = self.retain_every
        if k is None or len(by_pos) < 2:
            return
        newest = max(by_pos)
        retire = [p for p in by_pos if p != newest and p % k != 0]
        for position in retire:
            del by_pos[position]
        self.stats_retired += len(retire)

    def domains(self) -> List[str]:
        """Every domain this board holds pins for, sorted."""
        return sorted(self._pins)

    def pinned(self, domain: str) -> Optional[CheckpointClaim]:
        """The freshest (highest-position) pin for ``domain``."""
        by_pos = self._pins.get(domain)
        if not by_pos:
            return None
        return by_pos[max(by_pos)]

    def claims(self, domain: str) -> List[CheckpointClaim]:
        """All pins held for ``domain``, position-ascending."""
        by_pos = self._pins.get(domain, {})
        return [by_pos[p] for p in sorted(by_pos)]

    def verify(
        self,
        spines,
        mode: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, str]:
        """Hold each domain's live spine to every pinned position.

        ``spines`` maps domain → spine-like (``checkpoint_position`` /
        ``checkpoint_digest_at``).  Returns domain → verdict:

        * ``"ok"`` — at least one pinned position was re-checked against
          the live chain and every checkable one holds (*older*
          positions the domain pruned locally stay vouched for by their
          pins);
        * ``"truncated"`` — the spine's checkpoint chain is shorter than
          a pinned position (history shed wholesale);
        * ``"tampered"`` — the digest at a pinned position changed (a
          rewritten, re-chained history);
        * ``"unverifiable"`` — every pinned position has been pruned
          from the presented chain, so nothing could be re-checked.  A
          domain that rewrote history and then pruned past every pin
          lands here rather than ``"ok"`` — from digests alone that is
          indistinguishable from an aggressive honest prune, so the
          verdict withholds endorsement instead of granting it (the
          offload-receipt machinery is the recourse for pruned bytes);
        * ``"unpinned"`` — this board holds no claim for the domain.

        Claims are gossiped every round, so honest domains are pinned
        close to their head and normally keep that position checkable.

        ``mode`` (``None`` by default) optionally adds a *local-chain*
        check per presented spine: ``"incremental"`` or ``"deep"`` runs
        each spine's own ``verify(mode=..., workers=...)`` and demotes
        an otherwise-clean verdict to ``"tampered"`` when the local
        chain fails.  Pin comparison alone only sees the checkpoint
        chain; the local check catches a record tampered *behind* an
        intact checkpoint head — and with ``"incremental"`` it is cheap
        enough to run every federation round (watermark cursors make it
        O(new records) steady-state).
        """
        verdicts: Dict[str, str] = {}
        for domain, spine in spines.items():
            if domain == self.owner:
                continue
            by_pos = self._pins.get(domain)
            if not by_pos:
                verdicts[domain] = "unpinned"
                continue
            # head_digest (a property read) forces the live spine to
            # checkpoint anything still staged, so the comparison is
            # against its *current* committed history.
            getattr(spine, "head_digest", None)
            verdict = None
            checked = 0
            for position in sorted(by_pos):
                claim = by_pos[position]
                if spine.checkpoint_position < position:
                    verdict = "truncated"
                    break
                digest = spine.checkpoint_digest_at(position)
                if digest is None:
                    continue  # pruned locally; the pin still vouches
                checked += 1
                if digest != claim.head_digest:
                    verdict = "tampered"
                    break
            if verdict is None:
                verdict = "ok" if checked else "unverifiable"
            if mode is not None and verdict not in (
                "tampered", "truncated"
            ):
                verify_fn = getattr(spine, "verify", None)
                if callable(verify_fn):
                    try:
                        clean = verify_fn(mode=mode, workers=workers)
                    except TypeError:
                        clean = verify_fn()
                    if not clean:
                        verdict = "tampered"
            verdicts[domain] = verdict
        return verdicts


@dataclass
class AuditGap:
    """A detected gap: a component referenced by others but silent itself.

    Attributes:
        component: the silent component's identifier.
        first_seen / last_seen: time window in which neighbours referenced
            it while it produced no records.
        referenced_by: which domains' logs mention it.
    """

    component: str
    first_seen: float
    last_seen: float
    referenced_by: Set[str] = field(default_factory=set)


class AuditCollector:
    """Aggregates logs from many administrative domains.

    Each domain submits its :class:`AuditLog`; the collector verifies the
    hash chain before accepting, records an :class:`OffloadReceipt`, and
    exposes a merged, time-ordered record stream for cross-domain
    forensics (the end-to-end view no single domain holds).
    """

    def __init__(
        self,
        key: str = "collector-key",
        verify_mode: str = "incremental",
        verify_workers: Optional[int] = None,
    ):
        self._key = key
        #: How submitted chains are verified before acceptance.
        #: ``"incremental"`` (the default) rides watermark cursors so
        #: repeat submissions from the same domain re-verify only what
        #: changed; ``"deep"`` recomputes everything each time.  Either
        #: mode rejects every tamper class (``docs/audit_storage.md``).
        self.verify_mode = verify_mode
        self.verify_workers = verify_workers
        self._segments: Dict[str, List[AuditRecord]] = {}
        self._rejected: Set[str] = set()
        self._receipts: List[OffloadReceipt] = []
        # Actors the contributing logs vouch for even after local
        # pruning (see AuditSpine.known_actors) — gap detection must not
        # flag a component whose records were merely pruned.
        self._known_reporters: Set[str] = set()

    @property
    def rejected_domains(self) -> Set[str]:
        """Domains whose submitted log failed chain verification."""
        return set(self._rejected)

    def submit(self, domain: str, log: AuditSink) -> Optional[OffloadReceipt]:
        """Accept a domain's log if its chain verifies.

        Returns a receipt on acceptance, None on rejection.  Repeated
        submissions from the same domain extend its segment.  Segmented
        logs (an :class:`~repro.audit.spine.AuditSpine`) are accepted
        the same way: verification covers every segment plus the
        checkpoint chain, and the receipt is taken over the segment
        heads (via a fresh checkpoint) rather than a single linear
        chain's head.  Verification runs in the collector's
        :attr:`verify_mode` — watermark-aware by default, so a domain
        re-submitting a mostly-cold spine costs O(new records), not
        O(history).
        """
        try:
            accepted = log.verify(
                mode=self.verify_mode, workers=self.verify_workers
            )
        except TypeError:
            # A duck-typed sink predating the verification plane.
            accepted = log.verify()
        if not accepted:
            self._rejected.add(domain)
            return None
        segment_heads: Tuple[Tuple[str, str], ...] = ()
        heads_fn = getattr(log, "segment_heads", None)
        if callable(heads_fn):
            # A fresh checkpoint binds every segment head into the
            # head_digest the receipt signs (no-op if already current).
            log.checkpoint()
            segment_heads = tuple(
                (source, head) for source, (__, head) in sorted(heads_fn().items())
            )
        actors_fn = getattr(log, "known_actors", None)
        if callable(actors_fn):
            self._known_reporters.update(actors_fn())
        # Tier-aware: a tiered spine's verify() above already replayed
        # cold spill files; the receipt records how many it crossed.
        cold_segments = 0
        tier_fn = getattr(log, "tier_stats", None)
        if callable(tier_fn):
            cold_segments = tier_fn().get("cold_segments", 0)
        records = list(log)
        self._segments.setdefault(domain, []).extend(records)
        receipt = OffloadReceipt.sign(
            domain, log.head_digest, len(records), self._key,
            segment_heads=segment_heads,
            cold_segments=cold_segments,
        )
        self._receipts.append(receipt)
        return receipt

    def receipts(self) -> List[OffloadReceipt]:
        """All issued receipts."""
        return list(self._receipts)

    def merged(self) -> List[Tuple[str, AuditRecord]]:
        """All accepted records as (domain, record), time-ordered.

        Ties are broken by domain name then sequence for determinism.
        """
        everything: List[Tuple[str, AuditRecord]] = []
        for domain, records in self._segments.items():
            everything.extend((domain, r) for r in records)
        everything.sort(key=lambda pair: (pair[1].timestamp, pair[0], pair[1].seq))
        return everything

    def cross_domain_flows(self) -> List[Tuple[str, str, AuditRecord]]:
        """Flows whose actor appears in one domain's log and whose subject
        appears (as an actor) in a *different* domain's — the hand-off
        points federated compliance cares about."""
        actor_domains: Dict[str, Set[str]] = {}
        for domain, records in self._segments.items():
            for r in records:
                actor_domains.setdefault(r.actor, set()).add(domain)
        result = []
        for domain, records in self._segments.items():
            for r in records:
                if r.kind != RecordKind.FLOW_ALLOWED or not r.subject:
                    continue
                target_domains = actor_domains.get(r.subject, set())
                if target_domains and target_domains != {domain}:
                    for td in sorted(target_domains - {domain}):
                        result.append((domain, td, r))
        return result

    def detect_gaps(self) -> List[AuditGap]:
        """Find components other domains reference that never reported.

        A component named as the *subject* of flows but owning no records
        anywhere is an audit gap — Challenge 6's intermittently connected
        or mobile 'thing'.  Components a segmented log vouched for
        (:meth:`~repro.audit.spine.AuditSpine.known_actors`) count as
        reporters even when their segment has since been pruned — a
        pruned reporter is not a gap.
        """
        reporters: Set[str] = set(self._known_reporters)
        for records in self._segments.values():
            for r in records:
                reporters.add(r.actor)
        gaps: Dict[str, AuditGap] = {}
        for domain, records in self._segments.items():
            for r in records:
                if not r.subject or r.subject in reporters:
                    continue
                gap = gaps.get(r.subject)
                if gap is None:
                    gaps[r.subject] = AuditGap(
                        r.subject, r.timestamp, r.timestamp, {domain}
                    )
                else:
                    gap.first_seen = min(gap.first_seen, r.timestamp)
                    gap.last_seen = max(gap.last_seen, r.timestamp)
                    gap.referenced_by.add(domain)
        return sorted(gaps.values(), key=lambda g: g.component)
