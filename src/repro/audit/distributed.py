"""Distributed audit across federated domains (Challenge 6).

The paper asks: "How to deal with possible audit 'gaps', where components
are no longer accessible, intermittently connected or mobile? ... Can
logs be offloaded to others for distributed audit, and how should this
be managed?"

This module provides:

* :class:`AuditCollector` — merges per-domain logs into a single
  time-ordered view, verifying each contributed chain and flagging
  domains whose logs failed verification;
* gap detection — find windows where a component was known active (it
  appears in neighbours' logs) but contributed no records of its own;
* offload receipts — a log owner can hand a signed-digest receipt to a
  collector before pruning locally, preserving accountability.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.audit.log import AuditLog
from repro.audit.records import AuditRecord, RecordKind


@dataclass
class OffloadReceipt:
    """Receipt a collector issues when accepting an offloaded log segment.

    Attributes:
        domain: the contributing administrative domain.
        head_digest: digest of the last record accepted — for a
            segmented spine this is the checkpoint-chain head, which
            itself folds every segment head.
        record_count: how many records the segment held.
        collector_signature: simulated signature binding the receipt.
        segment_heads: for segmented (spine) logs, the per-source
            ``(source, head digest)`` pairs the receipt covers, so a
            domain pruning one segment can still point at the receipt
            that attested it.
    """

    domain: str
    head_digest: str
    record_count: int
    collector_signature: str
    segment_heads: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def sign(
        domain: str,
        head_digest: str,
        count: int,
        collector_key: str,
        segment_heads: Tuple[Tuple[str, str], ...] = (),
    ) -> "OffloadReceipt":
        """Create a receipt; the 'signature' is an HMAC-style digest over
        the receipt body (including any segment heads) with the
        collector's key (simulated crypto)."""
        body = OffloadReceipt._body(domain, head_digest, count, segment_heads, collector_key)
        sig = hashlib.sha256(body.encode()).hexdigest()
        return OffloadReceipt(domain, head_digest, count, sig, segment_heads)

    @staticmethod
    def _body(
        domain: str,
        head_digest: str,
        count: int,
        segment_heads: Tuple[Tuple[str, str], ...],
        collector_key: str,
    ) -> str:
        segments = ";".join(f"{s}={d}" for s, d in segment_heads)
        return f"{domain}|{head_digest}|{count}|{segments}|{collector_key}"

    def verify(self, collector_key: str) -> bool:
        """Check the receipt was issued by the holder of ``collector_key``."""
        body = OffloadReceipt._body(
            self.domain, self.head_digest, self.record_count,
            tuple(self.segment_heads), collector_key,
        )
        return hashlib.sha256(body.encode()).hexdigest() == self.collector_signature


@dataclass
class AuditGap:
    """A detected gap: a component referenced by others but silent itself.

    Attributes:
        component: the silent component's identifier.
        first_seen / last_seen: time window in which neighbours referenced
            it while it produced no records.
        referenced_by: which domains' logs mention it.
    """

    component: str
    first_seen: float
    last_seen: float
    referenced_by: Set[str] = field(default_factory=set)


class AuditCollector:
    """Aggregates logs from many administrative domains.

    Each domain submits its :class:`AuditLog`; the collector verifies the
    hash chain before accepting, records an :class:`OffloadReceipt`, and
    exposes a merged, time-ordered record stream for cross-domain
    forensics (the end-to-end view no single domain holds).
    """

    def __init__(self, key: str = "collector-key"):
        self._key = key
        self._segments: Dict[str, List[AuditRecord]] = {}
        self._rejected: Set[str] = set()
        self._receipts: List[OffloadReceipt] = []
        # Actors the contributing logs vouch for even after local
        # pruning (see AuditSpine.known_actors) — gap detection must not
        # flag a component whose records were merely pruned.
        self._known_reporters: Set[str] = set()

    @property
    def rejected_domains(self) -> Set[str]:
        """Domains whose submitted log failed chain verification."""
        return set(self._rejected)

    def submit(self, domain: str, log: AuditLog) -> Optional[OffloadReceipt]:
        """Accept a domain's log if its chain verifies.

        Returns a receipt on acceptance, None on rejection.  Repeated
        submissions from the same domain extend its segment.  Segmented
        logs (an :class:`~repro.audit.spine.AuditSpine`) are accepted
        the same way: verification covers every segment plus the
        checkpoint chain, and the receipt is taken over the segment
        heads (via a fresh checkpoint) rather than a single linear
        chain's head.
        """
        if not log.verify():
            self._rejected.add(domain)
            return None
        segment_heads: Tuple[Tuple[str, str], ...] = ()
        heads_fn = getattr(log, "segment_heads", None)
        if callable(heads_fn):
            # A fresh checkpoint binds every segment head into the
            # head_digest the receipt signs (no-op if already current).
            log.checkpoint()
            segment_heads = tuple(
                (source, head) for source, (__, head) in sorted(heads_fn().items())
            )
        actors_fn = getattr(log, "known_actors", None)
        if callable(actors_fn):
            self._known_reporters.update(actors_fn())
        records = list(log)
        self._segments.setdefault(domain, []).extend(records)
        receipt = OffloadReceipt.sign(
            domain, log.head_digest, len(records), self._key,
            segment_heads=segment_heads,
        )
        self._receipts.append(receipt)
        return receipt

    def receipts(self) -> List[OffloadReceipt]:
        """All issued receipts."""
        return list(self._receipts)

    def merged(self) -> List[Tuple[str, AuditRecord]]:
        """All accepted records as (domain, record), time-ordered.

        Ties are broken by domain name then sequence for determinism.
        """
        everything: List[Tuple[str, AuditRecord]] = []
        for domain, records in self._segments.items():
            everything.extend((domain, r) for r in records)
        everything.sort(key=lambda pair: (pair[1].timestamp, pair[0], pair[1].seq))
        return everything

    def cross_domain_flows(self) -> List[Tuple[str, str, AuditRecord]]:
        """Flows whose actor appears in one domain's log and whose subject
        appears (as an actor) in a *different* domain's — the hand-off
        points federated compliance cares about."""
        actor_domains: Dict[str, Set[str]] = {}
        for domain, records in self._segments.items():
            for r in records:
                actor_domains.setdefault(r.actor, set()).add(domain)
        result = []
        for domain, records in self._segments.items():
            for r in records:
                if r.kind != RecordKind.FLOW_ALLOWED or not r.subject:
                    continue
                target_domains = actor_domains.get(r.subject, set())
                if target_domains and target_domains != {domain}:
                    for td in sorted(target_domains - {domain}):
                        result.append((domain, td, r))
        return result

    def detect_gaps(self) -> List[AuditGap]:
        """Find components other domains reference that never reported.

        A component named as the *subject* of flows but owning no records
        anywhere is an audit gap — Challenge 6's intermittently connected
        or mobile 'thing'.  Components a segmented log vouched for
        (:meth:`~repro.audit.spine.AuditSpine.known_actors`) count as
        reporters even when their segment has since been pruned — a
        pruned reporter is not a gap.
        """
        reporters: Set[str] = set(self._known_reporters)
        for records in self._segments.values():
            for r in records:
                reporters.add(r.actor)
        gaps: Dict[str, AuditGap] = {}
        for domain, records in self._segments.items():
            for r in records:
                if not r.subject or r.subject in reporters:
                    continue
                gap = gaps.get(r.subject)
                if gap is None:
                    gaps[r.subject] = AuditGap(
                        r.subject, r.timestamp, r.timestamp, {domain}
                    )
                else:
                    gap.first_seen = min(gap.first_seen, r.timestamp)
                    gap.last_seen = max(gap.last_seen, r.timestamp)
                    gap.referenced_by.add(domain)
        return sorted(gaps.values(), key=lambda g: g.component)
