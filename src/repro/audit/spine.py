"""The audit spine: audit emission off the delivery path (§8.3, Fig. 1).

The paper requires every flow decision, policy firing and
reconfiguration to be audited into a tamper-evident log, but a
synchronous hash-chain append (canonical JSON + SHA-256 per record)
inside every enforcement site puts that cost on the message delivery
path.  The :class:`AuditSpine` is the per-machine remedy:

* **Staging** — enforcement sites emit records through cheap per-source
  handles (:class:`SpineEmitter`); :meth:`AuditSpine.emit` only
  constructs the record and appends it to a staged ring.  No
  serialisation, no hashing, no chaining on the delivery path.
* **Deferred draining** — :meth:`AuditSpine.drain` folds staged records
  into per-source hash-chain *segments* (one shard per emitting site:
  ``bus``, ``kernel``, ``substrate``, ...).  Draining runs off the
  delivery path: when the staged ring reaches capacity, on simulated
  clock ticks (:meth:`attach_clock`), or on an explicit ``drain()`` —
  and implicitly before anything *observes* the chain.
* **Checkpoints** — periodically (every ``checkpoint_every`` fruitful
  drains, and on demand) the spine appends a :class:`CHECKPOINT
  <repro.audit.records.RecordKind>` record to its own checkpoint chain,
  folding every segment's ``(position, head digest)`` into one
  cross-segment chain.  The checkpoint chain is what binds independent
  segments together: truncating any one segment below a checkpointed
  position is detected by :meth:`verify`, and
  :attr:`head_digest` — the checkpoint chain's head — authenticates the
  whole spine for offload receipts (``repro.audit.distributed``).

Tamper-evidence window: records become tamper-evident when drained into
their segment, so the drain cadence (ring capacity / clock ticks) bounds
the window in which an in-memory mutation would be chained as mutated.
This is the deliberate trade the spine makes for taking hashing off the
delivery path; a plain unbuffered :class:`~repro.audit.log.AuditLog`
keeps the append-time guarantee where that matters more than
throughput.

The spine is read-compatible with :class:`~repro.audit.log.AuditLog`
(``records()`` / ``denials()`` / iteration / ``verify()`` /
``export()`` / ``prune_before()`` / ``head_digest``), so provenance,
compliance and distributed-audit tooling consume either.  Checkpoint
records live on their own chain and never appear in the record stream —
a spine and a plain log fed the same events yield order-identical
streams.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.audit.log import GENESIS_DIGEST, RecorderMixin
from repro.audit.records import AuditRecord, RecordKind, record_matches
from repro.audit.storage import (  # noqa: F401  (AuditSegment re-exported)
    AuditSegment,
    SegmentStore,
    _segment_genesis,
)
from repro.audit.verify import VerifyStats
from repro.errors import IntegrityViolation
from repro.ifc.labels import SecurityContext

#: Source name used by :meth:`AuditSpine.append` (the AuditLog-compatible
#: direct writer) when the caller has not bound a per-source emitter.
DEFAULT_SOURCE = "main"


class SpineEmitter(RecorderMixin):
    """A per-source write handle onto an :class:`AuditSpine`.

    Enforcement sites hold one of these instead of an ``AuditLog``:
    writes stage into the spine under this emitter's source (the
    segment shard), reads and maintenance delegate to the whole spine —
    so an emitter is a drop-in for the ``AuditLog`` API everywhere one
    is consumed.
    """

    __slots__ = ("spine", "source")

    def __init__(self, spine: "AuditSpine", source: str):
        self.spine = spine
        self.source = source

    def __repr__(self) -> str:
        return f"<SpineEmitter {self.source!r} -> {self.spine.name}>"

    @property
    def name(self) -> str:
        """The backing spine's name (AuditSink-compatible identity)."""
        return self.spine.name

    # -- writes (staged under this source) ---------------------------------

    def append(
        self,
        kind: RecordKind,
        actor: str,
        subject: str = "",
        detail: Optional[Dict] = None,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> AuditRecord:
        """Stage one record; chaining is deferred to the spine's drain."""
        return self.spine.emit(
            self.source, kind, actor, subject, detail,
            source_context, target_context,
        )

    # -- reads / maintenance (whole-spine view) ----------------------------

    def __len__(self) -> int:
        return len(self.spine)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self.spine)

    def flush(self) -> int:
        """Drain the spine (AuditLog-compatible spelling)."""
        return self.spine.drain()

    @property
    def pending(self) -> int:
        return self.spine.pending

    @property
    def head_digest(self) -> str:
        return self.spine.head_digest

    @property
    def checkpoint_position(self) -> int:
        return self.spine.checkpoint_position

    def checkpoint_digest_at(self, position: int) -> Optional[str]:
        return self.spine.checkpoint_digest_at(position)

    def records(self, *args, **kwargs) -> List[AuditRecord]:
        return self.spine.records(*args, **kwargs)

    def query(self, *args, **kwargs) -> List[AuditRecord]:
        return self.spine.query(*args, **kwargs)

    def denials(self) -> List[AuditRecord]:
        return self.spine.denials()

    def sources(self) -> List[str]:
        return self.spine.sources()

    def segment_heads(self) -> Dict[str, Tuple[int, str]]:
        return self.spine.segment_heads()

    def known_actors(self) -> Set[str]:
        return self.spine.known_actors()

    def checkpoint(self) -> Optional[AuditRecord]:
        return self.spine.checkpoint()

    def verify(self, mode: str = "incremental", workers=None) -> bool:
        return self.spine.verify(mode=mode, workers=workers)

    def verify_strict(self, deep: bool = False, workers=None):
        return self.spine.verify_strict(deep=deep, workers=workers)

    def verify_stats(self) -> Dict:
        return self.spine.verify_stats()

    def export(self) -> List[Dict]:
        return self.spine.export()

    def prune_before(self, timestamp: float) -> int:
        return self.spine.prune_before(timestamp)

    def demote_before(self, timestamp: float) -> int:
        return self.spine.demote_before(timestamp)

    def tier_stats(self) -> Dict:
        return self.spine.tier_stats()


def _deep_of(mode: str) -> bool:
    """Map the consumer-facing ``mode`` string to ``deep``."""
    if mode == "deep":
        return True
    if mode == "incremental":
        return False
    raise ValueError(
        f"verification mode must be 'incremental' or 'deep', got {mode!r}"
    )


def bind_source(audit, source: str):
    """Adapt whatever audit sink a component was given to a per-source one.

    * ``None`` stays ``None`` (auditing disabled);
    * an :class:`AuditSpine` yields a :class:`SpineEmitter` for
      ``source`` — the staged, off-delivery-path write handle;
    * a :class:`SpineEmitter` is re-bound to ``source`` on its spine
      (components compose: a bus hands its sink to its channels, each
      layer claiming its own segment);
    * anything else (a plain :class:`~repro.audit.log.AuditLog`) is
      returned unchanged — the owner chose synchronous semantics.

    This is the only audit-plumbing call enforcement sites make; none of
    them construct chain digests or choose chaining policy themselves.
    """
    if audit is None:
        return None
    if isinstance(audit, AuditSpine):
        return audit.emitter(source)
    if isinstance(audit, SpineEmitter):
        return audit.spine.emitter(source)
    return audit


class AuditSpine(RecorderMixin):
    """Per-machine staged audit: ring buffer → per-source segments →
    checkpointed cross-segment chain.

    Example::

        spine = AuditSpine(clock=sim.now, name="audit@host")
        bus_audit = spine.emitter("bus")        # cheap staged writes
        bus_audit.flow_allowed("sensor", "analyser", ctx, ctx)
        spine.drain()                            # off the delivery path
        assert spine.verify()

    ``ring_capacity`` bounds staged memory *per source*: a ring reaching
    it forces an inline drain (amortised, never per-record).
    ``checkpoint_every`` sets how many fruitful drains pass between
    automatic checkpoints; anything that needs the cross-segment head
    (``head_digest``, offload) forces one.  Staged records are
    immediately visible to ``records()`` / iteration, exactly like
    buffered ``AuditLog`` appends.

    Concurrency (``docs/worker_plane.md``): emission and maintenance
    may race.  Each source stages into its *own* ring (per-worker
    ``SpineEmitter`` sources are the whole point of the staged design:
    one writer per ring, list appends are atomic), sequence numbers come
    from an atomic counter, and :meth:`drain` snapshots each ring's
    cursor — it chains exactly the records staged when it looked,
    removes exactly that prefix, and leaves anything a racing emitter
    appended meanwhile for the next drain.  Nothing is ever lost or
    double-chained.  Drain, checkpoint, verify, prune and export
    serialise on one maintenance lock; emission never takes it.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        name: str = "audit-spine",
        ring_capacity: int = 1024,
        checkpoint_every: int = 4,
    ):
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self.ring_capacity = max(1, ring_capacity)
        self.checkpoint_every = max(1, checkpoint_every)
        #: Per-source staging rings: one writer (worker) per ring keeps
        #: emission contention-free; drains snapshot ring cursors.
        self._staged: Dict[str, List[AuditRecord]] = {}
        #: The storage layer: per-source open tails plus (when spill is
        #: configured) sealed/indexed/demotable segments — see
        #: ``repro.audit.storage`` and ``docs/audit_storage.md``.
        self._store = SegmentStore(
            genesis=lambda source: _segment_genesis(name, source)
        )
        self._emitters: Dict[str, SpineEmitter] = {}
        self._seq = itertools.count()
        # Reentrant: checkpoint() drains, verify drains, drain may
        # checkpoint — all off the emission path.
        self._maint = threading.RLock()
        # The checkpoint chain is itself an AuditSegment — same chain,
        # rebase-on-prune and verify machinery as the record shards.
        self._ckpt = AuditSegment(
            "__checkpoints__", _segment_genesis(name, "__checkpoints__")
        )
        self._drains_since_checkpoint = 0
        self._chained_at_last_checkpoint = 0
        self._chained_records = 0
        #: Checkpoint-binding watermark: ``(position, digest)`` of the
        #: checkpoint chain's head after the last fully successful
        #: verification.  An incremental pass that re-derives the same
        #: digest at that position only walks the bindings of
        #: checkpoints appended since; any prune or store watermark
        #: invalidation drops it and forces a full binding re-walk.
        self._ckpt_bound: Optional[Tuple[int, str]] = None
        #: Stats of the most recent ``verify_strict`` pass (successful
        #: or not), plus cumulative totals — ``verify_stats()``.
        self.last_verify_stats: Optional[VerifyStats] = None
        self.stats_verifies = 0
        self._verify_cum = {
            "segments_verified": 0,
            "segments_skipped": 0,
            "records_verified": 0,
            "bytes_hashed": 0,
            "watermark_hits": 0,
            "watermark_invalidations": 0,
            "checkpoints_verified": 0,
            "checkpoints_skipped": 0,
            "wall_s": 0.0,
        }
        # Every actor ever drained — survives pruning, so distributed
        # gap detection can tell "pruned" from "never reported".
        self._actors: Set[str] = set()
        self.stats_drains = 0
        self.stats_checkpoints = 0
        #: Drains forced inline by a ring reaching capacity — the
        #: back-pressure signal the per-worker rollup reports.
        self.stats_ring_overflows = 0

    def __repr__(self) -> str:
        return (
            f"<AuditSpine {self.name} segments={len(self._store.tails)} "
            f"records={len(self)} staged={self.pending}>"
        )

    @property
    def _segments(self) -> Dict[str, AuditSegment]:
        """Back-compat view: source → open tail segment.

        Pre-tiering code (and tests) reached into ``spine._segments``;
        the authoritative layout now lives in :attr:`_store`.  With no
        spill configured every record is in the tail, so this view is
        complete; with tiering on it shows only the un-sealed suffix.
        """
        return dict(self._store.tails)

    # -- emission (the delivery-path side) ---------------------------------

    def emitter(self, source: str) -> SpineEmitter:
        """The per-source write handle (one shared instance per source)."""
        emitter = self._emitters.get(source)
        if emitter is None:
            emitter = self._emitters[source] = SpineEmitter(self, source)
        return emitter

    def emit(
        self,
        source: str,
        kind: RecordKind,
        actor: str,
        subject: str = "",
        detail: Optional[Dict] = None,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> AuditRecord:
        """Stage one record under ``source``.  The delivery-path cost is
        record construction plus a list append onto the source's own
        ring — no serialisation, no hashing, no lock; those happen at
        :meth:`drain`.  Sources are single-writer: each concurrent
        worker binds its own emitter source, so a ring's append order is
        its emission order."""
        record = AuditRecord(
            seq=next(self._seq),
            timestamp=self._clock(),
            kind=kind,
            actor=actor,
            subject=subject,
            detail=dict(detail or {}),
            source_context=source_context,
            target_context=target_context,
        )
        ring = self._staged.get(source)
        if ring is None:
            ring = self._ring(source)
        ring.append(record)
        if len(ring) >= self.ring_capacity:
            self.stats_ring_overflows += 1
            self.drain()
        return record

    def _ring(self, source: str) -> List[AuditRecord]:
        """Create (or fetch) the staging ring for ``source``.

        Ring creation is the one emission-path step that must
        coordinate (two sources appearing at once), so it takes the
        maintenance lock — once, per source, ever.
        """
        with self._maint:
            return self._staged.setdefault(source, [])

    def append(
        self,
        kind: RecordKind,
        actor: str,
        subject: str = "",
        detail: Optional[Dict] = None,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> AuditRecord:
        """AuditLog-compatible direct write, staged under
        :data:`DEFAULT_SOURCE`."""
        return self.emit(
            DEFAULT_SOURCE, kind, actor, subject, detail,
            source_context, target_context,
        )

    # -- draining & checkpoints --------------------------------------------

    def segment(self, source: str) -> AuditSegment:
        """The open tail segment for ``source`` (created on first use).

        With tiering configured, sealed/cold history lives behind the
        :class:`~repro.audit.storage.SegmentStore`; the tail is where
        new records chain.
        """
        return self._store.tail(source)

    def configure_spill(
        self,
        path,
        hot_segments: int = 2,
        seal_every: int = 1024,
    ) -> None:
        """Enable tiered storage: seal the tail every ``seal_every``
        records, keep the ``hot_segments`` newest sealed segments in
        memory, spill the rest to ``path`` (``docs/audit_storage.md``).

        Chains, digests, checkpoints, receipts and pinboard verdicts are
        unaffected — only where record bytes live changes.
        """
        with self._maint:
            self._store.configure_spill(
                path, hot_segments=hot_segments, seal_every=seal_every
            )

    @property
    def pending(self) -> int:
        """Records staged but not yet chained into their segment."""
        return sum(len(ring) for ring in list(self._staged.values()))

    def drain(self) -> int:
        """Fold every staged record into its source's segment chain.

        Returns the number of records drained.  Idempotent — draining
        empty rings is a no-op and does not advance the checkpoint
        cadence.

        Safe while emitters append: per ring, the drain snapshots the
        cursor (the ring's length at the moment it looks), chains
        exactly that prefix, and truncates exactly that prefix — a
        record a racing worker staged mid-drain stays in the ring for
        the next drain rather than being dropped by a wholesale
        ``clear()``.
        """
        with self._maint:
            drained = 0
            store = self._store
            actors = self._actors
            for source, ring in list(self._staged.items()):
                # Cursor snapshot: appends past `n` belong to the next
                # drain.  ring[:n] copies the prefix; `del ring[:n]` is
                # one atomic list op, so a concurrent append can only
                # land beyond the deleted slice.
                n = len(ring)
                if not n:
                    continue
                seg = store.tail(source)
                for record in ring[:n]:
                    seg.chain(record)
                    actors.add(record.actor)
                del ring[:n]
                drained += n
                # Seal/demote off the emission path, while we hold the
                # maintenance lock and the tail is fresh in cache.
                store.maybe_seal(source)
            if not drained:
                return 0
            self._chained_records += drained
            self.stats_drains += 1
            self._drains_since_checkpoint += 1
            if self._drains_since_checkpoint >= self.checkpoint_every:
                self.checkpoint()
            return drained

    def flush(self) -> int:
        """AuditLog-compatible alias for :meth:`drain`."""
        return self.drain()

    def attach_clock(self, clock) -> None:
        """Drain on every simulated-clock advance (background draining).

        ``clock`` is a :class:`repro.sim.clock.Clock` (anything exposing
        ``on_advance``); each tick moves staged records into their
        segments so the tamper-evidence window tracks simulated time,
        not traffic volume.
        """
        clock.on_advance(self._on_tick)

    def detach_clock(self, clock) -> bool:
        """Stop draining on ``clock``'s ticks (the decommission path —
        without this the clock keeps the spine alive and ticking
        forever).  Returns whether the spine was attached."""
        return clock.off_advance(self._on_tick)

    def _on_tick(self, now: float) -> None:
        if any(self._staged.values()):
            self.drain()

    def checkpoint(self) -> Optional[AuditRecord]:
        """Fold every segment head into the cross-segment checkpoint chain.

        Drains first.  Returns the new CHECKPOINT record, or None when
        nothing changed since the last checkpoint (no-op, so repeated
        observers do not inflate the chain).  Checkpoint records carry,
        per source, the segment's absolute head position and head digest
        — :meth:`verify` later holds every retained segment to them.
        Safe to call while emitters append (maintenance lock; the heads
        it pins are the post-drain heads of the records it could see).
        """
        with self._maint:
            self.drain()
            if not self._store.tails:
                # A spine that never recorded anything has nothing to
                # pin — head_digest stays at genesis, like an empty log.
                return None
            if (
                self._chained_records == self._chained_at_last_checkpoint
                and self._ckpt.total
            ):
                return None
            heads = {}
            counts = {}
            for source in self._store.sources():
                heads[source] = self._store.head(source)
                counts[source] = self._store.total(source)
            # Checkpoints number their own chain: record seqs must track
            # the event stream exactly (a spine and a plain log fed the
            # same events stay seq-identical).
            record = AuditRecord(
                seq=self._ckpt.total,
                timestamp=self._clock(),
                kind=RecordKind.CHECKPOINT,
                actor=self.name,
                subject="",
                detail={"heads": heads, "counts": counts},
            )
            self._ckpt.chain(record)
            self._chained_at_last_checkpoint = self._chained_records
            self._drains_since_checkpoint = 0
            self.stats_checkpoints += 1
            return record

    @property
    def head_digest(self) -> str:
        """Head of the checkpoint chain — the one digest that
        authenticates every segment (checkpoints on demand)."""
        self.checkpoint()
        if self._ckpt.total:
            return self._ckpt.head
        return GENESIS_DIGEST

    @property
    def checkpoint_position(self) -> int:
        """Absolute checkpoint-chain position (pruned + retained).

        Together with :meth:`checkpoint_digest_at` this is what a remote
        :class:`~repro.audit.distributed.FederationPinboard` pins: the
        chain is append-only, so the digest at a given position must
        never change for the life of the spine.
        """
        return self._ckpt.total

    def checkpoint_digest_at(self, position: int) -> Optional[str]:
        """Checkpoint-chain digest at absolute ``position``.

        ``None`` when the position was pruned away locally (the pin
        holder still vouches for it); position semantics match
        :meth:`AuditSegment.digest_at` — ``k`` is the head after ``k``
        checkpoint records.
        """
        return self._ckpt.digest_at(position)

    # -- reading (AuditLog-compatible) -------------------------------------

    def _merged(self) -> List[AuditRecord]:
        # Each source's records are seq-ascending (single-writer
        # sources), and everything staged was emitted after everything
        # drained in its own source — a k-way merge rebuilds the stream
        # in O(n), no sort.  Lists are snapshotted so racing
        # appends/drains cannot shift them mid-merge.  Cold segments are
        # loaded on demand here: full iteration is the one read that
        # genuinely needs every record (query() is the tier-aware path).
        streams = [
            records
            for records in (
                self._store.records_of(source)
                for source in self._store.sources()
            )
            if records
        ]
        staged = [
            record
            for ring in list(self._staged.values())
            for record in list(ring)
        ]
        if staged:
            staged.sort(key=lambda r: r.seq)
            streams.append(staged)
        if len(streams) == 1:
            return list(streams[0])
        return list(heapq.merge(*streams, key=lambda r: r.seq))

    def __len__(self) -> int:
        return self._store.total_retained() + self.pending

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._merged())

    def records(
        self,
        kind: Optional[RecordKind] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[AuditRecord]:
        """Filter records by kind / actor / subject / time window.

        Staged records are included (they are already part of the
        stream, just not yet tamper-evident); checkpoint records are
        not — they live on their own chain.
        """
        result = []
        for r in self._merged():
            if kind is not None and r.kind != kind:
                continue
            if actor is not None and r.actor != actor:
                continue
            if subject is not None and r.subject != subject:
                continue
            if since is not None and r.timestamp < since:
                continue
            if until is not None and r.timestamp > until:
                continue
            result.append(r)
        return result

    def query(
        self,
        kind: Optional[RecordKind] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        entity: Optional[str] = None,
        tag: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        stats=None,
    ) -> List[AuditRecord]:
        """Index-backed record query across hot and cold tiers.

        Unlike :meth:`records` (a full merged scan), ``query`` probes
        each sealed segment's :class:`~repro.audit.storage.SegmentIndex`
        first and scans only segments that *could* match — on a
        million-record chain a tag or actor query touches a handful of
        segments, and cold ones are loaded only when their index says
        they matter.  ``entity`` matches actor or subject; ``tag`` is a
        qualified ``"namespace:name"`` string matched against either
        recorded context.  Results are seq-ordered and identical to
        filtering the flat record stream (the property the test suite
        pins).  Pass a :class:`~repro.audit.query.QueryStats` as
        ``stats`` to observe the probe/scan accounting.
        """
        with self._maint:
            self.drain()  # staged records are part of the stream
            kind_value = kind.value if kind is not None else None
            matched: List[AuditRecord] = []
            store = self._store
            for source in store.sources():
                for chunk in store.sealed.get(source, ()):
                    if stats is not None:
                        stats.segments_total += 1
                    if not chunk.index.may_match(
                        kind_value, actor, subject, entity, tag, since, until
                    ):
                        if stats is not None:
                            stats.segments_skipped += 1
                        continue
                    if stats is not None:
                        stats.segments_scanned += 1
                    if chunk.is_cold:
                        store.stats_cold_loads += 1
                        if stats is not None:
                            stats.cold_loads += 1
                    for record in chunk.records():
                        if stats is not None:
                            stats.records_scanned += 1
                        if record_matches(
                            record, kind, actor, subject, entity, tag,
                            since, until,
                        ):
                            matched.append(record)
                # The open tail has no index yet — always scanned.
                for record in list(store.tails[source].records):
                    if stats is not None:
                        stats.records_scanned += 1
                    if record_matches(
                        record, kind, actor, subject, entity, tag,
                        since, until,
                    ):
                        matched.append(record)
            matched.sort(key=lambda r: r.seq)
            return matched

    def denials(self) -> List[AuditRecord]:
        """All denied flows/accesses — the compliance hot list."""
        return [r for r in self._merged() if r.is_denial]

    def sources(self) -> List[str]:
        """Every source that has a segment, sorted."""
        return self._store.sources()

    def segment_heads(self) -> Dict[str, Tuple[int, str]]:
        """Per-source ``(absolute position, head digest)`` — the offload
        receipt material (drains first so heads are current)."""
        with self._maint:
            self.drain()
            return {
                source: (self._store.total(source), self._store.head(source))
                for source in self._store.sources()
            }

    def known_actors(self) -> Set[str]:
        """Every actor that ever emitted here, surviving pruning.

        Distributed gap detection uses this to avoid flagging a
        component as silent when its records were merely pruned."""
        staged = {
            record.actor
            for ring in list(self._staged.values())
            for record in list(ring)
        }
        return self._actors | staged

    def checkpoints(self) -> List[AuditRecord]:
        """The retained checkpoint records (oldest first)."""
        return list(self._ckpt.records)

    # -- verification -------------------------------------------------------

    def verify(
        self,
        mode: str = "incremental",
        workers: Optional[int] = None,
    ) -> bool:
        """True iff every segment chain, the checkpoint chain, and every
        retained checkpoint's segment-head bindings hold.

        ``mode="incremental"`` (the default) skips cold segments whose
        verified watermark is intact; ``mode="deep"`` recomputes
        everything.  Both modes detect every tamper class — see the
        verification-modes section of ``docs/audit_storage.md``.
        ``workers`` fans independent segment recomputations across a
        thread pool.
        """
        try:
            self.verify_strict(deep=_deep_of(mode), workers=workers)
            return True
        except IntegrityViolation:
            return False

    def verify_strict(
        self,
        deep: bool = False,
        workers: Optional[int] = None,
    ) -> VerifyStats:
        """Verify the whole spine, raising on the first mismatch.

        Drains first (staged records must be chained to be checkable).
        Beyond per-segment chain verification, every retained checkpoint
        pins each segment: a segment truncated below a checkpointed
        position — or whose digest at that position changed — fails
        here, which is the cross-segment guarantee a single shared chain
        used to give for free.  Runs under the maintenance lock, so a
        concurrent drain cannot move segment heads mid-verification —
        records emitters stage *during* the verify simply aren't part of
        the history being checked yet.

        ``deep=True`` recomputes every chunk and every checkpoint
        binding unconditionally (the historical behaviour, still the
        authoritative mode).  ``deep=False`` — incremental — always
        recomputes the hot tier and anything whose watermark dropped,
        but skips cold segments (and checkpoint bindings) already
        covered by an intact watermark.  Returns the pass's
        :class:`~repro.audit.verify.VerifyStats`.
        """
        with self._maint:
            return self._verify_locked(deep=deep, workers=workers)

    def _verify_locked(
        self,
        deep: bool = True,
        workers: Optional[int] = None,
    ) -> VerifyStats:
        started = time.perf_counter()
        stats = VerifyStats(
            mode="deep" if deep else "incremental",
            workers=max(1, workers or 1),
        )
        self.last_verify_stats = stats
        try:
            self.drain()
            # Every source's full chain — hot tail, hot sealed, cold
            # spilled — including the continuity joins at segment
            # boundaries (incremental mode skips watermarked cold
            # chunks; the joins are always checked).
            self._store.verify(deep=deep, workers=workers, stats=stats)
            # The checkpoint chain itself is hot in-memory state: always
            # recomputed in full, in either mode.
            stats.bytes_hashed += self._ckpt.verify()
            records = self._ckpt.records
            stats.checkpoints_total = len(records)
            start_idx = 0
            if not deep:
                bound = self._ckpt_bound
                if (
                    bound is not None
                    and stats.watermark_invalidations == 0
                    and bound[0] >= self._ckpt.base_count
                    and self._ckpt.digest_at(bound[0]) == bound[1]
                ):
                    # The chain up to the bound re-derives the digest we
                    # recorded after the last successful pass, and no
                    # cold watermark dropped underneath it — only
                    # checkpoints appended since need their bindings
                    # walked.  Any consistent rewrite of history moves
                    # either a cold watermark key or this digest.
                    start_idx = bound[0] - self._ckpt.base_count
            stats.checkpoints_skipped = start_idx
            stats.checkpoints_verified = len(records) - start_idx
            for record in records[start_idx:]:
                heads = record.detail.get("heads", {})
                counts = record.detail.get("counts", {})
                for source, head in heads.items():
                    if source not in self._store.tails:
                        raise IntegrityViolation(
                            f"segment {source!r} vanished after checkpoint "
                            f"seq {record.seq}"
                        )
                    position = counts.get(source, 0)
                    total = self._store.total(source)
                    if position > total:
                        raise IntegrityViolation(
                            f"segment {source!r} truncated below "
                            f"checkpointed position {position} "
                            f"(holds {total})"
                        )
                    expected = self._store.digest_at(source, position)
                    if expected is not None and expected != head:
                        raise IntegrityViolation(
                            f"segment {source!r} head at position "
                            f"{position} does not match checkpoint "
                            f"seq {record.seq}"
                        )
            self._ckpt_bound = (self._ckpt.total, self._ckpt.head)
        except IntegrityViolation:
            # A failed pass proves nothing about the bindings.
            self._ckpt_bound = None
            raise
        finally:
            stats.wall_s = time.perf_counter() - started
            self.stats_verifies += 1
            cum = self._verify_cum
            for key in cum:
                cum[key] += getattr(stats, key)
        return stats

    def verify_stats(self) -> Dict:
        """Verification rollup: last pass + cumulative totals.

        The ``Deployment.stats()["verify"]`` building block — how much
        chain the spine has recomputed versus skipped over its lifetime,
        plus the most recent pass in full.
        """
        with self._maint:
            rollup = dict(self._verify_cum)
            rollup["verifies"] = self.stats_verifies
            rollup["last"] = (
                self.last_verify_stats.to_dict()
                if self.last_verify_stats is not None
                else None
            )
            return rollup

    # -- maintenance ---------------------------------------------------------

    def prune_before(self, timestamp: float) -> int:
        """Discard records older than ``timestamp`` from every segment.

        Each segment rebases its chain on the last pruned digest
        (as ``AuditLog.prune_before`` does), and checkpoint records
        older than ``timestamp`` are pruned from the checkpoint chain
        the same way.  Returns the number of *records* pruned
        (checkpoints are chain metadata, not stream records).
        """
        with self._maint:
            self.drain()
            pruned = self._store.prune_before(timestamp)
            keep_from = 0
            checkpoints = self._ckpt.records
            while (
                keep_from < len(checkpoints)
                and checkpoints[keep_from].timestamp < timestamp
            ):
                keep_from += 1
            self._ckpt.prune_prefix(keep_from)
            # Pruning moves segment bases and the checkpoint chain's
            # base: the binding watermark no longer describes the
            # retained history.
            self._ckpt_bound = None
            return pruned

    def demote_before(self, timestamp: float) -> int:
        """Move records older than ``timestamp`` to the cold tier.

        The non-destructive counterpart of :meth:`prune_before` — the
        default action legal retention obligations take
        (``repro.policy.legal``): the records leave hot memory but stay
        on disk, fully chained, verifiable and queryable.  Returns the
        number of records demoted; 0 when no spill tier is configured
        (call :meth:`configure_spill` first).
        """
        with self._maint:
            self.drain()
            return self._store.demote_before(timestamp)

    def tier_stats(self) -> Dict:
        """Hot/cold tier rollup (record counts, segment counts, spill
        bytes, seal/demotion/cold-load counters, hot-window bounds)."""
        with self._maint:
            return self._store.tier_stats()

    def prune_segment(self, source: str, before: Optional[float] = None) -> int:
        """Prune one segment (wholly, or records before ``before``).

        Per-source retention: a chatty kernel segment can be cut without
        touching the bus's.  The segment object (base digest, absolute
        position, actor memory) survives, so later checkpoints and gap
        detection still account for what was pruned.
        """
        with self._maint:
            self.drain()
            self._ckpt_bound = None
            return self._store.prune_source(source, before)

    def export(self) -> List[Dict]:
        """Serialise records with digests and segment attribution, in
        stream order, for offload to another party (Challenge 6)."""
        with self._maint:
            self.drain()
            return self._store.export_entries()

    def export_checkpoints(self) -> List[Dict]:
        """Serialise the checkpoint chain (records + digests)."""
        with self._maint:
            return [
                {"record": r.canonical(), "digest": d}
                for r, d in zip(self._ckpt.records, self._ckpt.digests)
            ]
