"""Tiered segment storage for the audit plane (``docs/audit_storage.md``).

The spine used to keep every drained record in one ever-growing Python
list per source; ``prune_before`` was the only relief, and legal
retention obligations fought auditability (pruning destroys the trail).
This module is the storage layer behind the spine now, following the
hot/cold tiering pattern of patient-monitoring stacks (a hot store for
"the last hour of vitals", a cold store for long-term analytics):

* **Hot tail** — each source chains into an open, in-memory
  :class:`AuditSegment` exactly as before.
* **Seal** — when the tail reaches ``seal_every`` records it is sealed
  into an immutable :class:`SealedSegment`; a compact
  :class:`SegmentIndex` (time bounds, actors, subjects, kinds, tags) is
  built at seal time, and the source continues in a fresh tail whose
  chain base is the sealed head — the chain is continuous across
  seals.
* **Demote** — sealed segments beyond the ``hot_segments`` newest are
  spilled to disk in a fixed-stride, mmap-able record format (header +
  chain digests preserved verbatim) and their in-memory records are
  dropped.  Only the segment's base/head digests, counts and index stay
  resident, so ``verify()`` still holds the file to the digests the
  live process committed to.

Everything that *observes* the chain — ``verify()``, ``export()``,
checkpoint receipts, federation pinboard verdicts — reads identically
whether a segment is hot or spilled; :class:`~repro.audit.query.
AuditQuery` uses the per-segment indexes to answer entity/tag/time
queries from index probes plus a bounded number of segment scans.

On-disk record format (one file per sealed segment)::

    magic   8 bytes   b"RAUDSEG1"
    u32     4 bytes   header length H
    header  H bytes   JSON: version, source, base_digest, base_count,
                      count, head, stride, index
    slots   count x stride, 16-aligned, starting at offset
            align16(12 + H); slot i at data_start + i*stride:
        u32      canonical length L
        64 bytes chain digest (hex, verbatim)
        L bytes  canonical record JSON (verbatim digest material)
        padding  zeros to stride

Fixed stride means record ``i`` is one pointer computation away under
``mmap`` — no scan to seek, which is what lets cold queries touch only
the slots a segment index proved relevant.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import re
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.audit.log import chain_digest
from repro.audit.records import AuditRecord, _context_tags
from repro.audit.verify import VerifyStats
from repro.errors import IntegrityViolation

SPILL_MAGIC = b"RAUDSEG1"
SPILL_VERSION = 1

_UNSAFE = re.compile(r"[^a-zA-Z0-9_.\-]")

#: A verified-watermark is only recorded when the spill file's mtime is
#: at least this much older than the moment verification completed.
#: Filesystem timestamps are coarse (a scheduler tick on most kernels),
#: so a file modified in the same tick as the verification could later
#: be rewritten without its mtime changing — the git "racily clean"
#: problem.  Refusing to watermark inside the margin means any write
#: that lands *after* a successful verify always perturbs the stat the
#: watermark recorded, so incremental mode re-verifies it.
_STAT_MARGIN_NS = 50_000_000


def _segment_genesis(spine_name: str, source: str) -> str:
    """Domain-separated genesis digest for one segment's chain."""
    return hashlib.sha256(
        f"repro-audit-segment|{spine_name}|{source}".encode()
    ).hexdigest()


class AuditSegment:
    """One source's open hash-chain tail inside a spine.

    Records are chained exactly as in :class:`~repro.audit.log.AuditLog`
    (``digest = sha256(prev + canonical)``), but the chain base is
    domain-separated by spine and source name so segments from different
    sources can never be spliced into one another.  ``base_count`` is
    the absolute position of the first retained record — pruning (or
    sealing) a prefix promotes the last covered digest to
    ``base_digest``, keeping the retained suffix verifiable, exactly
    like ``AuditLog.prune_before``.
    """

    __slots__ = (
        "source", "records", "digests", "base_digest", "base_count",
        "canonicals",
    )

    def __init__(self, source: str, genesis: str):
        self.source = source
        self.records: List[AuditRecord] = []
        self.digests: List[str] = []
        self.base_digest = genesis
        self.base_count = 0
        #: Canonical serialisations kept alongside the records, so seal
        #: and demote never re-serialise (the spill file wants exactly
        #: the bytes that were hashed).  Only populated on tiered tails
        #: (``SegmentStore.configure_spill``); plain in-memory spines
        #: skip the extra retention.
        self.canonicals: Optional[List[str]] = None

    @property
    def head(self) -> str:
        """Digest of the last chained record (base digest when empty)."""
        return self.digests[-1] if self.digests else self.base_digest

    @property
    def total(self) -> int:
        """Absolute chain position of the head (pruned + retained)."""
        return self.base_count + len(self.records)

    def chain(self, record: AuditRecord) -> str:
        """Fold one record into this segment's chain."""
        canonical = record.canonical()
        digest = chain_digest(self.head, canonical)
        self.records.append(record)
        self.digests.append(digest)
        if self.canonicals is not None:
            self.canonicals.append(canonical)
        return digest

    def digest_at(self, position: int) -> Optional[str]:
        """Chain digest at absolute ``position``, or None if pruned away.

        Position ``k`` is the head digest after ``k`` records; position
        ``base_count`` is the (real, computed) base digest itself.
        """
        if position < self.base_count:
            return None
        if position == self.base_count:
            return self.base_digest
        if position > self.total:
            return None
        return self.digests[position - self.base_count - 1]

    def verify(self) -> int:
        """Recompute the whole retained chain, raising on mismatch.

        Returns the number of digest-material bytes re-hashed (the
        verification plane's accounting currency).
        """
        digest = self.base_digest
        hashed = 0
        for record, stored in zip(self.records, self.digests):
            canonical = record.canonical()
            digest = chain_digest(digest, canonical)
            hashed += len(canonical) + _DIGEST_BYTES
            if digest != stored:
                raise IntegrityViolation(
                    f"segment {self.source!r} chain broken at seq {record.seq}"
                )
        return hashed

    def prune_prefix(self, keep_from: int) -> int:
        """Drop the first ``keep_from`` retained records, rebasing the
        chain on the last pruned digest.  Returns the number pruned."""
        if keep_from <= 0:
            return 0
        self.base_digest = self.digests[keep_from - 1]
        self.base_count += keep_from
        self.records = self.records[keep_from:]
        self.digests = self.digests[keep_from:]
        if self.canonicals is not None:
            self.canonicals = self.canonicals[keep_from:]
        return keep_from


class SegmentIndex:
    """The compact per-segment index built at seal time.

    Holds everything :class:`~repro.audit.query.AuditQuery` needs to
    decide *whether a segment can possibly match* without touching its
    records: the time window, the actor and subject sets, the record
    kinds, and every qualified tag carried by any record's contexts.
    Indexes stay resident even when the segment's records are cold —
    they are the hot map over the cold tier.
    """

    __slots__ = ("time_min", "time_max", "seq_min", "seq_max",
                 "actors", "subjects", "kinds", "tags")

    def __init__(
        self,
        time_min: float,
        time_max: float,
        seq_min: int,
        seq_max: int,
        actors: Set[str],
        subjects: Set[str],
        kinds: Set[str],
        tags: Set[str],
    ):
        self.time_min = time_min
        self.time_max = time_max
        self.seq_min = seq_min
        self.seq_max = seq_max
        self.actors = actors
        self.subjects = subjects
        self.kinds = kinds
        self.tags = tags

    @classmethod
    def over(cls, records: List[AuditRecord]) -> "SegmentIndex":
        """Build the index over a sealed segment's records.

        One comprehension pass per set (cheaper than a single
        interpreted loop doing every extraction — this runs at seal
        time for every record that ever goes cold).
        """
        # Enforcement reuses a handful of context objects across a whole
        # segment: dedupe by identity before walking tags (the walk
        # itself is memoised per context in record_tags' helper).
        contexts: Dict[int, object] = {
            id(r.source_context): r.source_context
            for r in records if r.source_context is not None
        }
        contexts.update(
            (id(r.target_context), r.target_context)
            for r in records if r.target_context is not None
        )
        tags: Set[str] = set()
        for ctx in contexts.values():
            tags |= _context_tags(ctx)
        return cls(
            time_min=min(r.timestamp for r in records),
            time_max=max(r.timestamp for r in records),
            seq_min=min(r.seq for r in records),
            seq_max=max(r.seq for r in records),
            actors={r.actor for r in records},
            subjects={r.subject for r in records if r.subject},
            kinds={r.kind.value for r in records},
            tags=tags,
        )

    def may_match(
        self,
        kind_value: Optional[str] = None,
        actor: Optional[str] = None,
        subject: Optional[str] = None,
        entity: Optional[str] = None,
        tag: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> bool:
        """Whether any record in the segment *could* satisfy the filter.

        False is definitive (the scan is skipped); True only means the
        segment must be scanned.
        """
        if kind_value is not None and kind_value not in self.kinds:
            return False
        if actor is not None and actor not in self.actors:
            return False
        if subject is not None and subject not in self.subjects:
            return False
        if entity is not None and (
            entity not in self.actors and entity not in self.subjects
        ):
            return False
        if tag is not None and tag not in self.tags:
            return False
        if since is not None and self.time_max < since:
            return False
        if until is not None and self.time_min > until:
            return False
        return True

    def to_dict(self) -> Dict:
        return {
            "time_min": self.time_min,
            "time_max": self.time_max,
            "seq_min": self.seq_min,
            "seq_max": self.seq_max,
            "actors": sorted(self.actors),
            "subjects": sorted(self.subjects),
            "kinds": sorted(self.kinds),
            "tags": sorted(self.tags),
        }

    @classmethod
    def from_dict(cls, body: Dict) -> "SegmentIndex":
        return cls(
            time_min=body["time_min"],
            time_max=body["time_max"],
            seq_min=body["seq_min"],
            seq_max=body["seq_max"],
            actors=set(body["actors"]),
            subjects=set(body["subjects"]),
            kinds=set(body["kinds"]),
            tags=set(body["tags"]),
        )


# -- the fixed-stride spill codec -------------------------------------------

_LEN = struct.Struct("<I")
_DIGEST_BYTES = 64  # sha256 hex


def _align16(n: int) -> int:
    return (n + 15) & ~15


def write_spill(
    path: Path,
    source: str,
    base_digest: str,
    base_count: int,
    head: str,
    entries: List[Tuple[str, str]],
    index: SegmentIndex,
) -> Tuple[int, str]:
    """Write one sealed segment to ``path``.

    Returns ``(bytes written, header digest)`` — the writer keeps the
    header digest *in memory* so that tampering with the on-disk header
    (including the query index) is detected by :meth:`SealedSegment.
    verify`, not just tampering with record slots.  ``entries`` are
    ``(canonical, digest)`` pairs — the digest material and chain
    digests verbatim, never re-serialised.
    """
    encoded = [c.encode() for c, __ in entries]
    stride = _align16(
        _LEN.size + _DIGEST_BYTES + max(len(e) for e in encoded)
    )
    header = json.dumps(
        {
            "version": SPILL_VERSION,
            "source": source,
            "base_digest": base_digest,
            "base_count": base_count,
            "count": len(entries),
            "head": head,
            "stride": stride,
            "index": index.to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    data_start = _align16(len(SPILL_MAGIC) + _LEN.size + len(header))
    buf = bytearray(data_start + stride * len(entries))
    buf[: len(SPILL_MAGIC)] = SPILL_MAGIC
    pos = len(SPILL_MAGIC)
    buf[pos:pos + _LEN.size] = _LEN.pack(len(header))
    pos += _LEN.size
    buf[pos:pos + len(header)] = header
    for i, ((__, digest), canonical) in enumerate(zip(entries, encoded)):
        slot = data_start + i * stride
        buf[slot:slot + _LEN.size] = _LEN.pack(len(canonical))
        slot += _LEN.size
        buf[slot:slot + _DIGEST_BYTES] = digest.encode()
        slot += _DIGEST_BYTES
        buf[slot:slot + len(canonical)] = canonical
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(bytes(buf))
    os.replace(tmp, path)
    return len(buf), hashlib.sha256(header).hexdigest()


def read_spill_header_bytes(path: Path) -> bytes:
    """The raw header bytes of a spill file (for digest checking)."""
    with open(path, "rb") as fh:
        magic = fh.read(len(SPILL_MAGIC))
        if magic != SPILL_MAGIC:
            raise IntegrityViolation(f"{path}: not a spill segment file")
        try:
            (header_len,) = _LEN.unpack(fh.read(_LEN.size))
        except struct.error as exc:
            raise IntegrityViolation(
                f"{path}: truncated spill segment header"
            ) from exc
        return fh.read(header_len)


def read_spill_header(path: Path) -> Dict:
    """Parse only the header of a spill file."""
    return json.loads(read_spill_header_bytes(path))


def read_spill(path: Path) -> Tuple[Dict, List[Tuple[str, str]]]:
    """Read a spill file back as (header, [(canonical, digest), ...]).

    Record slots are accessed through ``mmap`` at fixed stride — this is
    the same random-access path a partial reader would use.
    """
    with open(path, "rb") as fh:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            header, entries = _parse_spill(mm, path)
            return header, entries
        finally:
            mm.close()


def read_spill_full(path: Path) -> Tuple[bytes, Dict, List[Tuple[str, str]]]:
    """One-open read of a whole spill file for verification:
    ``(raw header bytes, parsed header, entries)``.

    Deep verification needs the raw header bytes (for the committed
    header digest) *and* every record slot; reading the file once with a
    single ``read()`` — which releases the GIL for the duration of the
    I/O — instead of an open per concern is what lets a thread pool
    overlap independent segments' file work.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    header, entries = _parse_spill(blob, path)
    return _raw_header_of(blob, path), header, entries


def _raw_header_of(blob, path: Path) -> bytes:
    """The raw header bytes out of an in-memory spill image."""
    try:
        (header_len,) = _LEN.unpack(
            blob[len(SPILL_MAGIC):len(SPILL_MAGIC) + _LEN.size]
        )
    except struct.error as exc:
        raise IntegrityViolation(
            f"{path}: truncated spill segment header"
        ) from exc
    start = len(SPILL_MAGIC) + _LEN.size
    return bytes(blob[start:start + header_len])


def _parse_spill(blob, path: Path) -> Tuple[Dict, List[Tuple[str, str]]]:
    """Decode a spill image (bytes or mmap) into (header, entries)."""
    try:
        if blob[: len(SPILL_MAGIC)] != SPILL_MAGIC:
            raise IntegrityViolation(f"{path}: not a spill segment file")
        (header_len,) = _LEN.unpack(
            blob[len(SPILL_MAGIC):len(SPILL_MAGIC) + _LEN.size]
        )
        header_end = len(SPILL_MAGIC) + _LEN.size + header_len
        header = json.loads(blob[len(SPILL_MAGIC) + _LEN.size:header_end])
        stride = header["stride"]
        data_start = _align16(header_end)
        entries: List[Tuple[str, str]] = []
        for i in range(header["count"]):
            slot = data_start + i * stride
            (length,) = _LEN.unpack(blob[slot:slot + _LEN.size])
            digest = blob[
                slot + _LEN.size:slot + _LEN.size + _DIGEST_BYTES
            ].decode()
            body = slot + _LEN.size + _DIGEST_BYTES
            entries.append((blob[body:body + length].decode(), digest))
        return header, entries
    except (UnicodeDecodeError, ValueError, KeyError,
            struct.error) as exc:
        # A doctored file can corrupt lengths, the header JSON or
        # the canonical bytes themselves; every such failure is an
        # integrity violation, not a crash.
        raise IntegrityViolation(
            f"{path}: corrupt spill segment ({exc})"
        ) from exc


class SealedSegment:
    """An immutable, index-carrying chunk of one source's chain.

    Sealed segments are the unit of tiering: *hot* ones still hold
    their record objects; *cold* ones hold only chain anchors (base and
    head digest, absolute positions) plus the :class:`SegmentIndex`,
    with the records in a spill file.  The anchors held in memory are
    what the live process committed to — a cold file that disagrees
    with them fails :meth:`verify` exactly like an in-memory mutation.
    """

    __slots__ = (
        "source", "base_digest", "base_count", "count", "head",
        "index", "_records", "_digests", "_canonicals", "path",
        "header_digest", "_verified_key", "_digest_col", "_layout",
        "_probes",
    )

    def __init__(
        self,
        source: str,
        base_digest: str,
        base_count: int,
        records: List[AuditRecord],
        digests: List[str],
        canonicals: Optional[List[str]] = None,
    ):
        self.source = source
        self.base_digest = base_digest
        self.base_count = base_count
        self.count = len(records)
        self.head = digests[-1]
        self.index = SegmentIndex.over(records)
        self._records: Optional[List[AuditRecord]] = records
        self._digests: Optional[List[str]] = digests
        #: Serialisations carried over from the tail (when the store
        #: retains them) so demote writes the hashed bytes verbatim
        #: without re-serialising every record.
        self._canonicals: Optional[List[str]] = canonicals
        self.path: Optional[Path] = None
        #: sha256 of the spill file's header bytes, held in memory so
        #: tampering with the on-disk header/index is detectable.
        self.header_digest: Optional[str] = None
        #: The verified watermark: set after a successful deep check of
        #: a cold segment, keyed on the immutable anchors plus the spill
        #: file's stat fingerprint.  ``None`` means "never verified (or
        #: invalidated) — re-verify in every mode".
        self._verified_key: Optional[Tuple] = None
        #: Memoised digest column for repeated cold probes (the second
        #: ``digest_at`` on a cold segment loads it once; single probes
        #: seek straight to their fixed-stride slot).
        self._digest_col: Optional[List[str]] = None
        #: Cached (data_start, stride) of the spill file's slot region.
        self._layout: Optional[Tuple[int, int]] = None
        self._probes = 0

    def __repr__(self) -> str:
        tier = "cold" if self.is_cold else "hot"
        return (
            f"<SealedSegment {self.source!r} [{self.base_count}"
            f"+{self.count}] {tier}>"
        )

    @property
    def is_cold(self) -> bool:
        return self._records is None

    @property
    def total(self) -> int:
        return self.base_count + self.count

    # -- content -----------------------------------------------------------

    def entries(self) -> List[Tuple[str, str]]:
        """(canonical, digest) pairs; loaded from the spill file when
        cold, computed from the live records when hot."""
        if self._records is not None:
            if self._canonicals is not None:
                return list(zip(self._canonicals, self._digests))
            return [
                (r.canonical(), d)
                for r, d in zip(self._records, self._digests)
            ]
        __, entries = read_spill(self.path)
        if self._digest_col is None:
            # A full load already paid for the digest column — memoise
            # it so later probes are list lookups, not file reads.
            self._digest_col = [d for __, d in entries]
        return entries

    def records(self) -> List[AuditRecord]:
        """The segment's records — originals when hot, reconstructed
        from the spill file's verbatim canonicals when cold."""
        if self._records is not None:
            return list(self._records)
        return [
            AuditRecord.from_canonical(canonical)
            for canonical, __ in self.entries()
        ]

    def digest_at(self, position: int) -> Optional[str]:
        """Chain digest at absolute ``position``.

        Hot: a list lookup.  Cold: the first probe seeks straight to the
        16-aligned fixed-stride slot and reads only its 64-byte digest;
        repeated probes load the digest column once and answer from
        memory — never a whole-file decode either way.
        """
        if position < self.base_count or position > self.total:
            return None
        if position == self.base_count:
            return self.base_digest
        offset = position - self.base_count - 1
        if self._digests is not None:
            return self._digests[offset]
        if self._digest_col is not None:
            return self._digest_col[offset]
        self._probes += 1
        if self._probes > 1:
            return self._load_digest_column()[offset]
        return self._slot_digest(offset)

    def _spill_layout(self) -> Tuple[int, int]:
        """(data_start, stride) of the cold file's slot region, cached.

        Probes trust the on-disk stride the way hot probes trust the
        in-memory digest list — :meth:`verify` is what holds the file to
        the committed header digest; a doctored layout yields digests
        that fail their downstream comparison.
        """
        if self._layout is None:
            raw = read_spill_header_bytes(self.path)
            try:
                stride = json.loads(raw)["stride"]
            except (ValueError, KeyError) as exc:
                raise IntegrityViolation(
                    f"{self.path}: corrupt spill segment ({exc})"
                ) from exc
            data_start = _align16(len(SPILL_MAGIC) + _LEN.size + len(raw))
            self._layout = (data_start, stride)
        return self._layout

    def _slot_digest(self, offset: int) -> str:
        """Read one slot's chain digest via a direct seek."""
        data_start, stride = self._spill_layout()
        with open(self.path, "rb") as fh:
            fh.seek(data_start + offset * stride + _LEN.size)
            raw = fh.read(_DIGEST_BYTES)
        try:
            return raw.decode()
        except UnicodeDecodeError as exc:
            raise IntegrityViolation(
                f"{self.path}: corrupt spill segment ({exc})"
            ) from exc

    def _load_digest_column(self) -> List[str]:
        """Memoise every slot's digest (no canonical decode) via mmap."""
        data_start, stride = self._spill_layout()
        try:
            with open(self.path, "rb") as fh:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                try:
                    col = [
                        mm[
                            data_start + i * stride + _LEN.size:
                            data_start + i * stride + _LEN.size
                            + _DIGEST_BYTES
                        ].decode()
                        for i in range(self.count)
                    ]
                finally:
                    mm.close()
        except (UnicodeDecodeError, ValueError) as exc:
            raise IntegrityViolation(
                f"{self.path}: corrupt spill segment ({exc})"
            ) from exc
        self._digest_col = col
        return col

    # -- the verified watermark --------------------------------------------

    def _anchor_key(self) -> Optional[Tuple]:
        """The watermark key: immutable anchors + file fingerprint.

        ``None`` when the segment cannot be watermarked right now — it
        is hot (live record objects are mutable, so incremental mode
        must always re-verify them), its file is unreadable, or the file
        was modified too close to *now* for coarse filesystem timestamps
        to distinguish a later rewrite (see ``_STAT_MARGIN_NS``).
        """
        if self._records is not None or self.path is None:
            return None
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        if st.st_mtime_ns + _STAT_MARGIN_NS >= time.time_ns():
            return None
        return (
            self.base_digest, self.base_count, self.count, self.head,
            self.header_digest, str(self.path), st.st_ino, st.st_size,
            st.st_mtime_ns,
        )

    @property
    def watermarked(self) -> bool:
        return self._verified_key is not None

    def watermark_valid(self) -> bool:
        """Whether the last successful deep check still covers this
        segment: anchors unchanged *and* the spill file's stat
        fingerprint (inode, size, mtime) untouched."""
        if self._verified_key is None:
            return False
        return self._anchor_key() == self._verified_key

    def note_verified(self) -> None:
        """Record the watermark after a successful full verification
        (no-op when the segment is not watermarkable right now)."""
        self._verified_key = self._anchor_key()

    def clear_watermark(self) -> bool:
        """Drop the watermark (any mutation path calls this).  Returns
        whether one was held — the invalidation accounting signal."""
        held = self._verified_key is not None
        self._verified_key = None
        return held

    # -- tier transitions --------------------------------------------------

    def demote(self, spill_dir: Path) -> int:
        """Spill to disk and drop the in-memory records; returns the file
        size.  Idempotent for an already-cold segment."""
        if self.is_cold:
            return 0
        safe = _UNSAFE.sub("_", self.source)
        path = spill_dir / f"{safe}-{self.base_count:012d}.seg"
        size, self.header_digest = write_spill(
            path, self.source, self.base_digest, self.base_count,
            self.head, self.entries(), self.index,
        )
        self.path = path
        self._records = None
        self._digests = None
        self._canonicals = None
        # Fresh on-disk identity: no probe caches, no watermark — the
        # file has never been deep-checked in its cold form.
        self._digest_col = None
        self._layout = None
        self._probes = 0
        self._verified_key = None
        return size

    # -- integrity ---------------------------------------------------------

    def verify(self) -> int:
        """Recompute the chunk's chain, raising on the first mismatch.

        Hot: from the live records (post-drain mutation is detected, as
        for an open tail).  Cold: from the spill file's canonicals,
        anchored to the base/head digests held in memory — a rewritten
        file cannot satisfy both ends of the chain.  The cold path reads
        the file exactly once (``read_spill_full``).  Returns the number
        of digest-material bytes re-hashed.
        """
        if self._records is not None:
            digest = self.base_digest
            hashed = 0
            for record, stored in zip(self._records, self._digests):
                canonical = record.canonical()
                digest = chain_digest(digest, canonical)
                hashed += len(canonical) + _DIGEST_BYTES
                if digest != stored:
                    raise IntegrityViolation(
                        f"sealed segment {self.source!r} chain broken "
                        f"at seq {record.seq}"
                    )
            return hashed
        try:
            raw_header, header, entries = read_spill_full(self.path)
        except OSError as exc:
            raise IntegrityViolation(
                f"spill file {self.path} unreadable for segment "
                f"{self.source!r}: {exc}"
            )
        if hashlib.sha256(raw_header).hexdigest() != self.header_digest:
            raise IntegrityViolation(
                f"spill file {self.path} header (metadata/index) does "
                f"not match the digest committed at demote time for "
                f"segment {self.source!r}"
            )
        hashed = len(raw_header)
        if (
            header["count"] != self.count
            or header["base_digest"] != self.base_digest
            or header["base_count"] != self.base_count
            or header["head"] != self.head
        ):
            raise IntegrityViolation(
                f"spill file {self.path} header does not match the "
                f"anchors committed for segment {self.source!r}"
            )
        digest = self.base_digest
        for i, (canonical, stored) in enumerate(entries):
            digest = chain_digest(digest, canonical)
            hashed += len(canonical) + _DIGEST_BYTES
            if digest != stored:
                raise IntegrityViolation(
                    f"cold segment {self.source!r} chain broken at "
                    f"record {self.base_count + i}"
                )
        if digest != self.head:
            raise IntegrityViolation(
                f"cold segment {self.source!r} head mismatch after replay"
            )
        return hashed

    # -- maintenance -------------------------------------------------------

    def prune_prefix(self, keep_from: int) -> int:
        """Drop the first ``keep_from`` records, rebasing the chain.

        A cold segment is rewritten in place (retained canonicals and
        digests verbatim); the index is rebuilt over the remainder.
        """
        if keep_from <= 0:
            return 0
        if keep_from >= self.count:
            raise ValueError("use drop() to discard a whole segment")
        # Any rebase invalidates the verified watermark and the cold
        # probe caches: anchors move, and a cold file is rewritten.
        self._verified_key = None
        self._digest_col = None
        self._layout = None
        self._probes = 0
        if self._records is not None:
            self.base_digest = self._digests[keep_from - 1]
            self.base_count += keep_from
            self._records = self._records[keep_from:]
            self._digests = self._digests[keep_from:]
            if self._canonicals is not None:
                self._canonicals = self._canonicals[keep_from:]
            self.count = len(self._records)
            self.index = SegmentIndex.over(self._records)
            return keep_from
        __, entries = read_spill(self.path)
        retained = entries[keep_from:]
        self.base_digest = entries[keep_from - 1][1]
        self.base_count += keep_from
        self.count = len(retained)
        self.index = SegmentIndex.over(
            [AuditRecord.from_canonical(c) for c, __ in retained]
        )
        __, self.header_digest = write_spill(
            self.path, self.source, self.base_digest, self.base_count,
            self.head, retained, self.index,
        )
        return keep_from

    def drop(self) -> int:
        """Discard the whole segment (deleting its spill file).  Returns
        the record count dropped."""
        if self.path is not None:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass
        return self.count


class SegmentStore:
    """The spine's storage layer: per-source sealed segments + open tail.

    With no ``seal_every`` configured the store is behaviourally the old
    single-segment-per-source layout: one open tail each, nothing
    sealed, nothing spilled.  :meth:`configure_spill` turns on the tier
    lifecycle — seal at ``seal_every`` records, keep the ``hot_segments``
    newest sealed segments in memory, demote the rest to ``spill_dir``.

    All mutation happens under the owning spine's maintenance lock; the
    store itself adds no locking.
    """

    def __init__(
        self,
        genesis: Callable[[str], str],
        seal_every: Optional[int] = None,
        hot_segments: int = 2,
        spill_dir: Optional[Path] = None,
    ):
        self._genesis = genesis
        self.seal_every = seal_every
        self.hot_segments = max(0, hot_segments)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.tails: Dict[str, AuditSegment] = {}
        self.sealed: Dict[str, List[SealedSegment]] = {}
        self.stats_seals = 0
        self.stats_demotions = 0
        self.stats_cold_loads = 0
        self.stats_watermark_invalidations = 0
        self.spill_bytes = 0

    def __repr__(self) -> str:
        return (
            f"<SegmentStore sources={len(self.tails)} "
            f"sealed={sum(len(v) for v in self.sealed.values())} "
            f"cold={self.cold_segments()}>"
        )

    def configure_spill(
        self,
        path,
        hot_segments: int = 2,
        seal_every: int = 1024,
    ) -> None:
        """Enable the tier lifecycle (idempotent reconfiguration).

        ``path`` is created if missing.  Takes effect from the next
        seal check — an oversized existing tail seals on the next drain.
        """
        if seal_every < 1:
            raise ValueError(f"seal_every must be >= 1, got {seal_every}")
        self.spill_dir = Path(path)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.hot_segments = max(0, hot_segments)
        self.seal_every = seal_every
        # Tiered tails retain canonicals so seal/demote never
        # re-serialise; records chained before this point keep lazy
        # serialisation (entries() recomputes for the straddling chunk).
        for tail in self.tails.values():
            if tail.canonicals is None:
                tail.canonicals = [r.canonical() for r in tail.records]

    @property
    def spill_enabled(self) -> bool:
        return self.spill_dir is not None

    # -- structure ---------------------------------------------------------

    def tail(self, source: str) -> AuditSegment:
        """The open tail for ``source`` (created on first use)."""
        seg = self.tails.get(source)
        if seg is None:
            seg = self.tails[source] = AuditSegment(
                source, self._genesis(source)
            )
            if self.seal_every is not None:
                seg.canonicals = []
            self.sealed.setdefault(source, [])
        return seg

    def sources(self) -> List[str]:
        return sorted(self.tails)

    def _chunks(self, source: str) -> List:
        """Sealed chunks (oldest first) then the open tail."""
        return [*self.sealed.get(source, ()), self.tails[source]]

    # -- seal / demote lifecycle -------------------------------------------

    def maybe_seal(self, source: str) -> None:
        """Seal full tail chunks and demote beyond the hot retention."""
        if self.seal_every is None:
            return
        tail = self.tails[source]
        while len(tail.records) >= self.seal_every:
            self.seal_prefix(source, self.seal_every)
        self._demote_excess(source)

    def seal_prefix(self, source: str, k: int) -> Optional[SealedSegment]:
        """Seal the first ``k`` tail records into an indexed chunk.

        The tail rebases onto the sealed head, so the source's chain is
        unbroken: seal → index now, demote later.
        """
        tail = self.tails.get(source)
        if tail is None:
            return None
        k = min(k, len(tail.records))
        if k <= 0:
            return None
        chunk = SealedSegment(
            source,
            tail.base_digest,
            tail.base_count,
            tail.records[:k],
            tail.digests[:k],
            tail.canonicals[:k] if tail.canonicals is not None else None,
        )
        tail.prune_prefix(k)  # rebase: base becomes the sealed head
        self.sealed.setdefault(source, []).append(chunk)
        self.stats_seals += 1
        return chunk

    def _demote_excess(self, source: str) -> None:
        if self.spill_dir is None:
            return
        chunks = self.sealed.get(source, [])
        hot = [c for c in chunks if not c.is_cold]
        for chunk in hot[: max(0, len(hot) - self.hot_segments)]:
            self.spill_bytes += chunk.demote(self.spill_dir)
            self.stats_demotions += 1

    def demote_before(self, timestamp: float) -> int:
        """Move records older than ``timestamp`` to the cold tier.

        The non-destructive retention action: seals the tail prefix
        older than the cutoff, then demotes every sealed segment whose
        whole time range is older.  Chains, digests and checkpoint
        bindings are untouched — only the records' tier changes.
        Returns the number of records demoted; 0 when no spill
        directory is configured (there is no cold tier to demote into).
        """
        if self.spill_dir is None:
            return 0
        demoted = 0
        for source in list(self.tails):
            tail = self.tails[source]
            k = 0
            while (
                k < len(tail.records)
                and tail.records[k].timestamp < timestamp
            ):
                k += 1
            if k:
                self.seal_prefix(source, k)
            for chunk in self.sealed.get(source, []):
                if not chunk.is_cold and chunk.index.time_max < timestamp:
                    self.spill_bytes += chunk.demote(self.spill_dir)
                    self.stats_demotions += 1
                    demoted += chunk.count
        return demoted

    # -- chain surface (what the spine reads) ------------------------------

    def head(self, source: str) -> str:
        return self.tails[source].head

    def total(self, source: str) -> int:
        """Absolute chain position of the source's head."""
        return self.tails[source].total

    def digest_at(self, source: str, position: int) -> Optional[str]:
        """Chain digest at absolute ``position`` across every tier."""
        for chunk in self._chunks(source):
            if position <= chunk_total(chunk):
                digest = chunk.digest_at(position)
                if digest is not None:
                    return digest
        return None

    def retained(self, source: str) -> int:
        """Retained (un-pruned) record count for one source."""
        return len(self.tails[source].records) + sum(
            c.count for c in self.sealed.get(source, ())
        )

    def total_retained(self) -> int:
        return sum(self.retained(source) for source in list(self.tails))

    def records_of(self, source: str) -> List[AuditRecord]:
        """Every retained record of one source, oldest first (cold
        segments are loaded — and counted — on demand)."""
        result: List[AuditRecord] = []
        for chunk in self.sealed.get(source, ()):
            if chunk.is_cold:
                self.stats_cold_loads += 1
            result.extend(chunk.records())
        result.extend(self.tails[source].records)
        return result

    def export_entries(self) -> List[Dict]:
        """Serialised records with digests and segment attribution —
        byte-identical whether a segment is hot or spilled, because
        cold entries come back verbatim from the spill file."""
        entries: List[Dict] = []
        for source in self.sources():
            for chunk in self.sealed.get(source, ()):
                if chunk.is_cold:
                    self.stats_cold_loads += 1
                for canonical, digest in chunk.entries():
                    entries.append(
                        {
                            "record": canonical,
                            "digest": digest,
                            "segment": source,
                            "seq": json.loads(canonical)["seq"],
                        }
                    )
            tail = self.tails[source]
            for record, digest in zip(tail.records, tail.digests):
                entries.append(
                    {
                        "record": record.canonical(),
                        "digest": digest,
                        "segment": source,
                        "seq": record.seq,
                    }
                )
        entries.sort(key=lambda e: e["seq"])
        for entry in entries:
            del entry["seq"]
        return entries

    # -- integrity ---------------------------------------------------------

    def verify(
        self,
        deep: bool = True,
        workers: Optional[int] = None,
        stats: Optional[VerifyStats] = None,
    ) -> None:
        """Verify every source's chain across the tier boundary.

        Each chunk verifies internally, and consecutive chunks must
        join exactly: the next base digest is the previous head, the
        next base count the previous total.  A chunk boundary is where
        a splice would hide, so the joins are checked explicitly — in
        *every* mode, for every chunk, from the in-memory anchors.

        ``deep=True`` (the default, and the historical behaviour)
        recomputes every chunk unconditionally and re-watermarks the
        cold ones.  ``deep=False`` is the incremental mode: hot chunks
        (open tails and in-memory sealed segments — mutable objects)
        are always recomputed, but a cold chunk whose verified
        watermark is still valid (anchors and spill-file stat
        fingerprint unchanged since its last successful full check) is
        skipped.  ``workers`` > 1 fans the independent chunk
        recomputations across a thread pool — cold verification is
        dominated by spill-file reads and ``hashlib`` work, both of
        which can overlap.  Raises on the first violation, in chunk
        order, regardless of which worker found it.
        """
        todo: List = []
        skipped = 0
        invalidated = 0
        total_chunks = 0
        for source in list(self.tails):
            prev: Optional[SealedSegment] = None
            for chunk in self._chunks(source):
                total_chunks += 1
                if prev is not None and (
                    chunk.base_digest != prev.head
                    or chunk.base_count != chunk_total(prev)
                ):
                    raise IntegrityViolation(
                        f"segment {source!r} chain discontinuity at "
                        f"position {chunk.base_count}"
                    )
                prev = chunk
                if (
                    not deep
                    and isinstance(chunk, SealedSegment)
                    and chunk.is_cold
                    and chunk.watermarked
                ):
                    if chunk.watermark_valid():
                        skipped += 1
                        continue
                    invalidated += 1
                    self.stats_watermark_invalidations += 1
                todo.append(chunk)

        n_workers = max(1, workers or 1)
        if n_workers > 1 and len(todo) > 1:
            with ThreadPoolExecutor(
                max_workers=min(n_workers, len(todo))
            ) as pool:
                futures = [pool.submit(chunk.verify) for chunk in todo]
                # Results are collected in chunk order so the first
                # violation reported is deterministic even when a later
                # chunk failed first on the wall clock.
                hashed = [future.result() for future in futures]
        else:
            hashed = [chunk.verify() for chunk in todo]

        for chunk in todo:
            if isinstance(chunk, SealedSegment) and chunk.is_cold:
                chunk.note_verified()
        if stats is not None:
            stats.segments_total += total_chunks
            stats.segments_verified += len(todo)
            stats.segments_skipped += skipped
            stats.watermark_hits += skipped
            stats.watermark_invalidations += invalidated
            stats.bytes_hashed += sum(hashed)
            stats.cold_verified += sum(
                1 for c in todo
                if isinstance(c, SealedSegment) and c.is_cold
            )
            stats.records_verified += sum(
                c.count if isinstance(c, SealedSegment) else len(c.records)
                for c in todo
            )

    # -- pruning -----------------------------------------------------------

    def prune_before(self, timestamp: float) -> int:
        """Destructively discard records older than ``timestamp``.

        Whole sealed segments older than the cutoff are dropped (their
        spill files deleted); the first straddling chunk is prefix-
        pruned and rebased.  Returns the number of records pruned.
        """
        pruned = 0
        for source in list(self.tails):
            chunks = self.sealed.get(source, [])
            while chunks and chunks[0].index.time_max < timestamp:
                pruned += chunks.pop(0).drop()
            if chunks:
                first = chunks[0]
                if first.index.time_min < timestamp:
                    self.stats_watermark_invalidations += (
                        first.clear_watermark()
                    )
                    pruned += first.prune_prefix(
                        _age_prefix(first.records(), timestamp)
                    )
                continue  # later chunks/tail hold only newer records
            tail = self.tails[source]
            pruned += tail.prune_prefix(
                _age_prefix(tail.records, timestamp)
            )
        return pruned

    def prune_source(self, source: str, before: Optional[float]) -> int:
        """Prune one source (wholly, or records before ``before``)."""
        if source not in self.tails:
            return 0
        if before is None:
            # Whole-source prune: drop every sealed chunk (the tail's
            # base is already the last sealed head, so the chain stays
            # anchored) and empty the tail with the usual rebase.
            pruned = 0
            chunks = self.sealed.get(source, [])
            while chunks:
                pruned += chunks.pop(0).drop()
            tail = self.tails[source]
            pruned += tail.prune_prefix(len(tail.records))
            return pruned
        pruned = 0
        chunks = self.sealed.get(source, [])
        while chunks and chunks[0].index.time_max < before:
            pruned += chunks.pop(0).drop()
        if chunks:
            first = chunks[0]
            if first.index.time_min < before:
                self.stats_watermark_invalidations += (
                    first.clear_watermark()
                )
                pruned += first.prune_prefix(
                    _age_prefix(first.records(), before)
                )
            return pruned
        tail = self.tails[source]
        pruned += tail.prune_prefix(_age_prefix(tail.records, before))
        return pruned

    # -- observability -----------------------------------------------------

    def cold_segments(self) -> int:
        return sum(
            1 for chunks in self.sealed.values()
            for c in chunks if c.is_cold
        )

    def sealed_segments(self) -> int:
        return sum(len(chunks) for chunks in self.sealed.values())

    def tier_stats(self) -> Dict:
        """The tier rollup ``Deployment.stats()`` reports."""
        hot_records = 0
        cold_records = 0
        hot_time_min: Optional[float] = None
        hot_time_max: Optional[float] = None

        def note_hot(ts_min: Optional[float], ts_max: Optional[float]):
            nonlocal hot_time_min, hot_time_max
            if ts_min is None:
                return
            hot_time_min = (
                ts_min if hot_time_min is None else min(hot_time_min, ts_min)
            )
            hot_time_max = (
                ts_max if hot_time_max is None else max(hot_time_max, ts_max)
            )

        for source, chunks in self.sealed.items():
            for chunk in chunks:
                if chunk.is_cold:
                    cold_records += chunk.count
                else:
                    hot_records += chunk.count
                    note_hot(chunk.index.time_min, chunk.index.time_max)
        for tail in self.tails.values():
            hot_records += len(tail.records)
            if tail.records:
                note_hot(
                    tail.records[0].timestamp, tail.records[-1].timestamp
                )
        return {
            "hot_records": hot_records,
            "cold_records": cold_records,
            "sealed_segments": self.sealed_segments(),
            "cold_segments": self.cold_segments(),
            "spill_bytes": self.spill_bytes,
            "seals": self.stats_seals,
            "demotions": self.stats_demotions,
            "cold_loads": self.stats_cold_loads,
            "watermarked_segments": sum(
                1 for chunks in self.sealed.values()
                for c in chunks if c.watermarked
            ),
            "watermark_invalidations": self.stats_watermark_invalidations,
            "hot_time_min": hot_time_min,
            "hot_time_max": hot_time_max,
            "spill_dir": str(self.spill_dir) if self.spill_dir else None,
        }


def chunk_total(chunk) -> int:
    """Absolute head position of a sealed chunk or open tail."""
    return chunk.total


def _age_prefix(records: List[AuditRecord], timestamp: float) -> int:
    """Length of the leading run of records older than ``timestamp``."""
    k = 0
    while k < len(records) and records[k].timestamp < timestamp:
        k += 1
    return k
