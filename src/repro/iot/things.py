"""Things: sensors, actuators, apps — the paper's §2 entities.

"We use thing to refer to an entity, physical or virtual, capable of
interaction in its own right; thereby encompassing sensors, devices,
applications/services (standalone or cloud-hosted), gateways, etc."

A :class:`Thing` is a middleware :class:`~repro.middleware.component.
Component` (so all communication is policy-mediated) plus a device
profile and an administrative-domain affiliation.  Sensors emit readings
on a simulator schedule; actuators accept commands and record their
physical effects (Concern 2: actuation has real-world impact, so the
actuation log is first-class evidence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import SchemaError
from repro.ifc.labels import SecurityContext
from repro.ifc.privileges import PrivilegeSet
from repro.iot.device import DeviceClass, DeviceProfile
from repro.middleware.component import Component, EndpointKind
from repro.middleware.message import AttributeSpec, Message, MessageType
from repro.sim.events import Simulator

#: Message type for sensor readings used across the library's examples.
READING = MessageType(
    "reading",
    [
        AttributeSpec("value", float),
        AttributeSpec("unit", str, required=False),
        AttributeSpec("sampled_at", float, required=False),
    ],
)

#: Message type for actuation commands (Concern 2).
ACTUATION = MessageType(
    "actuation",
    [
        AttributeSpec("command", str),
        AttributeSpec("argument", object, required=False),
    ],
)

#: Message type for alerts/notifications.
ALERT = MessageType(
    "alert",
    [
        AttributeSpec("severity", str),
        AttributeSpec("text", str),
    ],
)


class Thing(Component):
    """A first-class IoT entity: component + device profile + domain."""

    def __init__(
        self,
        name: str,
        context: Optional[SecurityContext] = None,
        privileges: Optional[PrivilegeSet] = None,
        profile: Optional[DeviceProfile] = None,
        domain: str = "",
        owner: str = "",
        host: Optional[str] = None,
    ):
        super().__init__(name, context, privileges, host=host, owner=owner)
        self.profile = profile or DeviceProfile()
        self.domain = domain
        self.metadata["domain"] = domain


#: Produces the next reading value (seeded upstream for determinism).
ReadingSource = Callable[[float], float]


class Sensor(Thing):
    """A sensing thing that emits ``reading`` messages on a schedule.

    The sampling interval is runtime-adjustable — Fig. 7's emergency
    response actuates sensors "to sample more frequently".  Wire
    :meth:`start` to a simulator and a bus; :meth:`set_interval` is the
    actuation target.
    """

    def __init__(
        self,
        name: str,
        source: ReadingSource,
        interval: float = 60.0,
        unit: str = "",
        **kwargs,
    ):
        super().__init__(name, **kwargs)
        if interval <= 0:
            raise SchemaError("sensor interval must be positive")
        self.source = source
        self.interval = interval
        self.unit = unit
        self.samples_taken = 0
        self.add_endpoint("out", EndpointKind.SOURCE, READING)
        self.add_endpoint("control", EndpointKind.SINK, ACTUATION,
                          handler=self._on_control)
        self._sim: Optional[Simulator] = None
        self._bus = None
        self._stop: Optional[Callable[[], None]] = None

    def start(self, sim: Simulator, bus) -> None:
        """Begin sampling on the simulator, publishing via the bus."""
        self._sim = sim
        self._bus = bus
        self._schedule()

    def stop(self) -> None:
        """Stop sampling."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    def set_interval(self, interval: float) -> None:
        """Change the sampling rate (an actuation; Fig. 7)."""
        if interval <= 0:
            raise SchemaError("sensor interval must be positive")
        self.interval = interval
        if self._sim is not None:
            self._schedule()

    def _schedule(self) -> None:
        self.stop()
        assert self._sim is not None

        def sample() -> None:
            if not self.running:
                return
            self.sample_once()

        self._stop = self._sim.schedule_every(
            self.interval, sample, label=f"sensor:{self.name}"
        )

    def sample_once(self) -> None:
        """Take one sample and publish it."""
        now = self._sim.now() if self._sim is not None else 0.0
        value = float(self.source(now))
        self.samples_taken += 1
        if self._bus is not None:
            self._bus.publish(
                self, "out", value=value, unit=self.unit, sampled_at=now
            )

    def _on_control(self, component, endpoint, message: Message) -> None:
        command = message.values.get("command")
        if command == "set-interval":
            self.set_interval(float(message.values.get("argument", self.interval)))
        elif command == "stop":
            self.stop()


class Actuator(Thing):
    """An actuating thing: consumes ``actuation`` messages.

    Every accepted command is recorded in ``effects`` — "error, malice or
    mismanagement of actuation data flows (commands) can be catastrophic,
    and naturally entail legal consequences" (Concern 2), so the record
    of what was physically done is part of the evidence base.
    """

    def __init__(self, name: str, apply_effect: Optional[Callable[[str, object], None]] = None, **kwargs):
        super().__init__(name, **kwargs)
        self.apply_effect = apply_effect
        self.effects: List[Dict] = []
        self.add_endpoint("in", EndpointKind.SINK, ACTUATION, handler=self._on_command)

    def _on_command(self, component, endpoint, message: Message) -> None:
        command = str(message.values.get("command"))
        argument = message.values.get("argument")
        self.effects.append({"command": command, "argument": argument,
                             "msg_id": message.msg_id})
        if self.apply_effect is not None:
            self.apply_effect(command, argument)


class App(Thing):
    """A software thing (analyser, storage service, dashboard).

    Inbound messages go to ``process``; subclasses or constructor
    callbacks implement behaviour.  Received messages accumulate in
    ``received`` for inspection by tests and compliance tooling.
    """

    def __init__(
        self,
        name: str,
        message_type: MessageType = READING,
        process: Optional[Callable[["App", Message], None]] = None,
        **kwargs,
    ):
        kwargs.setdefault("profile", DeviceProfile(DeviceClass.SERVER))
        super().__init__(name, **kwargs)
        self.process = process
        self.received: List[Message] = []
        self.add_endpoint("in", EndpointKind.SINK, message_type, handler=self._on_message)
        self.add_endpoint("out", EndpointKind.SOURCE, message_type)

    def _on_message(self, component, endpoint, message: Message) -> None:
        self.received.append(message)
        if self.process is not None:
            self.process(self, message)
