"""Administrative domains and federation (§9.3).

"The heterogeneous nature of the chains of IoT components, which exist
across federated domains of administration" is the paper's first scale
challenge.  An :class:`AdministrativeDomain` bundles what one authority
operates: a middleware bus, an audit log, an authority model, a policy
engine, and the things it manages.  :class:`DomainGateway` is the §2.1
gateway — a thing fronting a subsystem, bridging two domains' buses and
therefore a point where policy is enforced in both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.accesscontrol.pep import EnforcementMode
from repro.audit.log import AuditLog
from repro.audit.spine import bind_source
from repro.errors import DiscoveryError
from repro.ifc.labels import SecurityContext
from repro.ifc.privileges import PrivilegeSet
from repro.iot.device import DeviceClass, DeviceProfile
from repro.iot.things import Thing
from repro.middleware.bus import MessageBus
from repro.middleware.component import Component, EndpointKind
from repro.middleware.discovery import ResourceDiscovery
from repro.middleware.message import Message, MessageType
from repro.middleware.reconfig import Reconfigurator
from repro.policy.authority import AuthorityModel
from repro.policy.context import ContextStore
from repro.policy.engine import PolicyEngine


class AdministrativeDomain:
    """One authority's slice of the IoT.

    Construction wires the standard stack: audit sink → bus →
    reconfigurator → context store → policy engine, all sharing the
    domain clock.  Things register through :meth:`adopt`.

    ``audit`` is any :class:`~repro.audit.sink.AuditSink`.  When omitted
    the domain constructs a detached :class:`~repro.audit.log.AuditLog`
    — the historical (pre-``repro.deploy``) behaviour, kept as the thin
    shim standalone domains rely on.  Inside a deployment the owning
    machine's :class:`~repro.audit.spine.AuditSpine` is passed instead,
    so the domain's bus, engine, reconfigurator and discovery all write
    per-source segments of one tamper-evident chain per node
    (``docs/deploy_api.md``).
    """

    def __init__(
        self,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        mode: EnforcementMode = EnforcementMode.AC_AND_IFC,
        audit=None,
    ):
        self.name = name
        if audit is None:
            audit = AuditLog(clock=clock, name=f"audit@{name}")
        # The domain's own records (adoption context changes) go to a
        # "domain" segment when the sink is segmented; each wired
        # component below claims its own segment via bind_source.
        self.audit = bind_source(audit, "domain")
        self.bus = MessageBus(audit=self.audit, mode=mode, clock=clock)
        self.reconfigurator = Reconfigurator(self.bus, audit=self.audit)
        self.context = ContextStore(clock=clock)
        self.authority = AuthorityModel(clock=clock or (lambda: 0.0))
        self.engine = PolicyEngine(
            f"{name}-policy-engine",
            self.reconfigurator,
            context=self.context,
            audit=self.audit,
            authority=self.authority,
        )
        # Registration-plane events (re-registrations especially) are
        # audit-visible like every other enforcement-relevant action.
        self.discovery = ResourceDiscovery(audit=self.audit)
        self.things: Dict[str, Thing] = {}

    def adopt(self, thing: Thing, owner: Optional[str] = None) -> Thing:
        """Bring a thing under this domain's management.

        Registers it on the bus and in discovery, records ownership in
        the authority model, and lets the domain's policy engine control
        it.
        """
        thing.domain = self.name
        thing.metadata["domain"] = self.name
        self.bus.register(thing)
        self.discovery.register(thing)
        self.authority.set_owner(thing.name, owner or thing.owner or self.name)
        thing.allow_controller(self.engine.name)
        # Every self-initiated context change of a managed thing is
        # audit-visible (declassification/endorsement classification is
        # done by the log) — §8.3: IFC enforcement logs are the
        # provenance source.
        thing.observe_context(
            lambda entity, old, new: self.audit.context_change(
                entity.name, old, new
            )
        )
        self.things[thing.name] = thing
        return thing

    def expel(self, thing_name: str) -> None:
        """Remove a thing from the domain (tearing down its channels)."""
        thing = self.things.pop(thing_name, None)
        if thing is None:
            raise DiscoveryError(f"{thing_name} is not in domain {self.name}")
        self.bus.deregister(thing)
        self.discovery.deregister(thing)


class DomainGateway(Thing):
    """A gateway thing bridging two domains (§2.1, Fig. 2).

    The gateway is registered in *both* domains.  It exposes, per bridged
    message type, a sink in the inner domain and a source in the outer
    domain; messages arriving on the sink are re-emitted on the source,
    so both domains' enforcement (channel and per-message) applies, and
    the gateway's own security context gates what may transit.

    "We therefore consider such gateways as 'things', as they represent a
    point in which policy can be enforced."
    """

    def __init__(
        self,
        name: str,
        inner: AdministrativeDomain,
        outer: AdministrativeDomain,
        message_type: MessageType,
        context: Optional[SecurityContext] = None,
        privileges: Optional[PrivilegeSet] = None,
        transform: Optional[Callable[[Message], Optional[Message]]] = None,
        owner: str = "",
    ):
        super().__init__(
            name,
            context=context,
            privileges=privileges,
            profile=DeviceProfile(DeviceClass.GATEWAY),
            owner=owner or name,
        )
        self.inner = inner
        self.outer = outer
        self.transform = transform
        self.forwarded = 0
        self.dropped = 0
        self.add_endpoint(
            "ingress", EndpointKind.SINK, message_type, handler=self._on_message
        )
        self.add_endpoint("egress", EndpointKind.SOURCE, message_type)
        inner.adopt(self)
        # Register on the outer bus under the same identity; the outer
        # domain sees the gateway as a thing it can police but not own.
        outer.bus.register(self)
        outer.discovery.register(self)
        self.allow_controller(outer.engine.name)

    def _on_message(self, component, endpoint, message: Message) -> None:
        outgoing: Optional[Message] = message
        if self.transform is not None:
            outgoing = self.transform(message)
        if outgoing is None:
            self.dropped += 1
            return
        self.forwarded += 1
        self.outer.bus.route(self, "egress", outgoing)

    def join_mesh(self, node, directory=None, visibility=None):
        """Enrol the gateway in a federation (``docs/federation_plane.md``).

        ``node`` is the :class:`~repro.federation.MeshNode` of the
        substrate serving this gateway's domain.  The gateway records
        its serving host, and — when a federation-wide ``directory``
        (a mesh-attached :class:`~repro.middleware.discovery.
        ResourceDiscovery`) is given — registers there with that host,
        so any federated party *discovering* the gateway gets the
        domain's vocabulary offer piggybacked on the discovery answer
        instead of paying a pairwise handshake round-trip.
        """
        self.metadata["host"] = node.host
        if directory is not None:
            directory.register(
                self,
                {"kind": "gateway", "domain": self.inner.name},
                visibility=visibility,
                host=node.host,
            )
        return node
