"""Resource-constrained device profiles (Challenge 5).

"Resource constraints are another consideration: some devices may have a
limited ability to store and enforce policy.  Of course, gateway
components could be used to mediate data flows.  However, substantial
work is required on what aspects of policy management and enforcement
can be delegated, offloaded, distributed and federated, to meet resource
constraints."

A :class:`DeviceProfile` gives each thing a CPU/memory/energy budget and
a simple cost model for enforcement operations, so deployments can
decide per device between local enforcement and gateway offload
(:func:`enforcement_plan`), and benchmarks can show the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class DeviceClass(str, Enum):
    """Rough IETF-style constrained-device classes."""

    CONSTRAINED = "constrained"   # class 0/1: 8-bit MCU, battery
    GATEWAY = "gateway"           # hubs, phones
    SERVER = "server"             # cloud/edge machines


#: Cost (abstract energy units) of one IFC flow check, per device class.
CHECK_COST = {
    DeviceClass.CONSTRAINED: 5.0,
    DeviceClass.GATEWAY: 0.5,
    DeviceClass.SERVER: 0.05,
}

#: Memory (abstract units) needed to store one tag's policy state.
TAG_MEMORY = 1.0


@dataclass
class DeviceProfile:
    """Resource state of a physical thing.

    Attributes:
        device_class: constrained / gateway / server.
        memory_capacity: abstract units available for policy state.
        battery: remaining energy (None = mains powered).
        enforcement_ops: counter of locally performed checks.
    """

    device_class: DeviceClass = DeviceClass.GATEWAY
    memory_capacity: float = 64.0
    battery: Optional[float] = None
    enforcement_ops: int = 0

    def can_hold_tags(self, tag_count: int) -> bool:
        """Whether local policy state for ``tag_count`` tags fits."""
        return tag_count * TAG_MEMORY <= self.memory_capacity

    def check_cost(self) -> float:
        """Energy cost of one local flow check."""
        return CHECK_COST[self.device_class]

    def perform_check(self) -> bool:
        """Account for one local enforcement op.

        Returns False when the battery is exhausted — the device can no
        longer enforce locally and must offload.
        """
        cost = self.check_cost()
        if self.battery is not None:
            if self.battery < cost:
                return False
            self.battery -= cost
        self.enforcement_ops += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.battery is not None and self.battery < self.check_cost()


class EnforcementPlacement(str, Enum):
    """Where a thing's IFC enforcement runs."""

    LOCAL = "local"          # on the device itself
    GATEWAY = "gateway"      # offloaded to the fronting gateway


def enforcement_plan(
    profile: DeviceProfile,
    tag_count: int,
    expected_checks_per_hour: float,
    horizon_hours: float = 24.0,
) -> EnforcementPlacement:
    """Decide local-vs-gateway enforcement for a device.

    Offload when the policy state does not fit in device memory, or when
    the projected energy spend over the horizon would drain the battery.
    This is deliberately a simple, auditable heuristic — the open
    research question (Challenge 5) is *what* to delegate; the mechanism
    here makes the decision explicit and testable.
    """
    if not profile.can_hold_tags(tag_count):
        return EnforcementPlacement.GATEWAY
    if profile.battery is not None:
        projected = expected_checks_per_hour * horizon_hours * profile.check_cost()
        if projected > profile.battery * 0.5:
            return EnforcementPlacement.GATEWAY
    return EnforcementPlacement.LOCAL
