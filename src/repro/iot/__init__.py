"""The IoT world: things, domains, gateways, workloads (§2)."""

from repro.iot.device import (
    CHECK_COST,
    DeviceClass,
    DeviceProfile,
    EnforcementPlacement,
    enforcement_plan,
)
from repro.iot.things import (
    ACTUATION,
    ALERT,
    READING,
    Actuator,
    App,
    Sensor,
    Thing,
)
from repro.iot.domain import (
    AdministrativeDomain,
    DomainGateway,
)
from repro.iot.world import IoTWorld
from repro.iot.workloads import (
    PatientProfile,
    energy_usage,
    patient_cohort,
    traffic_flow,
    vital_signs,
    with_emergency,
)

__all__ = [
    "CHECK_COST",
    "DeviceClass",
    "DeviceProfile",
    "EnforcementPlacement",
    "enforcement_plan",
    "ACTUATION",
    "ALERT",
    "READING",
    "Actuator",
    "App",
    "Sensor",
    "Thing",
    "AdministrativeDomain",
    "DomainGateway",
    "IoTWorld",
    "PatientProfile",
    "energy_usage",
    "patient_cohort",
    "traffic_flow",
    "vital_signs",
    "with_emergency",
]
