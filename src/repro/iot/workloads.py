"""Workload generators for the paper's motivating scenarios.

The paper's applications live "in domains such as smart cities,
healthcare, traffic monitoring, energy efficiency, and personal
lifestyle management" (§1).  These generators produce deterministic,
seeded signal functions suitable as :class:`~repro.iot.things.Sensor`
sources, plus episode injectors (emergencies, anomalies) used by the
policy benchmarks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

ReadingSource = Callable[[float], float]


def vital_signs(
    seed: int = 0,
    baseline: float = 72.0,
    variability: float = 4.0,
    circadian_amplitude: float = 6.0,
) -> ReadingSource:
    """Heart-rate-like signal: circadian rhythm + noise.

    Deterministic per (seed, t): the RNG is re-seeded from the timestamp
    so the signal is a pure function of time, replayable across runs.
    """

    def source(t: float) -> float:
        rng = random.Random(seed * 1_000_003 + int(t * 1000))
        day_phase = 2 * math.pi * (t % 86400.0) / 86400.0
        return (
            baseline
            - circadian_amplitude * math.cos(day_phase)
            + rng.gauss(0.0, variability)
        )

    return source


def with_emergency(
    base: ReadingSource,
    start: float,
    duration: float,
    magnitude: float = 80.0,
) -> ReadingSource:
    """Overlay an emergency episode (e.g. tachycardia) on a signal.

    Fig. 7's driver: "if a medical emergency is detected, policy must
    come into force".
    """

    def source(t: float) -> float:
        value = base(t)
        if start <= t < start + duration:
            ramp = min(1.0, (t - start) / max(1.0, duration * 0.1))
            value += magnitude * ramp
        return value

    return source


def traffic_flow(seed: int = 0, peak: float = 1200.0) -> ReadingSource:
    """Vehicles/hour with morning and evening rush peaks."""

    def source(t: float) -> float:
        rng = random.Random(seed * 1_000_003 + int(t))
        hour = (t % 86400.0) / 3600.0
        morning = math.exp(-((hour - 8.5) ** 2) / 2.0)
        evening = math.exp(-((hour - 17.5) ** 2) / 2.0)
        base = 0.15 + 0.85 * max(morning, evening)
        return max(0.0, peak * base + rng.gauss(0.0, peak * 0.05))

    return source


def energy_usage(seed: int = 0, base_load: float = 0.4) -> ReadingSource:
    """Household kW draw: base load + evening peak + appliance spikes."""

    def source(t: float) -> float:
        rng = random.Random(seed * 1_000_003 + int(t / 60))
        hour = (t % 86400.0) / 3600.0
        evening = 1.6 * math.exp(-((hour - 19.0) ** 2) / 4.0)
        spike = 2.0 if rng.random() < 0.02 else 0.0
        return base_load + evening + spike + abs(rng.gauss(0.0, 0.05))

    return source


@dataclass
class PatientProfile:
    """One home-monitoring patient for the Figs. 4-7 scenario."""

    name: str
    device_standard: bool  # hospital-issued (Ann) vs third-party (Zeb)
    baseline_hr: float = 72.0
    emergency_at: Optional[float] = None
    emergency_duration: float = 1800.0

    def signal(self, seed: int = 0) -> ReadingSource:
        # A stable per-name salt (builtin hash() varies across runs).
        salt = sum(ord(c) * (i + 1) for i, c in enumerate(self.name)) & 0xFFFF
        base = vital_signs(seed=seed ^ salt, baseline=self.baseline_hr)
        if self.emergency_at is None:
            return base
        return with_emergency(base, self.emergency_at, self.emergency_duration)


def patient_cohort(
    count: int,
    seed: int = 0,
    standard_fraction: float = 0.7,
    emergency_fraction: float = 0.1,
    horizon: float = 86400.0,
) -> List[PatientProfile]:
    """Generate a deterministic cohort of home-monitoring patients.

    ``standard_fraction`` of patients have hospital-issued devices (like
    Ann); the rest have non-standard devices needing the input sanitiser
    (like Zeb).  ``emergency_fraction`` experience one emergency episode
    within the horizon.
    """
    rng = random.Random(seed)
    cohort: List[PatientProfile] = []
    for i in range(count):
        emergency_at = None
        if rng.random() < emergency_fraction:
            emergency_at = rng.uniform(horizon * 0.1, horizon * 0.8)
        cohort.append(
            PatientProfile(
                name=f"patient-{i:04d}",
                device_standard=rng.random() < standard_fraction,
                baseline_hr=rng.uniform(58.0, 85.0),
                emergency_at=emergency_at,
            )
        )
    return cohort
