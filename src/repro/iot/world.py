"""The IoT world builder: simulator + network + federated domains.

:class:`IoTWorld` is the top-level convenience for examples, tests and
benchmarks: it owns the discrete-event simulator, the simulated network,
the global tag registry, and the administrative domains, and can gather
every domain's audit log into one federated compliance view.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.accesscontrol.pep import EnforcementMode
from repro.audit.compliance import ComplianceAuditor, ComplianceReport
from repro.audit.distributed import AuditCollector
from repro.audit.log import AuditLog
from repro.errors import DiscoveryError
from repro.ifc.tags import TagRegistry
from repro.iot.domain import AdministrativeDomain
from repro.net.network import Network
from repro.sim.events import Simulator


class IoTWorld:
    """A federated IoT deployment under simulation.

    Example::

        world = IoTWorld(seed=7)
        home = world.create_domain("ann-home")
        hospital = world.create_domain("hospital")
        ...
        world.run(hours=24)
        report = world.compliance_report(auditor)
    """

    def __init__(
        self,
        seed: int = 0,
        mode: EnforcementMode = EnforcementMode.AC_AND_IFC,
        default_latency: Optional[float] = None,
    ):
        self.sim = Simulator(seed=seed)
        if default_latency is None:
            self.network = Network(self.sim)
        else:
            self.network = Network(self.sim, default_latency=default_latency)
        self.registry = TagRegistry()
        self.mode = mode
        self.domains: Dict[str, AdministrativeDomain] = {}

    def create_domain(
        self,
        name: str,
        audit=None,
        mode: Optional[EnforcementMode] = None,
    ) -> AdministrativeDomain:
        """Add an administrative domain sharing the world clock.

        ``audit`` is an optional :class:`~repro.audit.sink.AuditSink`
        for the domain's whole stack (a machine spine, inside a
        :class:`~repro.deploy.Deployment`); omitted, the domain builds
        its own detached :class:`~repro.audit.log.AuditLog`.  ``mode``
        overrides the world's enforcement mode for this domain.
        """
        if name in self.domains:
            raise DiscoveryError(f"domain already exists: {name}")
        domain = AdministrativeDomain(
            name, clock=self.sim.now, mode=mode or self.mode, audit=audit
        )
        self.domains[name] = domain
        return domain

    def domain(self, name: str) -> AdministrativeDomain:
        """Look up a domain."""
        try:
            return self.domains[name]
        except KeyError:
            raise DiscoveryError(f"unknown domain: {name}") from None

    # -- running ------------------------------------------------------------------

    def run(self, seconds: float = 0.0, hours: float = 0.0) -> int:
        """Advance simulated time; returns events processed."""
        duration = seconds + hours * 3600.0
        return self.sim.run_for(duration)

    # -- federated audit --------------------------------------------------------------

    def collect_audit(self) -> AuditCollector:
        """Submit every domain's log to a fresh collector (Challenge 6)."""
        collector = AuditCollector(key="world-collector")
        for name, domain in self.domains.items():
            collector.submit(name, domain.audit)
        return collector

    def compliance_report(self, auditor: ComplianceAuditor) -> Dict[str, ComplianceReport]:
        """Run an auditor against each domain's log."""
        return {
            name: auditor.run(domain.audit)
            for name, domain in self.domains.items()
        }

    def total_flows(self) -> Dict[str, int]:
        """Aggregate flow statistics across all domains' buses."""
        sent = delivered = denied = 0
        for domain in self.domains.values():
            sent += domain.bus.stats.sent
            delivered += domain.bus.stats.delivered
            denied += domain.bus.stats.denied
        return {"sent": sent, "delivered": delivered, "denied": denied}
