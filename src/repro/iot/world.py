"""The IoT world builder: simulator + network + federated domains.

:class:`IoTWorld` is the top-level convenience for examples, tests and
benchmarks: it owns the discrete-event simulator, the simulated network,
the global tag registry, and the administrative domains, and can gather
every domain's audit log into one federated compliance view.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.accesscontrol.pep import EnforcementMode
from repro.audit.compliance import ComplianceAuditor, ComplianceReport
from repro.audit.distributed import AuditCollector
from repro.audit.log import AuditLog
from repro.errors import DiscoveryError
from repro.ifc.tags import TagRegistry
from repro.iot.domain import AdministrativeDomain
from repro.net.network import Network
from repro.sim.events import Simulator


class IoTWorld:
    """A federated IoT deployment under simulation.

    Example::

        world = IoTWorld(seed=7)
        home = world.create_domain("ann-home")
        hospital = world.create_domain("hospital")
        ...
        world.run(hours=24)
        report = world.compliance_report(auditor)
    """

    def __init__(
        self,
        seed: int = 0,
        mode: EnforcementMode = EnforcementMode.AC_AND_IFC,
    ):
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim)
        self.registry = TagRegistry()
        self.mode = mode
        self.domains: Dict[str, AdministrativeDomain] = {}

    def create_domain(self, name: str) -> AdministrativeDomain:
        """Add an administrative domain sharing the world clock."""
        if name in self.domains:
            raise DiscoveryError(f"domain already exists: {name}")
        domain = AdministrativeDomain(name, clock=self.sim.now, mode=self.mode)
        self.domains[name] = domain
        return domain

    def domain(self, name: str) -> AdministrativeDomain:
        """Look up a domain."""
        try:
            return self.domains[name]
        except KeyError:
            raise DiscoveryError(f"unknown domain: {name}") from None

    # -- running ------------------------------------------------------------------

    def run(self, seconds: float = 0.0, hours: float = 0.0) -> int:
        """Advance simulated time; returns events processed."""
        duration = seconds + hours * 3600.0
        return self.sim.run_for(duration)

    # -- federated audit --------------------------------------------------------------

    def collect_audit(self) -> AuditCollector:
        """Submit every domain's log to a fresh collector (Challenge 6)."""
        collector = AuditCollector(key="world-collector")
        for name, domain in self.domains.items():
            collector.submit(name, domain.audit)
        return collector

    def compliance_report(self, auditor: ComplianceAuditor) -> Dict[str, ComplianceReport]:
        """Run an auditor against each domain's log."""
        return {
            name: auditor.run(domain.audit)
            for name, domain in self.domains.items()
        }

    def total_flows(self) -> Dict[str, int]:
        """Aggregate flow statistics across all domains' buses."""
        sent = delivered = denied = 0
        for domain in self.domains.values():
            sent += domain.bus.stats.sent
            delivered += domain.bus.stats.delivered
            denied += domain.bus.stats.denied
        return {"sent": sent, "delivered": delivered, "denied": denied}
