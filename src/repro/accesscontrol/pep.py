"""Policy Enforcement Points combining AC and IFC.

§4 introduces PEPs and their limitation: "ACs are applied at specific
Policy Enforcement Points ... there is generally no subsequent control
over data flows beyond the point of enforcement."  §8.2.2 describes the
remedy used throughout this library: "augmenting the standard MW AC
(principal and contextual policy) enforcement with a subsequent
evaluation of IFC policy".

:class:`EnforcementPoint` runs that two-stage check and writes both
outcomes to the audit log.  :class:`EnforcementMode` lets benchmarks run
the same workload under ``AC_ONLY`` (the paper's baseline — what today's
systems do) versus ``AC_AND_IFC`` (the paper's proposal), which is how
EXPERIMENTS.md demonstrates the central claim that AC alone misses
downstream leaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Mapping, Optional, Set

from repro.accesscontrol.rbac import RBACPolicy, Role, Session
from repro.audit.log import AuditLog
from repro.audit.records import RecordKind
from repro.audit.spine import bind_source
from repro.errors import AccessDenied, FlowError
from repro.ifc.decisions import DecisionPlane
from repro.ifc.labels import SecurityContext


class EnforcementMode(str, Enum):
    """Which stages an enforcement point runs."""

    AC_ONLY = "ac-only"        # the paper's §4 baseline
    IFC_ONLY = "ifc-only"      # pure data-centric control
    AC_AND_IFC = "ac-and-ifc"  # the paper's proposal (§8.2.2)


@dataclass
class CheckResult:
    """Outcome of one enforcement decision at a PEP."""

    allowed: bool
    ac_passed: bool
    ifc_passed: bool
    reason: str = ""


class EnforcementPoint:
    """A PEP guarding one interaction point (endpoint, table, file, ...).

    The check sequence mirrors §8.2.2: principal/contextual AC first,
    then IFC over the security contexts of the communicating parties.
    Every decision — allow or deny — is appended to the audit log
    (Concern 3: "record and audit the flow of data").
    """

    def __init__(
        self,
        name: str,
        mode: EnforcementMode = EnforcementMode.AC_AND_IFC,
        audit: Optional[AuditLog] = None,
        plane: Optional[DecisionPlane] = None,
    ):
        self.name = name
        self.mode = mode
        # Per-PEP spine segment: AC and IFC outcomes stage off the
        # enforcement path when the PEP runs on an audit spine.
        self.audit = bind_source(audit, f"pep:{name}")
        self.plane = plane or DecisionPlane(audit=self.audit)
        self.checks = 0
        self.denials = 0

    def _audit_access(self, allowed: bool, actor: str, resource: str, reason: str) -> None:
        if self.audit is None:
            return
        kind = RecordKind.ACCESS_ALLOWED if allowed else RecordKind.ACCESS_DENIED
        self.audit.append(kind, actor, resource, {"pep": self.name, "reason": reason})

    def _audit_flow(
        self,
        allowed: bool,
        actor: str,
        subject: str,
        source: Optional[SecurityContext],
        target: Optional[SecurityContext],
        reason: str,
    ) -> None:
        if allowed:
            self.plane.audit_allowed(actor, subject, source, target, {"pep": self.name})
        else:
            self.plane.audit_denied(actor, subject, reason, source, target)

    def check(
        self,
        session: Optional[Session],
        action: str,
        resource: str,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> CheckResult:
        """Run the configured enforcement stages.

        ``session`` may be None when the mode skips AC (IFC_ONLY).
        Contexts may be None when the mode skips IFC (AC_ONLY).

        Returns a :class:`CheckResult`; use :meth:`enforce` for the
        raising form.
        """
        self.checks += 1
        ac_passed = True
        ifc_passed = True
        reason = ""

        if self.mode in (EnforcementMode.AC_ONLY, EnforcementMode.AC_AND_IFC):
            if session is None:
                ac_passed = False
                reason = "no session presented"
            elif not session.is_authorised(action, resource):
                ac_passed = False
                reason = f"{session.principal} not authorised to {action} {resource}"
            actor = session.principal if session else "<anonymous>"
            self._audit_access(ac_passed, actor, resource, reason or "authorised")
            if not ac_passed:
                self.denials += 1
                return CheckResult(False, False, True, reason)

        if self.mode in (EnforcementMode.IFC_ONLY, EnforcementMode.AC_AND_IFC):
            if source_context is not None and target_context is not None:
                decision = self.plane.evaluate(source_context, target_context)
                ifc_passed = decision.allowed
                reason = decision.reason
                actor = session.principal if session else "<anonymous>"
                self._audit_flow(
                    ifc_passed, actor, resource, source_context, target_context, reason
                )
                if not ifc_passed:
                    self.denials += 1
                    return CheckResult(False, ac_passed, False, reason)

        return CheckResult(True, ac_passed, ifc_passed, "allowed")

    def enforce(
        self,
        session: Optional[Session],
        action: str,
        resource: str,
        source_context: Optional[SecurityContext] = None,
        target_context: Optional[SecurityContext] = None,
    ) -> CheckResult:
        """Like :meth:`check` but raising on denial.

        Raises:
            AccessDenied: when the AC stage refuses.
            FlowError: when the IFC stage refuses.
        """
        result = self.check(session, action, resource, source_context, target_context)
        if result.allowed:
            return result
        if not result.ac_passed:
            raise AccessDenied(result.reason)
        raise FlowError("source", resource, result.reason)
