"""Parametrised role-based access control (OASIS-style).

§4: "Authorisation policy might target a particular entity, a role,
and/or some aspect of context, e.g. parametrised roles can capture
details of an entity, its functionality and context [10]" — [10] being
the OASIS RBAC model.  Roles carry parameters (``doctor(ward=W7)``),
activation can be conditioned on credentials and context, and
permissions match on role name plus parameter constraints.

This is the *conventional* AC layer the paper says is necessary but not
sufficient (§4's two limitations); the IFC layer rides on top of it at
every PEP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.errors import AccessDenied


@dataclass(frozen=True)
class Role:
    """A parametrised role instance, e.g. ``Role("nurse", {"ward": "w7"})``.

    Parameters are frozen key/value pairs so roles are hashable and can
    live in activation sets.
    """

    name: str
    parameters: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def of(cls, name: str, **parameters: str) -> "Role":
        return cls(name, tuple(sorted(parameters.items())))

    def parameter(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.parameters:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        if not self.parameters:
            return self.name
        params = ", ".join(f"{k}={v}" for k, v in self.parameters)
        return f"{self.name}({params})"


#: Context predicate guarding role activation: maps context dict -> bool.
ActivationCondition = Callable[[Mapping[str, object]], bool]


@dataclass
class RoleActivationRule:
    """Rule controlling who may activate a role, under what conditions.

    OASIS activates roles against *credentials* (here: already-active
    prerequisite roles and/or named certificates) plus environmental
    conditions — e.g. "nurse may activate `on-duty-nurse` only while the
    rota says so".
    """

    role_name: str
    prerequisite_roles: FrozenSet[str] = frozenset()
    required_credentials: FrozenSet[str] = frozenset()
    condition: Optional[ActivationCondition] = None

    def permits(
        self,
        active_roles: Set[Role],
        credentials: Set[str],
        context: Mapping[str, object],
    ) -> bool:
        active_names = {r.name for r in active_roles}
        if not self.prerequisite_roles <= active_names:
            return False
        if not self.required_credentials <= credentials:
            return False
        if self.condition is not None and not self.condition(context):
            return False
        return True


@dataclass(frozen=True)
class Permission:
    """The right to perform ``action`` on resources matching ``resource``.

    ``resource`` supports a trailing ``*`` wildcard (``"patient/ann/*"``).
    ``parameter_match`` constrains which role parameterisations grant the
    permission — e.g. only ``nurse(ward=w7)`` may read ``ward/w7/*``.
    A parameter value of ``"$resource"`` must equal the resource segment
    in that position, supporting per-instance grants.
    """

    action: str
    resource: str
    parameter_match: Tuple[Tuple[str, str], ...] = ()

    def matches_resource(self, resource: str) -> bool:
        if self.resource.endswith("*"):
            return resource.startswith(self.resource[:-1])
        return resource == self.resource

    def role_qualifies(self, role: Role) -> bool:
        for key, required in self.parameter_match:
            if role.parameter(key) != required:
                return False
        return True


class RBACPolicy:
    """The authorisation database: role→permissions, activation rules.

    Example::

        policy = RBACPolicy()
        policy.grant("nurse", Permission("read", "ward/w7/*",
                                         (("ward", "w7"),)))
        policy.add_activation_rule(RoleActivationRule(
            "nurse", required_credentials=frozenset({"nursing-cert"})))
    """

    def __init__(self) -> None:
        self._grants: Dict[str, List[Permission]] = {}
        self._activation_rules: Dict[str, List[RoleActivationRule]] = {}

    def grant(self, role_name: str, permission: Permission) -> None:
        """Attach a permission to a role name."""
        self._grants.setdefault(role_name, []).append(permission)

    def revoke_all(self, role_name: str) -> None:
        """Remove every grant from a role."""
        self._grants.pop(role_name, None)

    def add_activation_rule(self, rule: RoleActivationRule) -> None:
        """Register an activation rule for a role."""
        self._activation_rules.setdefault(rule.role_name, []).append(rule)

    def may_activate(
        self,
        role: Role,
        active_roles: Set[Role],
        credentials: Set[str],
        context: Mapping[str, object],
    ) -> bool:
        """Whether a principal in the given state may activate ``role``.

        Roles without rules are freely activatable (open enrolment);
        roles with rules need at least one rule to pass.
        """
        rules = self._activation_rules.get(role.name)
        if not rules:
            return True
        return any(r.permits(active_roles, credentials, context) for r in rules)

    def permissions_of(self, role: Role) -> List[Permission]:
        """Permissions a specific role instance qualifies for."""
        return [
            p
            for p in self._grants.get(role.name, ())
            if p.role_qualifies(role)
        ]

    def authorised(self, roles: Set[Role], action: str, resource: str) -> bool:
        """Whether any active role grants ``action`` on ``resource``."""
        for role in roles:
            for permission in self.permissions_of(role):
                if permission.action == action and permission.matches_resource(
                    resource
                ):
                    return True
        return False


class Session:
    """A principal's live RBAC session: activated roles + credentials.

    Mirrors OASIS's session-based activation: roles are activated into a
    session (checked against activation rules and context) and can be
    deactivated when context changes — e.g. "disconnecting an employee
    after their shift" (§5.2) deactivates the role, and PEPs re-check.
    """

    def __init__(self, principal: str, policy: RBACPolicy):
        self.principal = principal
        self.policy = policy
        self.active_roles: Set[Role] = set()
        self.credentials: Set[str] = set()

    def present_credential(self, credential: str) -> None:
        """Add a credential (e.g. a validated certificate name)."""
        self.credentials.add(credential)

    def activate(self, role: Role, context: Optional[Mapping[str, object]] = None) -> None:
        """Activate a role into the session.

        Raises:
            AccessDenied: when no activation rule permits it.
        """
        if not self.policy.may_activate(
            role, self.active_roles, self.credentials, context or {}
        ):
            raise AccessDenied(
                f"{self.principal} may not activate role {role}"
            )
        self.active_roles.add(role)

    def deactivate(self, role: Role) -> None:
        """Drop a role (and any roles that depended on it)."""
        self.active_roles.discard(role)
        # Cascade: deactivate roles whose every activation rule needed
        # the dropped role as a prerequisite.
        dropped = True
        while dropped:
            dropped = False
            names = {r.name for r in self.active_roles}
            for active in list(self.active_roles):
                rules = self.policy._activation_rules.get(active.name, [])
                if rules and not any(
                    rule.prerequisite_roles <= (names - {active.name})
                    or not rule.prerequisite_roles
                    for rule in rules
                ):
                    self.active_roles.discard(active)
                    dropped = True

    def check(self, action: str, resource: str) -> None:
        """Authorise an action.

        Raises:
            AccessDenied: when no active role grants it.
        """
        if not self.policy.authorised(self.active_roles, action, resource):
            raise AccessDenied(
                f"{self.principal} may not {action} {resource} "
                f"(roles: {', '.join(str(r) for r in sorted(self.active_roles, key=str)) or 'none'})"
            )

    def is_authorised(self, action: str, resource: str) -> bool:
        """Boolean form of :meth:`check`."""
        return self.policy.authorised(self.active_roles, action, resource)
