"""Conventional access control: parametrised RBAC and PEPs (§4)."""

from repro.accesscontrol.rbac import (
    ActivationCondition,
    Permission,
    RBACPolicy,
    Role,
    RoleActivationRule,
    Session,
)
from repro.accesscontrol.pep import (
    CheckResult,
    EnforcementMode,
    EnforcementPoint,
)

__all__ = [
    "ActivationCondition",
    "Permission",
    "RBACPolicy",
    "Role",
    "RoleActivationRule",
    "Session",
    "CheckResult",
    "EnforcementMode",
    "EnforcementPoint",
]
