"""The typed information-flow graph — the analysis plane's data model.

SETools' ``dta.py`` compiles an SELinux policy into a digraph of domain
transitions and answers reachability queries over it offline.  This
module is the analogue for the paper's IFC model: a :class:`FlowGraph`
whose nodes are principals, components, gateways, tags and policy
artefacts, and whose edges are *admissible* flows — each annotated with
what admits it (the bare §6 flow rule, a held privilege, or a named
declassifier/endorser crossing).

The graph is a pure value: nodes and edges are frozen dataclasses
carrying qualified tag strings rather than live interner masks, so two
graphs compiled from equivalent policies compare equal regardless of
interner state, process, or construction order — the property the
``Deployment.from_spec`` round-trip guard pins.

Construction discipline: only ``repro/analysis`` builds ``FlowGraph``
objects (the compiler walks live deployments or declarative specs); the
rest of the tree consumes them.  A lint test greps for violations, the
same way the deploy façade's hand-wiring grep works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import AnalysisError


class NodeKind(str, Enum):
    """What a flow-graph node models."""

    COMPONENT = "component"    # things, bus components, kernel processes
    GATEWAY = "gateway"        # declassifiers/endorsers (trusted crossings)
    TAG = "tag"                # one qualified tag, as a data source
    PRINCIPAL = "principal"    # a privilege-authority grantee
    MEMBER = "member"          # one deployment member (by hostname)
    DOMAIN = "domain"          # an administrative domain
    ENGINE = "engine"          # a domain's policy engine
    NOTIFY = "notify"          # a notification channel (ECA target)
    OBLIGATION = "obligation"  # a legal obligation (policy pack)


#: Edge annotations (the ``via`` vocabulary).  Gateway crossings use
#: ``gateway:<name>`` and ECA-admitted flows ``rule:<name>``, so ``via``
#: is a string rather than an enum; these are the fixed members.
VIA_FLOW_RULE = "flow-rule"    # the bare §6 rule admits it
VIA_PRIVILEGE = "privilege"    # admitted only if the source exercises
                               # held declassification/endorsement rights
VIA_CARRIES = "carries"        # tag -> entity whose secrecy holds it
VIA_HOSTS = "hosts"            # member -> domain (structural)
VIA_RUNS = "runs"              # member -> kernel process (structural)
VIA_ADOPTS = "adopts"          # domain -> component (structural)
VIA_OPERATES = "operates"      # domain -> engine (structural)
VIA_DELEGATES = "delegates"    # principal -> principal (structural)


@dataclass(frozen=True, order=True)
class FlowNode:
    """One graph node.

    ``node_id`` is ``kind:name`` (``component:ward-sensor``,
    ``tag:hospital:medical``); labels are sorted qualified tag strings.
    Gateways carry both sides of their declared transition: the input
    context in ``secrecy``/``integrity`` and the output context in
    ``out_secrecy``/``out_integrity`` (empty tuples everywhere else).
    """

    node_id: str
    kind: NodeKind
    secrecy: Tuple[str, ...] = ()
    integrity: Tuple[str, ...] = ()
    out_secrecy: Tuple[str, ...] = ()
    out_integrity: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        """The bare name (``node_id`` without the kind prefix)."""
        return self.node_id.split(":", 1)[1]


@dataclass(frozen=True, order=True)
class FlowEdge:
    """One admissible flow (or structural relation).

    ``flow`` distinguishes data-flow edges — what reachability queries
    traverse — from structural ones (hosting, adoption, delegation)
    kept for reports and diffs.  ``detail`` records what the edge costs
    to take: the secrecy tags a privilege edge must shed
    (``shed:<tag>``), the integrity tags it must endorse
    (``endorse:<tag>``), or a gateway's crossing class.
    """

    src: str
    dst: str
    via: str
    flow: bool = True
    detail: Tuple[str, ...] = ()


class FlowGraph:
    """An immutable-by-convention digraph of admissible flows.

    Built only by ``repro.analysis.compiler``; everything else queries.
    Equality is value equality over the node and edge sets, so graphs
    compiled from a live :class:`~repro.deploy.builder.Deployment` and
    from its :class:`~repro.deploy.spec.DeploymentSpec` twin can be
    asserted identical.
    """

    def __init__(
        self,
        nodes: Iterable[FlowNode] = (),
        edges: Iterable[FlowEdge] = (),
    ):
        self._nodes: Dict[str, FlowNode] = {}
        self._edges: Set[FlowEdge] = set()
        self._out: Dict[str, List[FlowEdge]] = {}
        self._in: Dict[str, List[FlowEdge]] = {}
        self._by_name: Dict[str, List[str]] = {}
        for node in nodes:
            self.add_node(node)
        for edge in edges:
            self.add_edge(edge)

    # -- construction (compiler-facing) ------------------------------------

    def add_node(self, node: FlowNode) -> FlowNode:
        """Register a node (idempotent for identical values)."""
        existing = self._nodes.get(node.node_id)
        if existing is not None:
            if existing != node:
                raise AnalysisError(
                    f"conflicting definitions for node {node.node_id!r}"
                )
            return existing
        self._nodes[node.node_id] = node
        self._by_name.setdefault(node.name, []).append(node.node_id)
        return node

    def add_edge(self, edge: FlowEdge) -> FlowEdge:
        """Register an edge; both endpoints must already exist."""
        for endpoint in (edge.src, edge.dst):
            if endpoint not in self._nodes:
                raise AnalysisError(
                    f"edge endpoint {endpoint!r} is not a node"
                )
        if edge not in self._edges:
            self._edges.add(edge)
            self._out.setdefault(edge.src, []).append(edge)
            self._in.setdefault(edge.dst, []).append(edge)
        return edge

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, ref: str) -> bool:
        try:
            self.resolve(ref)
        except AnalysisError:
            return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowGraph):
            return NotImplemented
        return (
            self._nodes == other._nodes and self._edges == other._edges
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return (
            f"<FlowGraph nodes={len(self._nodes)} "
            f"edges={len(self._edges)}>"
        )

    def resolve(self, ref: str) -> FlowNode:
        """Resolve a node reference: a full ``kind:name`` id, or a bare
        name unique across kinds (``"ward-sensor"``); raises
        :class:`~repro.errors.AnalysisError` when unknown or ambiguous.
        """
        node = self._nodes.get(ref)
        if node is not None:
            return node
        ids = self._by_name.get(ref, ())
        if len(ids) == 1:
            return self._nodes[ids[0]]
        if len(ids) > 1:
            raise AnalysisError(
                f"ambiguous node name {ref!r}: " + ", ".join(sorted(ids))
            )
        raise AnalysisError(f"unknown node: {ref!r}")

    def nodes(self, kind: Optional[NodeKind] = None) -> List[FlowNode]:
        """Every node (optionally one kind), sorted by id."""
        result = self._nodes.values()
        if kind is not None:
            result = (n for n in result if n.kind == kind)
        return sorted(result)

    def edges(self, flow_only: bool = False) -> List[FlowEdge]:
        """Every edge, sorted; ``flow_only`` drops structural edges."""
        result = self._edges
        if flow_only:
            result = (e for e in result if e.flow)
        return sorted(result)

    def out_edges(self, ref: str, flow_only: bool = True) -> List[FlowEdge]:
        """Edges leaving a node (flow edges only, by default)."""
        edges = self._out.get(self.resolve(ref).node_id, ())
        return sorted(e for e in edges if e.flow or not flow_only)

    def in_edges(self, ref: str, flow_only: bool = True) -> List[FlowEdge]:
        """Edges entering a node (flow edges only, by default)."""
        edges = self._in.get(self.resolve(ref).node_id, ())
        return sorted(e for e in edges if e.flow or not flow_only)

    def summary(self) -> Dict[str, int]:
        """Node/edge counts by kind — the report header."""
        counts: Dict[str, int] = {
            "nodes": len(self._nodes),
            "edges": len(self._edges),
            "flow_edges": sum(1 for e in self._edges if e.flow),
        }
        for node in self._nodes.values():
            key = f"nodes_{node.kind.value}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- diff mode ---------------------------------------------------------

    def diff(self, other: "FlowGraph") -> "FlowDiff":
        """What ``other`` admits (or retires) relative to ``self``.

        ``self`` is the *baseline* (the deployed policy), ``other`` the
        proposed change; ``added_flows`` is then exactly the set of new
        ``(src, dst, via)`` admissible flows the change introduces —
        what a pre-deploy reviewer must sign off on.
        """
        added_nodes = sorted(
            set(other._nodes) - set(self._nodes)
        )
        removed_nodes = sorted(
            set(self._nodes) - set(other._nodes)
        )
        added = other._edges - self._edges
        removed = self._edges - other._edges
        return FlowDiff(
            added_nodes=added_nodes,
            removed_nodes=removed_nodes,
            added_flows=sorted(e for e in added if e.flow),
            removed_flows=sorted(e for e in removed if e.flow),
            added_structure=sorted(e for e in added if not e.flow),
            removed_structure=sorted(e for e in removed if not e.flow),
        )


@dataclass
class FlowDiff:
    """The delta between two compiled policies, flow-first.

    Attributes:
        added_nodes / removed_nodes: node ids only in one side.
        added_flows / removed_flows: admissible-flow edges only in one
            side — the security-relevant delta.
        added_structure / removed_structure: structural edges, for
            completeness.
    """

    added_nodes: List[str] = field(default_factory=list)
    removed_nodes: List[str] = field(default_factory=list)
    added_flows: List[FlowEdge] = field(default_factory=list)
    removed_flows: List[FlowEdge] = field(default_factory=list)
    added_structure: List[FlowEdge] = field(default_factory=list)
    removed_structure: List[FlowEdge] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (
            self.added_nodes or self.removed_nodes
            or self.added_flows or self.removed_flows
            or self.added_structure or self.removed_structure
        )

    def admits(self) -> List[Tuple[str, str, str]]:
        """The new ``(src, dst, via)`` flows the change introduces."""
        return [(e.src, e.dst, e.via) for e in self.added_flows]

    def report(self) -> str:
        """Human-readable account of the delta, for review."""
        if self.is_empty():
            return "policy change admits no new flows (graphs identical)"
        lines: List[str] = []
        if self.added_flows:
            lines.append(f"NEW FLOWS ({len(self.added_flows)}):")
            for e in self.added_flows:
                cost = f"  [{', '.join(e.detail)}]" if e.detail else ""
                lines.append(f"  + {e.src} -> {e.dst} via {e.via}{cost}")
        if self.removed_flows:
            lines.append(f"RETIRED FLOWS ({len(self.removed_flows)}):")
            for e in self.removed_flows:
                lines.append(f"  - {e.src} -> {e.dst} via {e.via}")
        if self.added_nodes:
            lines.append(
                "new nodes: " + ", ".join(self.added_nodes)
            )
        if self.removed_nodes:
            lines.append(
                "removed nodes: " + ", ".join(self.removed_nodes)
            )
        if self.added_structure or self.removed_structure:
            lines.append(
                f"structural: +{len(self.added_structure)} "
                f"-{len(self.removed_structure)}"
            )
        return "\n".join(lines)
