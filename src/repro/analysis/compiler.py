"""Compile declared policy into a :class:`~repro.analysis.graph.FlowGraph`.

The compiler is the analysis plane's only constructor of graphs.  It
walks whichever policy sources the caller has — a live
:class:`~repro.deploy.builder.Deployment`, its declarative
:class:`~repro.deploy.spec.DeploymentSpec` twin, registered
:class:`~repro.ifc.gateways.Gateway` chains, ECA rules inside each
domain's policy engine, and :class:`~repro.policy.legal.LegalObligation`
packs — and emits one typed graph:

* **structural** edges record topology: which member hosts which
  domain, which domain operates which engine and adopts which
  components, which kernel processes a member runs;
* **flow** edges record admissibility, each annotated with what admits
  it: the bare §6 rule (``flow-rule``), a privilege the source holds
  (``privilege``, with the exact shed/endorse tags in ``detail``), or a
  named gateway crossing (``gateway:<name>``).

Privilege-admitted edges use the flow rule's monotonicity: the rule is
monotone in S(A) (smaller is better) and I(A) (larger is better), so the
single *best* context a holder can reach — ``S' = S − remove_secrecy``,
``I' = I ∪ add_integrity`` — decides reachability for every transition
its privileges permit; no transition enumeration is needed.

Graphs from a live deployment and from its spec twin are identical for
freshly built deployments (pinned by test): the spec names exactly the
members, domains and engines the builder materialises, and neither side
has components, processes or traffic yet.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.graph import (
    VIA_ADOPTS,
    VIA_CARRIES,
    VIA_DELEGATES,
    VIA_FLOW_RULE,
    VIA_HOSTS,
    VIA_OPERATES,
    VIA_PRIVILEGE,
    VIA_RUNS,
    FlowEdge,
    FlowGraph,
    FlowNode,
    NodeKind,
)
from repro.errors import AnalysisError
from repro.ifc.flow import can_flow
from repro.ifc.gateways import Declassifier, Endorser, Gateway
from repro.ifc.labels import SecurityContext
from repro.ifc.privileges import PrivilegeAuthority, PrivilegeSet
from repro.policy.legal import LegalObligation
from repro.policy.rules import CommandAction, NotifyAction


def _tags(label) -> Tuple[str, ...]:
    """A label as the graph's canonical sorted qualified-tag tuple."""
    return tuple(sorted(t.qualified for t in label.tags))


def _ctx_of(entity) -> Optional[SecurityContext]:
    """The security context of a live entity, whatever it calls it.

    Kernel processes carry ``.security``; components, things and
    gateways carry ``.context``.
    """
    ctx = getattr(entity, "security", None)
    if isinstance(ctx, SecurityContext):
        return ctx
    ctx = getattr(entity, "context", None)
    if isinstance(ctx, SecurityContext):
        return ctx
    return None


def _privileges_of(entity) -> PrivilegeSet:
    priv = getattr(entity, "privileges", None)
    if isinstance(priv, PrivilegeSet):
        return priv
    return PrivilegeSet.none()


def _best_context(ctx: SecurityContext, priv: PrivilegeSet) -> SecurityContext:
    """The most flow-capable context the holder's privileges reach.

    Monotonicity of the flow rule in the source's labels means this one
    context decides privilege-admitted reachability for the whole
    transition set.
    """
    return ctx.remove_secrecy(*priv.remove_secrecy).add_integrity(
        *priv.add_integrity
    )


def _privilege_detail(
    src: SecurityContext, dst: SecurityContext, priv: PrivilegeSet
) -> Tuple[str, ...]:
    """The exact label changes a privilege edge requires of its source:
    secrecy tags to shed and integrity tags to endorse."""
    shed = (src.secrecy - dst.secrecy).tags & priv.remove_secrecy
    endorse = (dst.integrity - src.integrity).tags & priv.add_integrity
    detail = [f"shed:{t.qualified}" for t in sorted(shed)]
    detail += [f"endorse:{t.qualified}" for t in sorted(endorse)]
    return tuple(detail)


class _Builder:
    """One compilation: accumulates nodes, then derives flow edges."""

    def __init__(self) -> None:
        self.graph = FlowGraph()
        #: (node, live context, live privileges) for every entity that
        #: participates in flow-edge derivation.
        self._carriers: List[Tuple[FlowNode, SecurityContext, PrivilegeSet]] = []

    # -- nodes -------------------------------------------------------------

    def member(self, hostname: str) -> FlowNode:
        return self.graph.add_node(
            FlowNode(f"member:{hostname}", NodeKind.MEMBER)
        )

    def domain(self, name: str) -> FlowNode:
        return self.graph.add_node(FlowNode(f"domain:{name}", NodeKind.DOMAIN))

    def engine(self, name: str) -> FlowNode:
        return self.graph.add_node(FlowNode(f"engine:{name}", NodeKind.ENGINE))

    def component(self, name: str, entity) -> Optional[FlowNode]:
        ctx = _ctx_of(entity)
        if ctx is None:
            return None
        return self.component_ctx(name, ctx, _privileges_of(entity))

    def component_ctx(
        self, name: str, ctx: SecurityContext, priv: PrivilegeSet
    ) -> FlowNode:
        node = self.graph.add_node(
            FlowNode(
                f"component:{name}",
                NodeKind.COMPONENT,
                secrecy=_tags(ctx.secrecy),
                integrity=_tags(ctx.integrity),
            )
        )
        self._carriers.append((node, ctx, priv))
        self._carry_tags(node, ctx)
        return node

    def gateway(self, gateway: Gateway) -> FlowNode:
        node = self.graph.add_node(
            FlowNode(
                f"gateway:{gateway.name}",
                NodeKind.GATEWAY,
                secrecy=_tags(gateway.input_context.secrecy),
                integrity=_tags(gateway.input_context.integrity),
                out_secrecy=_tags(gateway.output_context.secrecy),
                out_integrity=_tags(gateway.output_context.integrity),
            )
        )
        self._carry_tags(node, gateway.input_context)
        return node

    def _carry_tags(self, node: FlowNode, ctx: SecurityContext) -> None:
        """Tag nodes + ``carries`` edges: where each tag's data lives."""
        for tag in _tags(ctx.secrecy):
            tag_node = self.graph.add_node(
                FlowNode(f"tag:{tag}", NodeKind.TAG)
            )
            self.graph.add_edge(
                FlowEdge(tag_node.node_id, node.node_id, VIA_CARRIES,
                         flow=False)
            )

    # -- policy artefacts --------------------------------------------------

    def rules(self, engine_node: FlowNode, rules: Iterable) -> None:
        """ECA rules: notifications are admissible flows out of the
        engine (data leaves the system through the channel); commands
        are structural edges to their targets."""
        for rule in rules:
            via = f"rule:{rule.name}"
            for action in rule.actions:
                if isinstance(action, NotifyAction):
                    notify = self.graph.add_node(
                        FlowNode(f"notify:{action.channel}", NodeKind.NOTIFY)
                    )
                    self.graph.add_edge(
                        FlowEdge(engine_node.node_id, notify.node_id, via)
                    )
                elif isinstance(action, CommandAction):
                    if action.command is None:
                        continue  # builder commands have no static target
                    target = f"component:{action.command.target}"
                    if target in self.graph:
                        self.graph.add_edge(
                            FlowEdge(engine_node.node_id, target, via,
                                     flow=False)
                        )

    def obligations(self, obligations: Iterable[LegalObligation]) -> None:
        for obligation in obligations:
            node = self.graph.add_node(
                FlowNode(
                    f"obligation:{obligation.obligation_id}",
                    NodeKind.OBLIGATION,
                )
            )
            for src, dst in getattr(obligation, "forbidden_flows", ()):
                for ref in (src, dst):
                    target = f"component:{ref}"
                    if target in self.graph:
                        self.graph.add_edge(
                            FlowEdge(node.node_id, target,
                                     f"obliges:{obligation.obligation_id}",
                                     flow=False)
                        )

    def authority(self, authority: PrivilegeAuthority) -> None:
        """Delegation chains as principal nodes + structural edges."""
        for delegation in authority.delegations():
            grantor = self.graph.add_node(
                FlowNode(f"principal:{delegation.grantor}", NodeKind.PRINCIPAL)
            )
            grantee = self.graph.add_node(
                FlowNode(f"principal:{delegation.grantee}", NodeKind.PRINCIPAL)
            )
            self.graph.add_edge(
                FlowEdge(grantor.node_id, grantee.node_id, VIA_DELEGATES,
                         flow=False)
            )

    # -- flow-edge derivation ----------------------------------------------

    def derive_flows(self, gateways: Sequence[Gateway]) -> None:
        """The O(n²) admissibility sweep over context-bearing nodes.

        Component→component and component→gateway-input edges follow the
        bare flow rule; gateway-output→anything edges are the privileged
        crossings, annotated ``gateway:<name>``; component→component
        pairs the bare rule denies but the source's privileges admit get
        a ``privilege`` edge naming the exact shed/endorse tags.
        """
        gateway_nodes = [
            (self.graph.resolve(f"gateway:{gw.name}"), gw) for gw in gateways
        ]
        readers: List[Tuple[FlowNode, SecurityContext, str, Tuple[str, ...]]] = [
            (node, ctx, VIA_FLOW_RULE, ()) for node, ctx, _ in self._carriers
        ]
        readers += [
            (node, gw.input_context, VIA_FLOW_RULE, ())
            for node, gw in gateway_nodes
        ]
        writers: List[Tuple[FlowNode, SecurityContext, str, Tuple[str, ...],
                            PrivilegeSet]] = [
            (node, ctx, VIA_FLOW_RULE, (), priv)
            for node, ctx, priv in self._carriers
        ]
        for node, gw in gateway_nodes:
            kind = (
                "declassifier" if isinstance(gw, Declassifier)
                else "endorser" if isinstance(gw, Endorser)
                else "gateway"
            )
            writers.append(
                (node, gw.output_context, f"gateway:{gw.name}", (kind,),
                 PrivilegeSet.none())
            )
        for w_node, w_ctx, w_via, w_detail, w_priv in writers:
            best: Optional[SecurityContext] = None
            if not w_priv.is_empty():
                best = _best_context(w_ctx, w_priv)
            for r_node, r_ctx, _, _ in readers:
                if r_node.node_id == w_node.node_id:
                    continue
                if can_flow(w_ctx, r_ctx):
                    self.graph.add_edge(
                        FlowEdge(w_node.node_id, r_node.node_id, w_via,
                                 detail=w_detail)
                    )
                elif best is not None and can_flow(best, r_ctx):
                    self.graph.add_edge(
                        FlowEdge(
                            w_node.node_id, r_node.node_id, VIA_PRIVILEGE,
                            detail=_privilege_detail(w_ctx, r_ctx, w_priv),
                        )
                    )


def compile_spec(
    spec,
    gateways: Sequence[Gateway] = (),
    obligations: Sequence[LegalObligation] = (),
    authority: Optional[PrivilegeAuthority] = None,
) -> FlowGraph:
    """Compile a declarative :class:`~repro.deploy.spec.DeploymentSpec`.

    The spec names topology only (members, domains, engines), so the
    graph carries the structural skeleton plus whatever gateways and
    obligations the caller supplies — exactly what compiling the freshly
    built deployment twin yields.
    """
    builder = _Builder()
    for node_spec in spec.nodes:
        member = builder.member(node_spec.hostname) if node_spec.machine else None
        if member is not None and node_spec.substrate:
            # The builder's one boot-time kernel process: the substrate
            # daemon (public context, no privileges) — modelled so the
            # spec graph matches the freshly built deployment exactly.
            daemon = builder.component_ctx(
                f"substrate@{node_spec.hostname}",
                SecurityContext.public(),
                PrivilegeSet.none(),
            )
            builder.graph.add_edge(
                FlowEdge(member.node_id, daemon.node_id, VIA_RUNS, flow=False)
            )
        if node_spec.domain is not None:
            domain = builder.domain(node_spec.domain)
            engine = builder.engine(f"{node_spec.domain}-policy-engine")
            builder.graph.add_edge(
                FlowEdge(domain.node_id, engine.node_id, VIA_OPERATES,
                         flow=False)
            )
            if member is not None:
                builder.graph.add_edge(
                    FlowEdge(member.node_id, domain.node_id, VIA_HOSTS,
                             flow=False)
                )
    for gateway in gateways:
        builder.gateway(gateway)
    builder.obligations(obligations)
    if authority is not None:
        builder.authority(authority)
    builder.derive_flows(gateways)
    return builder.graph


def compile_deployment(
    deployment,
    gateways: Sequence[Gateway] = (),
    obligations: Sequence[LegalObligation] = (),
    authority: Optional[PrivilegeAuthority] = None,
) -> FlowGraph:
    """Compile a live :class:`~repro.deploy.builder.Deployment`.

    Walks the built planes: members and their kernel processes, domains
    with their bus components and installed ECA rules, plus the
    gateways the deployment registered (``register_gateway``) and any
    the caller adds.
    """
    deployment.build()
    builder = _Builder()
    all_gateways = list(getattr(deployment, "_gateways", ())) + [
        gw for gw in gateways
        if gw not in getattr(deployment, "_gateways", ())
    ]
    for handle in deployment.nodes():
        member = (
            builder.member(handle.spec.hostname)
            if handle.machine is not None else None
        )
        if member is not None:
            for process in handle.machine.kernel.processes.values():
                proc_node = builder.component(process.name, process)
                if proc_node is not None:
                    builder.graph.add_edge(
                        FlowEdge(member.node_id, proc_node.node_id, VIA_RUNS,
                                 flow=False)
                    )
        if handle.spec.domain is not None and member is not None:
            domain = builder.domain(handle.spec.domain)
            builder.graph.add_edge(
                FlowEdge(member.node_id, domain.node_id, VIA_HOSTS,
                         flow=False)
            )
    for name, domain_obj in deployment.world.domains.items():
        domain = builder.domain(name)
        engine = builder.engine(domain_obj.engine.name)
        builder.graph.add_edge(
            FlowEdge(domain.node_id, engine.node_id, VIA_OPERATES, flow=False)
        )
        for comp_name, component in domain_obj.bus.components.items():
            comp_node = builder.component(comp_name, component)
            if comp_node is not None:
                builder.graph.add_edge(
                    FlowEdge(domain.node_id, comp_node.node_id, VIA_ADOPTS,
                             flow=False)
                )
    for gateway in all_gateways:
        builder.gateway(gateway)
    # Rules second pass: command targets must already be nodes.
    for name, domain_obj in deployment.world.domains.items():
        engine = builder.engine(domain_obj.engine.name)
        builder.rules(engine, domain_obj.engine.rules)
    builder.obligations(obligations)
    if authority is not None:
        builder.authority(authority)
    builder.derive_flows(all_gateways)
    return builder.graph


def compile(  # noqa: A001 - the plane's own namespace, repro.analysis.compile
    source,
    gateways: Sequence[Gateway] = (),
    obligations: Sequence[LegalObligation] = (),
    authority: Optional[PrivilegeAuthority] = None,
) -> FlowGraph:
    """Compile whatever policy source is given into a flow graph.

    Dispatches on shape: objects with a ``nodes`` list of specs compile
    declaratively; objects with a ``world`` compile live.  This is the
    analysis plane's front door — ``Deployment.analysis_graph()`` and
    the pre-deploy gate both come through here.
    """
    if hasattr(source, "world"):
        return compile_deployment(source, gateways, obligations, authority)
    if hasattr(source, "nodes") and not callable(source.nodes):
        return compile_spec(source, gateways, obligations, authority)
    raise AnalysisError(
        f"cannot compile {type(source).__name__}: expected a Deployment "
        "or DeploymentSpec"
    )
