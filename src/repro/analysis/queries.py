"""Reachability queries over a compiled :class:`FlowGraph`.

The SETools analogy made concrete: ``dta.py`` answers all-paths /
shortest-path questions over an SELinux domain-transition digraph;
:class:`FlowQuery` answers them over this system's admissible-flow
graph — pure-python BFS/DFS, no NetworkX.  Every query records an
:class:`AnalysisStats` (nodes visited, edges walked, paths found, wall
time) so benchmarks and the ``stats()["analysis"]`` rollup can account
for analysis work the same way the verify plane accounts for hashing.

Transitivity caveat (inherited from the old lattice analyser, now
re-homed here): may-flow composes only through entities that *store and
forward* data, so multi-hop results are the conservative upper bound on
where data could spread — exactly what a pre-deploy gate wants, and why
the static≡dynamic property test models store-and-forward republishers.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.graph import FlowEdge, FlowGraph, FlowNode, NodeKind

#: A path is the edge sequence taken, source to destination.
Path = Tuple[FlowEdge, ...]


@dataclass
class AnalysisStats:
    """Per-query work accounting.

    Attributes:
        query: which query ran (``can_flow``, ``all_paths``, ...).
        nodes_visited: distinct nodes the traversal expanded.
        edges_walked: edges examined (the real cost driver).
        paths_found: paths/targets the query returned.
        wall_s: wall-clock seconds.
    """

    query: str = ""
    nodes_visited: int = 0
    edges_walked: int = 0
    paths_found: int = 0
    wall_s: float = 0.0


class FlowQuery:
    """The query engine over one graph.

    Queries resolve endpoints through :meth:`FlowGraph.resolve` (bare
    names or ``kind:name`` ids) and traverse **flow** edges only —
    structural topology never conducts data.  The most recent query's
    accounting is on :attr:`last_stats`; :attr:`totals` accumulates
    across the engine's lifetime.
    """

    def __init__(self, graph: FlowGraph):
        self.graph = graph
        self.last_stats = AnalysisStats()
        self.totals = AnalysisStats(query="totals")
        #: Queries answered over this engine's lifetime.
        self.calls = 0

    def _finish(self, stats: AnalysisStats, started: float) -> AnalysisStats:
        stats.wall_s = time.perf_counter() - started
        self.calls += 1
        self.last_stats = stats
        self.totals.nodes_visited += stats.nodes_visited
        self.totals.edges_walked += stats.edges_walked
        self.totals.paths_found += stats.paths_found
        self.totals.wall_s += stats.wall_s
        return stats

    # -- reachability ------------------------------------------------------

    def reachable_set(self, src: str) -> Set[str]:
        """Every node id data from ``src`` could (transitively) reach."""
        started = time.perf_counter()
        stats = AnalysisStats(query="reachable_set")
        origin = self.graph.resolve(src)
        seen: Set[str] = set()
        frontier = deque([origin.node_id])
        while frontier:
            current = frontier.popleft()
            stats.nodes_visited += 1
            for edge in self.graph.out_edges(current):
                stats.edges_walked += 1
                if edge.dst not in seen and edge.dst != origin.node_id:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        stats.paths_found = len(seen)
        self._finish(stats, started)
        return seen

    def can_flow(self, src: str, dst: str) -> bool:
        """Whether data from ``src`` can ever reach ``dst`` (BFS)."""
        started = time.perf_counter()
        stats = AnalysisStats(query="can_flow")
        origin = self.graph.resolve(src)
        target = self.graph.resolve(dst)
        seen = {origin.node_id}
        frontier = deque([origin.node_id])
        found = False
        while frontier and not found:
            current = frontier.popleft()
            stats.nodes_visited += 1
            for edge in self.graph.out_edges(current):
                stats.edges_walked += 1
                if edge.dst == target.node_id:
                    found = True
                    break
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        stats.paths_found = 1 if found else 0
        self._finish(stats, started)
        return found

    def shortest_path(self, src: str, dst: str) -> Optional[List[FlowEdge]]:
        """A minimum-hop flow path ``src -> dst``, or ``None``."""
        started = time.perf_counter()
        stats = AnalysisStats(query="shortest_path")
        origin = self.graph.resolve(src)
        target = self.graph.resolve(dst)
        parents: Dict[str, FlowEdge] = {}
        seen = {origin.node_id}
        frontier = deque([origin.node_id])
        found = False
        while frontier and not found:
            current = frontier.popleft()
            stats.nodes_visited += 1
            for edge in self.graph.out_edges(current):
                stats.edges_walked += 1
                if edge.dst in seen:
                    continue
                seen.add(edge.dst)
                parents[edge.dst] = edge
                if edge.dst == target.node_id:
                    found = True
                    break
                frontier.append(edge.dst)
        if not found:
            self._finish(stats, started)
            return None
        path: List[FlowEdge] = []
        cursor = target.node_id
        while cursor != origin.node_id:
            edge = parents[cursor]
            path.append(edge)
            cursor = edge.src
        path.reverse()
        stats.paths_found = 1
        self._finish(stats, started)
        return path

    def all_paths(
        self, src: str, dst: str, max_hops: int = 6
    ) -> List[Path]:
        """Every simple flow path ``src -> dst`` of at most ``max_hops``
        edges (DFS; nodes never repeat within a path)."""
        started = time.perf_counter()
        stats = AnalysisStats(query="all_paths")
        origin = self.graph.resolve(src)
        target = self.graph.resolve(dst)
        paths: List[Path] = []

        def walk(current: str, on_path: Set[str], trail: List[FlowEdge]):
            stats.nodes_visited += 1
            if len(trail) >= max_hops:
                return
            for edge in self.graph.out_edges(current):
                stats.edges_walked += 1
                if edge.dst == target.node_id:
                    paths.append(tuple(trail + [edge]))
                    continue
                if edge.dst in on_path:
                    continue
                on_path.add(edge.dst)
                trail.append(edge)
                walk(edge.dst, on_path, trail)
                trail.pop()
                on_path.discard(edge.dst)

        walk(origin.node_id, {origin.node_id, target.node_id}, [])
        stats.paths_found = len(paths)
        self._finish(stats, started)
        return paths

    def declassifier_chains(
        self, src: str, dst: str, max_hops: int = 6
    ) -> List[List[str]]:
        """The gateway sequences that let ``src`` reach ``dst``.

        Each result is the ordered list of gateway names a path crosses;
        only paths crossing at least one gateway qualify — this is the
        "through which chain of declassifiers?" question, and the gate's
        evidence when it flags a forbidden flow reachable only via
        privileged crossings.
        """
        chains: List[List[str]] = []
        seen_chains: Set[Tuple[str, ...]] = set()
        for path in self.all_paths(src, dst, max_hops=max_hops):
            chain = [
                self.graph.resolve(edge.src).name
                for edge in path
                if edge.via.startswith("gateway:")
            ]
            if chain and tuple(chain) not in seen_chains:
                seen_chains.add(tuple(chain))
                chains.append(chain)
        self.last_stats.query = "declassifier_chains"
        return chains


# -- label-creep diagnostics (re-homed from repro.ifc.lattice) ---------------


@dataclass
class CreepReport:
    """Diagnostics for label creep across a compiled graph (§6 warns
    "building a system with increasing constraints can lead to
    situations of label creep").

    Attributes:
        max_secrecy_size: largest component secrecy label observed.
        mean_secrecy_size: average component secrecy label size.
        trapped: components that are pure flow sinks with non-empty
            secrecy (data can get in but never out without privilege).
        suggestion: human-readable advice.
    """

    max_secrecy_size: int
    mean_secrecy_size: float
    trapped: List[str] = field(default_factory=list)
    suggestion: str = ""


def analyse_creep(graph: FlowGraph) -> CreepReport:
    """Spot contexts drifted so high nothing can read from them.

    The heuristic (unchanged from the old lattice analyser): secrecy
    labels growing monotonically along chains plus a rising population
    of sink contexts indicates declassifiers should be provisioned.
    """
    components = graph.nodes(NodeKind.COMPONENT)
    sizes = [len(node.secrecy) for node in components]
    if not sizes:
        return CreepReport(0, 0.0, [], "no contexts registered")
    trapped = sorted(
        node.name
        for node in components
        if node.secrecy and not graph.out_edges(node.node_id)
    )
    mean = sum(sizes) / len(sizes)
    if trapped and mean > 2:
        suggestion = (
            "label creep detected: provision declassifiers for trapped "
            "contexts " + ", ".join(trapped)
        )
    elif trapped:
        suggestion = "some contexts are sinks; verify declassifiers exist"
    else:
        suggestion = "no creep detected"
    return CreepReport(max(sizes), mean, trapped, suggestion)
