"""The pre-deploy gate: assert over the graph before anything runs.

Runtime enforcement discovers a bad flow only when a message moves —
after the declassifier chain has already been exercised.  The gate asks
the compiled graph first: a :class:`Forbid` assertion fails verification
when the graph admits *any* path from source to sink (with the
admitting declassifier chain as evidence), a :class:`Require` assertion
fails when a flow the scenario depends on is not admitted.  Findings
are emitted as ``RecordKind.ANALYSIS`` audit records so the gate's
verdicts live in the same tamper-evident chain as the runtime decisions
they predict.

Fail-closed resolution: an assertion naming a node the graph does not
contain verdicts ``unresolved`` and counts as a violation for both
kinds — a typo in a Forbid must not silently pass the gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.graph import FlowGraph
from repro.analysis.queries import FlowQuery
from repro.audit.records import RecordKind
from repro.errors import AnalysisError

#: Gate verdict vocabulary (mirrors the federation matrix's style).
VERDICT_OK = "ok"
VERDICT_FORBIDDEN = "forbidden-flow"
VERDICT_MISSING = "missing-flow"
VERDICT_UNRESOLVED = "unresolved"


@dataclass(frozen=True)
class FlowAssertion:
    """Base: one ``(src, dst)`` claim about the admissible-flow graph."""

    src: str
    dst: str

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    def label(self) -> str:
        return f"{self.kind}:{self.src}->{self.dst}"


class Forbid(FlowAssertion):
    """The graph must admit **no** path ``src -> dst``."""


class Require(FlowAssertion):
    """The graph must admit **some** path ``src -> dst``."""


@dataclass
class Finding:
    """One assertion's outcome.

    Attributes:
        assertion: the checked assertion.
        verdict: one of the gate verdicts.
        violation: whether the verdict fails the gate.
        path: the admitting path as ``src -> dst via ...`` hop strings
            (Forbid violations only).
        chains: declassifier chains admitting the flow, when any.
        reason: human-readable account.
    """

    assertion: FlowAssertion
    verdict: str
    violation: bool
    path: List[str] = field(default_factory=list)
    chains: List[List[str]] = field(default_factory=list)
    reason: str = ""


@dataclass
class AnalysisReport:
    """The gate's result over one graph: findings + work accounting."""

    findings: List[Finding] = field(default_factory=list)
    graph_summary: Dict[str, int] = field(default_factory=dict)
    queries: int = 0
    wall_s: float = 0.0

    def ok(self) -> bool:
        return not any(f.violation for f in self.findings)

    def violations(self) -> List[Finding]:
        return [f for f in self.findings if f.violation]

    def rows(self) -> Dict[str, str]:
        """Per-assertion verdicts, keyed like the verify matrix rows."""
        return {f.assertion.label(): f.verdict for f in self.findings}

    def report(self) -> str:
        lines = [
            f"analysis gate: {len(self.findings)} assertion(s), "
            f"{len(self.violations())} violation(s)"
        ]
        for finding in self.findings:
            lines.append(
                f"  [{finding.verdict}] {finding.assertion.label()}"
                + (f" — {finding.reason}" if finding.reason else "")
            )
            for hop in finding.path:
                lines.append(f"      {hop}")
        return "\n".join(lines)


def assertions_from_obligations(obligations: Iterable) -> List[Forbid]:
    """Derive Forbid assertions from legal obligations' structured
    ``forbidden_flows`` (e.g. :func:`~repro.policy.legal.
    geo_fence_obligation`'s residency pairs)."""
    assertions: List[Forbid] = []
    for obligation in obligations:
        for src, dst in getattr(obligation, "forbidden_flows", ()):
            assertions.append(Forbid(src, dst))
    return assertions


def run_gate(
    graph: FlowGraph,
    assertions: Sequence[FlowAssertion],
    audit=None,
    actor: str = "analysis-gate",
) -> AnalysisReport:
    """Check every assertion against the graph.

    ``audit`` is any :class:`~repro.audit.sink.AuditSink` (a
    ``bind_source(spine, "analysis")`` emitter in deployments): each
    finding lands as one ``RecordKind.ANALYSIS`` record, violations
    carrying the admitting path so the evidence survives in the chain.
    """
    started = time.perf_counter()
    query = FlowQuery(graph)
    report = AnalysisReport(graph_summary=graph.summary())
    for assertion in assertions:
        if not isinstance(assertion, (Forbid, Require)):
            raise AnalysisError(
                f"unknown assertion type: {type(assertion).__name__}"
            )
        finding = _check(graph, query, assertion)
        report.findings.append(finding)
        if audit is not None:
            audit.append(
                RecordKind.ANALYSIS,
                actor=actor,
                subject=assertion.label(),
                detail={
                    "verdict": finding.verdict,
                    "violation": finding.violation,
                    "path": finding.path,
                    "chains": finding.chains,
                },
            )
    report.queries = query.calls
    report.wall_s = time.perf_counter() - started
    return report


def _check(
    graph: FlowGraph, query: FlowQuery, assertion: FlowAssertion
) -> Finding:
    for ref in (assertion.src, assertion.dst):
        if ref not in graph:
            return Finding(
                assertion=assertion,
                verdict=VERDICT_UNRESOLVED,
                violation=True,
                reason=f"unknown node {ref!r} (fail closed)",
            )
    path = query.shortest_path(assertion.src, assertion.dst)
    if isinstance(assertion, Forbid):
        if path is None:
            return Finding(assertion, VERDICT_OK, violation=False)
        chains = query.declassifier_chains(
            assertion.src, assertion.dst, max_hops=max(len(path), 4)
        )
        return Finding(
            assertion=assertion,
            verdict=VERDICT_FORBIDDEN,
            violation=True,
            path=[
                f"{edge.src} -> {edge.dst} via {edge.via}" for edge in path
            ],
            chains=chains,
            reason=(
                f"admitted in {len(path)} hop(s)"
                + (f" through gateway chain {'/'.join(chains[0])}"
                   if chains else "")
            ),
        )
    if path is not None:
        return Finding(
            assertion,
            VERDICT_OK,
            violation=False,
            path=[f"{edge.src} -> {edge.dst} via {edge.via}" for edge in path],
        )
    return Finding(
        assertion=assertion,
        verdict=VERDICT_MISSING,
        violation=True,
        reason="no admissible path; the scenario's required flow is dead",
    )
