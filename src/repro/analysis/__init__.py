"""The static information-flow analysis plane (``docs/analysis_plane.md``).

Compile declared policy — a deployment (live or spec), its gateways,
privilege grants, ECA rules and legal obligations — into a typed
:class:`FlowGraph`; answer reachability and declassifier-chain queries
over it; diff two graphs to see exactly which flows a policy change
admits; gate deploys on :class:`Forbid`/:class:`Require` assertions; and
pre-warm machine decision caches from the reachable pair set.

Public API::

    from repro.analysis import (
        FlowGraph, FlowNode, FlowEdge, FlowDiff, NodeKind,
        compile, compile_deployment, compile_spec,
        FlowQuery, AnalysisStats, CreepReport, analyse_creep,
        FlowAssertion, Forbid, Require, Finding, AnalysisReport,
        run_gate, assertions_from_obligations,
        PrewarmReport, reachable_pairs, prewarm_deployment,
    )

Construction discipline: only this package constructs ``FlowGraph``
objects (enforced by a lint test); everything else goes through
:func:`compile` or ``Deployment.analysis_graph()``.
"""

from repro.analysis.compiler import (
    compile,
    compile_deployment,
    compile_spec,
)
from repro.analysis.gate import (
    VERDICT_FORBIDDEN,
    VERDICT_MISSING,
    VERDICT_OK,
    VERDICT_UNRESOLVED,
    AnalysisReport,
    Finding,
    FlowAssertion,
    Forbid,
    Require,
    assertions_from_obligations,
    run_gate,
)
from repro.analysis.graph import (
    VIA_ADOPTS,
    VIA_CARRIES,
    VIA_DELEGATES,
    VIA_FLOW_RULE,
    VIA_HOSTS,
    VIA_OPERATES,
    VIA_PRIVILEGE,
    VIA_RUNS,
    FlowDiff,
    FlowEdge,
    FlowGraph,
    FlowNode,
    NodeKind,
)
from repro.analysis.prewarm import (
    PrewarmReport,
    prewarm_deployment,
    prewarm_shard,
    reachable_pairs,
)
from repro.analysis.queries import (
    AnalysisStats,
    CreepReport,
    FlowQuery,
    analyse_creep,
)

__all__ = [
    "AnalysisReport",
    "AnalysisStats",
    "CreepReport",
    "Finding",
    "FlowAssertion",
    "FlowDiff",
    "FlowEdge",
    "FlowGraph",
    "FlowNode",
    "FlowQuery",
    "Forbid",
    "NodeKind",
    "PrewarmReport",
    "Require",
    "VERDICT_FORBIDDEN",
    "VERDICT_MISSING",
    "VERDICT_OK",
    "VERDICT_UNRESOLVED",
    "VIA_ADOPTS",
    "VIA_CARRIES",
    "VIA_DELEGATES",
    "VIA_FLOW_RULE",
    "VIA_HOSTS",
    "VIA_OPERATES",
    "VIA_PRIVILEGE",
    "VIA_RUNS",
    "analyse_creep",
    "assertions_from_obligations",
    "compile",
    "compile_deployment",
    "compile_spec",
    "prewarm_deployment",
    "prewarm_shard",
    "reachable_pairs",
    "run_gate",
]
