"""Pre-warm decision caches from the reachable pair set.

Workers start cold: the first message over every distinct context pair
pays a full :func:`~repro.ifc.flow.flow_decision` miss in the machine's
:class:`~repro.ifc.decisions.DecisionCache`.  The compiled graph already
knows exactly which context pairs the deployment can exercise — the
direct admissible-flow edges between context-bearing nodes — so the
pre-warmer replays those pairs through each machine shard's cache before
traffic starts, turning first-contact misses into hits.

Honesty note (also in ``docs/analysis_plane.md``): pre-warming installs
decisions for the *statically admissible* direct pairs.  Runtime pairs
outside the compiled world (dynamic context changes, entities the graph
never saw) still miss, and denied pairs are only warmed when the graph
was compiled with the privilege/gateway information that names them —
the measured hit-rate delta in ``BENCH_analysis.json`` is the honest
number, not 100%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.graph import FlowGraph, FlowNode, NodeKind
from repro.analysis.graph import VIA_FLOW_RULE, VIA_PRIVILEGE
from repro.ifc.labels import SecurityContext


@dataclass
class PrewarmReport:
    """What one pre-warm pass installed.

    Attributes:
        pairs: distinct context pairs derived from the graph.
        installed: cache entries actually installed (misses the replay
            paid so traffic will not).
        already_warm: pairs that were cache hits during the replay.
        shards: per-hostname installed counts.
        wall_s: wall-clock seconds for the whole pass.
    """

    pairs: int = 0
    installed: int = 0
    already_warm: int = 0
    shards: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0


def _context(secrecy: Tuple[str, ...], integrity: Tuple[str, ...]) -> SecurityContext:
    return SecurityContext.of(secrecy=secrecy, integrity=integrity)


def reachable_pairs(
    graph: FlowGraph,
) -> List[Tuple[SecurityContext, SecurityContext]]:
    """The distinct ``(source, target)`` context pairs the deployment's
    direct admissible flows will ask the decision plane about.

    Pairs come from the graph's direct flow-rule and privilege edges
    between context-bearing nodes (components and gateways); the
    contexts are rebuilt from the nodes' qualified tag tuples, so the
    pairs intern into whatever vocabulary the warming process runs in.
    Gateway sources contribute their *output* context — that is the
    context their emissions carry.
    """
    bearing = {NodeKind.COMPONENT, NodeKind.GATEWAY}
    pairs: List[Tuple[SecurityContext, SecurityContext]] = []
    seen = set()
    for edge in graph.edges(flow_only=True):
        if edge.via != VIA_FLOW_RULE and edge.via != VIA_PRIVILEGE \
                and not edge.via.startswith("gateway:"):
            continue
        src = graph.resolve(edge.src)
        dst = graph.resolve(edge.dst)
        if src.kind not in bearing or dst.kind not in bearing:
            continue
        if src.kind is NodeKind.GATEWAY:
            src_ctx = _context(src.out_secrecy, src.out_integrity)
        else:
            src_ctx = _context(src.secrecy, src.integrity)
        dst_ctx = _context(dst.secrecy, dst.integrity)
        key = (
            src_ctx.secrecy.mask, src_ctx.integrity.mask,
            dst_ctx.secrecy.mask, dst_ctx.integrity.mask,
        )
        if key not in seen:
            seen.add(key)
            pairs.append((src_ctx, dst_ctx))
    return pairs


def prewarm_shard(shard, pairs) -> Tuple[int, int]:
    """Replay ``pairs`` through one :class:`~repro.ifc.decisions.
    DecisionShard`'s cache; returns ``(installed, already_warm)``.

    Installation goes through the cache's own :meth:`evaluate` path —
    the epoch/snapshot protocol applies, so pre-warming a live machine
    is exactly as safe as its first round of traffic would have been.
    """
    cache = shard.cache
    misses_before = cache.misses
    hits_before = cache.hits
    for src_ctx, dst_ctx in pairs:
        cache.evaluate(src_ctx, dst_ctx)
    return cache.misses - misses_before, cache.hits - hits_before


def prewarm_deployment(deployment, graph: FlowGraph) -> PrewarmReport:
    """Pre-warm every machine shard in a deployment from one graph."""
    started = time.perf_counter()
    pairs = reachable_pairs(graph)
    report = PrewarmReport(pairs=len(pairs))
    for handle in deployment.nodes():
        machine = handle.machine
        if machine is None:
            continue
        installed, warm = prewarm_shard(machine.shard, pairs)
        report.installed += installed
        report.already_warm += warm
        report.shards[machine.hostname] = installed
    report.wall_s = time.perf_counter() - started
    return report
