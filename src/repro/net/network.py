"""A simulated network: hosts, links, latency, loss, partitions.

The middleware's cross-machine substrate (§8.2.2) needs a transport.
This network is deliberately simple — named hosts, point-to-point links
with latency and loss probability, administrative partitions — but it is
the layer where "intermittently connected or mobile" behaviour
(Challenge 6) is injected for the distributed-audit experiments.

Coalescing transport (``docs/transport_plane.md``): a host may opt into
a per-``(source, destination, kind)`` *outbox* that collects datagrams
sent inside a configurable flight window into one scheduled
batch-delivery event — one heap push and one slotted callback per batch
instead of per datagram.  Per-datagram semantics are preserved exactly:
every send-time check (partition, link down, the per-datagram loss RNG
roll) runs at send time in send order, so the RNG sequence and the
``sent`` / ``dropped`` / ``blocked_partition`` counters are identical to
the uncoalesced path; delivery-time checks (offline host, detached
receiver) and the ``delivered_at`` stamp run per datagram inside the
batch flush.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.sim.events import Simulator

#: Handler invoked on datagram delivery at a host.
Receiver = Callable[["Datagram"], None]


@dataclass
class Datagram:
    """One unit of transfer between hosts.

    Attributes:
        source / destination: host names.
        payload: opaque application payload (typically a middleware
            message or control message).
        kind: coarse traffic class — ``"data"`` for application
            envelopes, ``"handshake"`` for wire-plane control traffic
            (tag-table negotiation, §8.2.2 substrate dealings),
            ``"gossip"`` for federation anti-entropy rounds.
        size: estimated serialised bytes of the payload (0 when the
            sender did not size it) — the federation benchmarks compare
            control-plane byte budgets, so control senders size what
            they ship.
        sent_at / delivered_at: simulated timestamps.
    """

    source: str
    destination: str
    payload: object
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    kind: str = "data"
    size: int = 0


@dataclass
class Link:
    """A directed link with latency and loss characteristics."""

    latency: float = 0.01
    loss_probability: float = 0.0
    up: bool = True


@dataclass
class Host:
    """A network endpoint that can receive datagrams."""

    name: str
    receiver: Optional[Receiver] = None
    online: bool = True


@dataclass
class NetworkStats:
    """Counters for observing network behaviour in benchmarks."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    blocked_partition: int = 0
    handshake_sent: int = 0
    gossip_sent: int = 0
    #: Estimated bytes *attempted* per traffic kind (only sized sends):
    #: credited at send time, before the partition/link-down/loss
    #: checks, so blocked and dropped traffic is included — what a
    #: sender's NIC counter would show.
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Estimated bytes actually *delivered* per traffic kind — the
    #: counter byte-budget benchmarks should assert on.
    bytes_delivered_by_kind: Dict[str, int] = field(default_factory=dict)

    def note_send(self, kind: str, size: int) -> None:
        if kind == "handshake":
            self.handshake_sent += 1
        elif kind == "gossip":
            self.gossip_sent += 1
        if size:
            self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size

    def note_delivered(self, kind: str, size: int) -> None:
        if size:
            self.bytes_delivered_by_kind[kind] = (
                self.bytes_delivered_by_kind.get(kind, 0) + size
            )


@dataclass
class TransportConfig:
    """Coalescing parameters for one sending host (or the default).

    Attributes:
        coalesce_window: how long (simulated seconds) an outbox stays
            open for joiners after its first datagram.  ``0.0`` still
            coalesces — every datagram sent to the same ``(source,
            destination, kind)`` within one simulated instant shares a
            batch — and delivers at exactly the uncoalesced time.
        max_batch: datagrams per batch before the outbox closes to
            joiners (the next send opens a fresh batch; the closed one
            still flushes at its own deadline, never early).
    """

    coalesce_window: float = 0.0
    max_batch: int = 64

    def __post_init__(self) -> None:
        if self.coalesce_window < 0:
            raise ValueError(
                f"coalesce_window must be >= 0, got {self.coalesce_window}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


@dataclass
class TransportStats:
    """Counters for the coalescing transport (``stats()["transport"]``)."""

    batches: int = 0
    batched_datagrams: int = 0
    batched_bytes: int = 0
    #: Flush causes: the batch's join window lapsed vs. it filled to
    #: ``max_batch`` first (it still flushes at its window deadline).
    flush_window: int = 0
    flush_size: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_datagrams / self.batches if self.batches else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "datagrams": self.batched_datagrams,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "bytes": self.batched_bytes,
            "flush_window": self.flush_window,
            "flush_size": self.flush_size,
        }


class _OutboxBatch:
    """One in-flight delivery batch: the slotted flush callback.

    Datagrams appended here already passed every send-time check; the
    flush replays the delivery-time protocol per datagram (offline /
    receiver checks, ``delivered_at`` stamp, delivered counters) in
    append order — a receiver knocking the destination offline mid-batch
    drops the remaining datagrams, exactly as per-datagram events would.
    """

    __slots__ = ("network", "key", "dest", "datagrams", "join_until", "closed")

    def __init__(
        self,
        network: "Network",
        key: Tuple[str, str, str],
        dest: Host,
        join_until: float,
    ):
        self.network = network
        self.key = key
        self.dest = dest
        self.datagrams: List[Datagram] = []
        self.join_until = join_until
        self.closed = False

    def __call__(self) -> None:
        network = self.network
        # Retire from the outbox table first: a receiver sending to the
        # same key mid-flush must open a fresh batch, never re-enter a
        # firing one.
        if network._outboxes.get(self.key) is self:
            del network._outboxes[self.key]
        tstats = network.transport_stats
        tstats.batches += 1
        tstats.batched_datagrams += len(self.datagrams)
        if self.closed:
            tstats.flush_size += 1
        else:
            tstats.flush_window += 1
        stats = network.stats
        dest = self.dest
        now = network.sim.now()
        for datagram in self.datagrams:
            if not dest.online or dest.receiver is None:
                stats.dropped += 1
                continue
            datagram.delivered_at = now
            stats.delivered += 1
            stats.note_delivered(datagram.kind, datagram.size)
            dest.receiver(datagram)


class Network:
    """The simulated network fabric.

    Hosts register receivers; :meth:`send` schedules delivery on the
    simulator according to the (source → destination) link.  Unlinked
    host pairs use a default link.  Partitions model federated domains
    losing connectivity.
    """

    def __init__(self, sim: Simulator, default_latency: float = 0.01):
        self.sim = sim
        self.default_latency = default_latency
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self.stats = NetworkStats()
        self.transport_stats = TransportStats()
        # Coalescing transport: per-sending-host config (plus an
        # optional default for every host), and the live outboxes —
        # (source, destination, kind) → open batch.
        self._transport_default: Optional[TransportConfig] = None
        self._transport_by_host: Dict[str, TransportConfig] = {}
        self._outboxes: Dict[Tuple[str, str, str], _OutboxBatch] = {}

    # -- topology -------------------------------------------------------------

    def add_host(self, name: str, receiver: Optional[Receiver] = None) -> Host:
        """Register a host; name must be unique."""
        if name in self._hosts:
            raise NetworkError(f"host already exists: {name}")
        host = Host(name, receiver)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host."""
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host: {name}") from None

    def set_receiver(self, name: str, receiver: Receiver) -> None:
        """Attach/replace the delivery callback of a host."""
        self.host(name).receiver = receiver

    def link(
        self,
        source: str,
        destination: str,
        latency: Optional[float] = None,
        loss_probability: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Configure the link between two hosts."""
        lat = self.default_latency if latency is None else latency
        self._links[(source, destination)] = Link(lat, loss_probability)
        if symmetric:
            self._links[(destination, source)] = Link(lat, loss_probability)

    def _link_for(self, source: str, destination: str) -> Link:
        return self._links.get((source, destination), Link(self.default_latency))

    # -- transport ----------------------------------------------------------

    def configure_transport(
        self,
        coalesce_window: float = 0.0,
        max_batch: int = 64,
        host: Optional[str] = None,
    ) -> TransportConfig:
        """Enable the coalescing outbox for ``host`` (or, with no host,
        for every sender without its own config).  Returns the config.

        See ``docs/transport_plane.md`` for the outbox/window/flush
        protocol and the exact parity guarantees.
        """
        config = TransportConfig(coalesce_window, max_batch)
        if host is None:
            self._transport_default = config
        else:
            self._transport_by_host[host] = config
        return config

    def transport_for(self, source: str) -> Optional[TransportConfig]:
        """The coalescing config governing ``source``'s sends, if any."""
        config = self._transport_by_host.get(source)
        return config if config is not None else self._transport_default

    # -- partitions ------------------------------------------------------------

    def partition(self, group_a: Set[str], group_b: Set[str]) -> None:
        """Sever connectivity between two host groups."""
        self._partitions.append((set(group_a), set(group_b)))

    def heal_partitions(self) -> None:
        """Restore full connectivity."""
        self._partitions.clear()

    def _partitioned(self, source: str, destination: str) -> bool:
        for a, b in self._partitions:
            if (source in a and destination in b) or (
                source in b and destination in a
            ):
                return True
        return False

    # -- transfer ----------------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        payload: object,
        kind: str = "data",
        size: int = 0,
    ) -> Datagram:
        """Send a datagram; delivery is scheduled on the simulator.

        Sending never raises for delivery-time conditions (loss, offline
        destination) — those surface as non-delivery, as in real networks.
        Unknown hosts raise immediately.
        """
        self.host(source)
        dest = self.host(destination)
        datagram = Datagram(
            source, destination, payload, sent_at=self.sim.now(), kind=kind,
            size=size,
        )
        self.stats.sent += 1
        self.stats.note_send(kind, size)

        if self._partitioned(source, destination):
            self.stats.blocked_partition += 1
            return datagram

        link = self._link_for(source, destination)
        if not link.up:
            self.stats.dropped += 1
            return datagram
        if link.loss_probability > 0 and self.sim.rng.random() < link.loss_probability:
            self.stats.dropped += 1
            return datagram

        transport = self._transport_by_host.get(source) or self._transport_default
        if transport is not None:
            self._enqueue(transport, source, destination, kind, dest, link, datagram)
            return datagram

        def deliver() -> None:
            if not dest.online or dest.receiver is None:
                self.stats.dropped += 1
                return
            datagram.delivered_at = self.sim.now()
            self.stats.delivered += 1
            self.stats.note_delivered(datagram.kind, datagram.size)
            dest.receiver(datagram)

        self.sim.schedule_in(link.latency, deliver, label=f"net:{source}->{destination}")
        return datagram

    def _enqueue(
        self,
        transport: TransportConfig,
        source: str,
        destination: str,
        kind: str,
        dest: Host,
        link: Link,
        datagram: Datagram,
    ) -> None:
        """Append a send-time-cleared datagram to its outbox batch.

        A batch opened at ``t0`` flushes at ``t0 + window + latency`` and
        admits joiners until ``t0 + window`` (so no datagram ever
        delivers *earlier* than its uncoalesced time, and at most
        ``window`` later).  Batches for one key flush in open order —
        deadlines are monotone in open time — so per-key FIFO holds.
        """
        key = (source, destination, kind)
        batch = self._outboxes.get(key)
        now = self.sim.now()
        if batch is None or batch.closed or now > batch.join_until:
            batch = _OutboxBatch(self, key, dest, now + transport.coalesce_window)
            self._outboxes[key] = batch
            self.sim.schedule_bucket(
                transport.coalesce_window + link.latency,
                batch,
                label=f"net:batch:{source}->{destination}",
            )
        batch.datagrams.append(datagram)
        self.transport_stats.batched_bytes += datagram.size
        if len(batch.datagrams) >= transport.max_batch:
            batch.closed = True
