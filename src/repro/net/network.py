"""A simulated network: hosts, links, latency, loss, partitions.

The middleware's cross-machine substrate (§8.2.2) needs a transport.
This network is deliberately simple — named hosts, point-to-point links
with latency and loss probability, administrative partitions — but it is
the layer where "intermittently connected or mobile" behaviour
(Challenge 6) is injected for the distributed-audit experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.sim.events import Simulator

#: Handler invoked on datagram delivery at a host.
Receiver = Callable[["Datagram"], None]


@dataclass
class Datagram:
    """One unit of transfer between hosts.

    Attributes:
        source / destination: host names.
        payload: opaque application payload (typically a middleware
            message or control message).
        kind: coarse traffic class — ``"data"`` for application
            envelopes, ``"handshake"`` for wire-plane control traffic
            (tag-table negotiation, §8.2.2 substrate dealings),
            ``"gossip"`` for federation anti-entropy rounds.
        size: estimated serialised bytes of the payload (0 when the
            sender did not size it) — the federation benchmarks compare
            control-plane byte budgets, so control senders size what
            they ship.
        sent_at / delivered_at: simulated timestamps.
    """

    source: str
    destination: str
    payload: object
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    kind: str = "data"
    size: int = 0


@dataclass
class Link:
    """A directed link with latency and loss characteristics."""

    latency: float = 0.01
    loss_probability: float = 0.0
    up: bool = True


@dataclass
class Host:
    """A network endpoint that can receive datagrams."""

    name: str
    receiver: Optional[Receiver] = None
    online: bool = True


@dataclass
class NetworkStats:
    """Counters for observing network behaviour in benchmarks."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    blocked_partition: int = 0
    handshake_sent: int = 0
    gossip_sent: int = 0
    #: Estimated bytes sent per traffic kind (only for sized sends).
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def note_send(self, kind: str, size: int) -> None:
        if kind == "handshake":
            self.handshake_sent += 1
        elif kind == "gossip":
            self.gossip_sent += 1
        if size:
            self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size


class Network:
    """The simulated network fabric.

    Hosts register receivers; :meth:`send` schedules delivery on the
    simulator according to the (source → destination) link.  Unlinked
    host pairs use a default link.  Partitions model federated domains
    losing connectivity.
    """

    def __init__(self, sim: Simulator, default_latency: float = 0.01):
        self.sim = sim
        self.default_latency = default_latency
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self.stats = NetworkStats()

    # -- topology -------------------------------------------------------------

    def add_host(self, name: str, receiver: Optional[Receiver] = None) -> Host:
        """Register a host; name must be unique."""
        if name in self._hosts:
            raise NetworkError(f"host already exists: {name}")
        host = Host(name, receiver)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host."""
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host: {name}") from None

    def set_receiver(self, name: str, receiver: Receiver) -> None:
        """Attach/replace the delivery callback of a host."""
        self.host(name).receiver = receiver

    def link(
        self,
        source: str,
        destination: str,
        latency: Optional[float] = None,
        loss_probability: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Configure the link between two hosts."""
        lat = self.default_latency if latency is None else latency
        self._links[(source, destination)] = Link(lat, loss_probability)
        if symmetric:
            self._links[(destination, source)] = Link(lat, loss_probability)

    def _link_for(self, source: str, destination: str) -> Link:
        return self._links.get((source, destination), Link(self.default_latency))

    # -- partitions ------------------------------------------------------------

    def partition(self, group_a: Set[str], group_b: Set[str]) -> None:
        """Sever connectivity between two host groups."""
        self._partitions.append((set(group_a), set(group_b)))

    def heal_partitions(self) -> None:
        """Restore full connectivity."""
        self._partitions.clear()

    def _partitioned(self, source: str, destination: str) -> bool:
        for a, b in self._partitions:
            if (source in a and destination in b) or (
                source in b and destination in a
            ):
                return True
        return False

    # -- transfer ----------------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        payload: object,
        kind: str = "data",
        size: int = 0,
    ) -> Datagram:
        """Send a datagram; delivery is scheduled on the simulator.

        Sending never raises for delivery-time conditions (loss, offline
        destination) — those surface as non-delivery, as in real networks.
        Unknown hosts raise immediately.
        """
        self.host(source)
        dest = self.host(destination)
        datagram = Datagram(
            source, destination, payload, sent_at=self.sim.now(), kind=kind,
            size=size,
        )
        self.stats.sent += 1
        self.stats.note_send(kind, size)

        if self._partitioned(source, destination):
            self.stats.blocked_partition += 1
            return datagram

        link = self._link_for(source, destination)
        if not link.up:
            self.stats.dropped += 1
            return datagram
        if link.loss_probability > 0 and self.sim.rng.random() < link.loss_probability:
            self.stats.dropped += 1
            return datagram

        def deliver() -> None:
            if not dest.online or dest.receiver is None:
                self.stats.dropped += 1
                return
            datagram.delivered_at = self.sim.now()
            self.stats.delivered += 1
            dest.receiver(datagram)

        self.sim.schedule_in(link.latency, deliver, label=f"net:{source}->{destination}")
        return datagram
