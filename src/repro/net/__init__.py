"""Simulated network substrate."""

from repro.net.network import (
    Datagram,
    Host,
    Link,
    Network,
    NetworkStats,
    TransportConfig,
    TransportStats,
)

__all__ = [
    "Datagram",
    "Host",
    "Link",
    "Network",
    "NetworkStats",
    "TransportConfig",
    "TransportStats",
]
