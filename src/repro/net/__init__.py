"""Simulated network substrate."""

from repro.net.network import (
    Datagram,
    Host,
    Link,
    Network,
    NetworkStats,
)

__all__ = ["Datagram", "Host", "Link", "Network", "NetworkStats"]
