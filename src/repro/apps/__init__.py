"""Domain applications built on the public API (the paper's scenarios)."""

from repro.apps.home_monitoring import (
    EMERGENCY_INTERVAL,
    EMERGENCY_THRESHOLD,
    NORMAL_INTERVAL,
    HomeMonitoringSystem,
    InputSanitiser,
    StatisticsGenerator,
    analyser_context,
    patient_context,
)
from repro.apps.smart_city import (
    DISTRICT_REPORT,
    District,
    FederatedSmartCity,
    Household,
    SmartCitySystem,
    censored_replay,
)
from repro.apps.assisted_living import RESIDENT, AssistedLivingSystem

__all__ = [
    "EMERGENCY_INTERVAL",
    "EMERGENCY_THRESHOLD",
    "NORMAL_INTERVAL",
    "HomeMonitoringSystem",
    "InputSanitiser",
    "StatisticsGenerator",
    "analyser_context",
    "patient_context",
    "DISTRICT_REPORT",
    "District",
    "FederatedSmartCity",
    "Household",
    "SmartCitySystem",
    "censored_replay",
    "RESIDENT",
    "AssistedLivingSystem",
]
