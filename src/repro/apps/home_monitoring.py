"""The medical home-monitoring system of §7 (Figs. 4-7).

Patients discharged from hospital are monitored at home.  Each patient
has a dedicated hospital-side Data Analyser; hospital-issued devices
(like Ann's) carry the ``hosp-dev`` integrity tag, third-party devices
(like Zeb's) carry ``<name>-dev`` and must pass through the Device Input
Sanitiser (an endorser, Fig. 5).  A Statistics Generator reads all
patients' standardised data, anonymises, and *declassifies* to
``S={medical, stats} I={anon}`` for the Ward Manager (Fig. 6).  On a
detected emergency, the hospital policy engine reconfigures the system:
alerting staff, wiring the analyser's alerts to the emergency doctor,
and actuating the home sensors to sample faster (Fig. 7).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.deploy import Deployment
from repro.ifc.labels import SecurityContext
from repro.ifc.privileges import PrivilegeSet
from repro.iot.device import DeviceClass, DeviceProfile
from repro.iot.domain import AdministrativeDomain
from repro.iot.things import ACTUATION, ALERT, READING, Actuator, App, Sensor, Thing
from repro.iot.workloads import PatientProfile
from repro.iot.world import IoTWorld
from repro.middleware.component import EndpointKind
from repro.middleware.message import Message
from repro.middleware.reconfig import Reconfigurator
from repro.policy.rules import (
    CommandAction,
    ContextAction,
    Event,
    NotifyAction,
    Rule,
)

#: Heart-rate threshold above which the analyser raises an emergency.
EMERGENCY_THRESHOLD = 140.0

#: Sampling intervals (seconds) in normal vs emergency operation (Fig. 7).
NORMAL_INTERVAL = 300.0
EMERGENCY_INTERVAL = 30.0


def patient_context(name: str, standard_device: bool) -> SecurityContext:
    """The security context of a patient's home sensors (Fig. 4)."""
    device_tag = "hosp-dev" if standard_device else f"{name}-dev"
    return SecurityContext.of(
        secrecy=["medical", name],
        integrity=[device_tag, "consent"],
    )


def analyser_context(name: str) -> SecurityContext:
    """The context of a patient's hospital Data Analyser (Fig. 4)."""
    return SecurityContext.of(
        secrecy=["medical", name],
        integrity=["hosp-dev", "consent"],
    )


class InputSanitiser(Thing):
    """The Device Input Sanitiser of Fig. 5 — an endorser component.

    It "sets up its security context to read [the patient's]
    non-standard data ... changes its security context to output data in
    standard format to the Data Analyser."  It therefore holds the
    privileges to swap ``<name>-dev`` for ``hosp-dev`` in its integrity
    label, and flips between its input and output contexts per message
    (standing channels on both sides suspend/resume accordingly).
    """

    def __init__(self, patient: str, domain: AdministrativeDomain):
        device_tag = f"{patient}-dev"
        input_ctx = SecurityContext.of(
            ["medical", patient], [device_tag, "consent"]
        )
        output_ctx = SecurityContext.of(
            ["medical", patient], ["hosp-dev", "consent"]
        )
        privileges = PrivilegeSet.of(
            add_integrity=["hosp-dev", device_tag],
            remove_integrity=["hosp-dev", device_tag],
        )
        super().__init__(
            f"{patient}-sanitiser",
            context=input_ctx,
            privileges=privileges,
            profile=DeviceProfile(DeviceClass.SERVER),
            owner=domain.name,
        )
        self.input_ctx = input_ctx
        self.output_ctx = output_ctx
        self._domain = domain
        self.sanitised = 0
        self.add_endpoint("in", EndpointKind.SINK, READING, handler=self._on_reading)
        self.add_endpoint("out", EndpointKind.SOURCE, READING)

    def _on_reading(self, component, endpoint, message: Message) -> None:
        # Convert to hospital-standard format (here: ensure unit is bpm).
        values = dict(message.values)
        values.setdefault("unit", "bpm")
        values["unit"] = values["unit"] or "bpm"
        self.sanitised += 1
        # Privileged context switch to the output domain (Fig. 5), then
        # emit; the outbound message inherits the endorsed context.
        self.change_context(self.output_ctx)
        outgoing = self.make_message("out", **values)
        self._domain.bus.route(self, "out", outgoing)
        self.change_context(self.input_ctx)


class StatisticsGenerator(Thing):
    """The Hospital Home-Monitoring Statistics Generator of Fig. 6.

    Labelled to read *all* patients' standardised data; on demand it
    anonymises (aggregate statistics over a window), then changes its
    security context to ``S={medical, stats} I={anon}`` before emitting —
    a declassification the audit log will show.  "The Ward Manager cannot
    read individual patient data."
    """

    def __init__(
        self,
        patients: List[str],
        domain: AdministrativeDomain,
        dp_epsilon: Optional[float] = None,
        dp_budget: float = 10.0,
        seed: int = 0,
    ):
        read_ctx = SecurityContext.of(
            ["medical", *patients], ["hosp-dev", "consent"]
        )
        publish_ctx = SecurityContext.of(["medical", "stats"], ["anon"])
        privileges = PrivilegeSet.of(
            add_secrecy=["stats", *patients],
            remove_secrecy=[*patients, "stats"],
            add_integrity=["anon", "hosp-dev", "consent"],
            remove_integrity=["hosp-dev", "consent", "anon"],
        )
        super().__init__(
            "stats-generator",
            context=read_ctx,
            privileges=privileges,
            profile=DeviceProfile(DeviceClass.SERVER),
            owner=domain.name,
        )
        self.read_ctx = read_ctx
        self.publish_ctx = publish_ctx
        self._domain = domain
        self._window: List[float] = []
        self.reports_published = 0
        # Optional §4 differential privacy: the "approved anonymisation
        # algorithm" becomes an ε-DP mean with a budget accountant.
        self._dp: Optional["PrivateAggregator"] = None
        if dp_epsilon is not None:
            from repro.crypto.privacy import PrivacyBudget, PrivateAggregator

            self._dp = PrivateAggregator(PrivacyBudget(dp_budget), seed=seed)
            self._dp_epsilon = dp_epsilon
        self.add_endpoint("in", EndpointKind.SINK, READING, handler=self._on_reading)
        self.add_endpoint("report", EndpointKind.SOURCE, READING)

    def _on_reading(self, component, endpoint, message: Message) -> None:
        value = message.values.get("value")
        if isinstance(value, float):
            self._window.append(value)

    def publish_statistics(self) -> Optional[float]:
        """Anonymise the window and publish the aggregate (Fig. 6).

        Returns the published mean, or None when the window is empty.
        The declassification (context change) happens *before* output —
        the ordering the audit log must demonstrate.
        """
        if not self._window:
            return None
        if self._dp is not None:
            mean_value = float(
                self._dp.mean(self._window, self._dp_epsilon,
                              lower=20.0, upper=250.0)
            )
        else:
            mean_value = float(statistics.fmean(self._window))
        self._window.clear()
        self.change_context(self.publish_ctx)
        report = self.make_message("report", value=mean_value, unit="bpm-mean")
        self._domain.bus.route(self, "report", report)
        self.reports_published += 1
        self.change_context(self.read_ctx)
        return mean_value


@dataclass
class PatientDeployment:
    """The per-patient pieces of the system."""

    profile: PatientProfile
    sensor: Sensor
    analyser: App
    sanitiser: Optional[InputSanitiser] = None


class HomeMonitoringSystem:
    """The full Fig. 7 deployment, built over an :class:`IoTWorld`.

    Construction wires: per-patient sensor → (sanitiser →) analyser
    channels, the statistics path into the ward manager, the emergency
    doctor standing by (unwired until an emergency), and the hospital
    policy engine's emergency rules.
    """

    def __init__(
        self,
        world: IoTWorld,
        patients: List[PatientProfile],
        sample_interval: float = NORMAL_INTERVAL,
        seed: int = 0,
        dp_epsilon: Optional[float] = None,
    ):
        # ``world`` may be a bare IoTWorld or a repro.deploy.Deployment.
        self.deploy = Deployment.of(world, name="home-monitoring")
        self.world = self.deploy.world
        self.hospital = self.deploy.domain("hospital")
        self.patients: Dict[str, PatientDeployment] = {}
        self.alerts: List[tuple] = []
        self.emergencies_detected: List[str] = []

        domain = self.hospital
        patient_names = [p.name for p in patients]

        # Ward management (Fig. 6): manager sees only declassified stats;
        # with dp_epsilon set, the anonymisation algorithm is ε-DP (§4).
        self.stats_generator = StatisticsGenerator(
            patient_names, domain, dp_epsilon=dp_epsilon, seed=seed
        )
        domain.adopt(self.stats_generator)
        self.ward_manager = App(
            "ward-manager",
            context=SecurityContext.of(["medical", "stats"], ["anon"]),
            owner="hospital",
        )
        domain.adopt(self.ward_manager)

        # Emergency doctor (Fig. 7): wired in only when policy fires.
        self.emergency_doctor = App(
            "emergency-doctor",
            message_type=ALERT,
            context=SecurityContext.of(["medical", *patient_names],
                                       ["hosp-dev", "consent"]),
            owner="hospital",
        )
        domain.adopt(self.emergency_doctor)

        for profile in patients:
            self._deploy_patient(profile, sample_interval, seed)

        # Statistics report channel to the ward manager (Fig. 6): wired
        # once, while the generator is in its publish context.
        self.stats_generator.change_context(self.stats_generator.publish_ctx)
        self.hospital.bus.connect(
            "hospital", self.stats_generator, "report", self.ward_manager, "in"
        )
        self.stats_generator.change_context(self.stats_generator.read_ctx)

        self._install_emergency_policy()
        domain.engine.add_notifier(lambda ch, msg: self.alerts.append((ch, msg)))

    # -- construction ----------------------------------------------------------------

    def _deploy_patient(
        self, profile: PatientProfile, interval: float, seed: int
    ) -> None:
        domain = self.hospital
        name = profile.name
        sensor = Sensor(
            f"{name}-sensor",
            source=profile.signal(seed),
            interval=interval,
            unit="bpm",
            context=patient_context(name, profile.device_standard),
            owner="hospital",
            profile=DeviceProfile(DeviceClass.CONSTRAINED, battery=None),
        )
        domain.adopt(sensor)

        analyser = App(
            f"{name}-analyser",
            context=analyser_context(name),
            owner="hospital",
            process=self._make_detector(name),
        )
        domain.adopt(analyser)

        sanitiser: Optional[InputSanitiser] = None
        if profile.device_standard:
            # Fig. 4: hospital-issued device flows directly.
            domain.bus.connect("hospital", sensor, "out", analyser, "in")
        else:
            # Fig. 5: non-standard device needs the endorsing sanitiser.
            sanitiser = InputSanitiser(name, domain)
            domain.adopt(sanitiser)
            domain.bus.connect("hospital", sensor, "out", sanitiser, "in")
            # Sanitiser output context accords with the analyser; connect
            # while it is in output context, then it returns to input.
            sanitiser.change_context(sanitiser.output_ctx)
            domain.bus.connect("hospital", sanitiser, "out", analyser, "in")
            sanitiser.change_context(sanitiser.input_ctx)

        # All standardised data also feeds the statistics generator.
        feed_source: Thing = sanitiser if sanitiser is not None else sensor
        feed_endpoint = "out"
        if sanitiser is not None:
            sanitiser.change_context(sanitiser.output_ctx)
        domain.bus.connect(
            "hospital", feed_source, feed_endpoint, self.stats_generator, "in"
        )
        if sanitiser is not None:
            sanitiser.change_context(sanitiser.input_ctx)

        # Analyser alert endpoint (wired to the doctor on emergency only).
        if "alert" not in analyser.endpoints:
            analyser.add_endpoint("alert", EndpointKind.SOURCE, ALERT)

        sensor.start(self.world.sim, domain.bus)
        self.patients[name] = PatientDeployment(profile, sensor, analyser, sanitiser)

    def _make_detector(self, patient: str):
        def detect(app: App, message: Message) -> None:
            value = message.values.get("value")
            if not isinstance(value, float) or value < EMERGENCY_THRESHOLD:
                return
            event = Event(
                "emergency",
                {
                    "patient": patient,
                    "heart_rate": value,
                    "severity": "critical",
                },
                source=app.name,
                timestamp=self.world.sim.now(),
            )
            self.emergencies_detected.append(patient)
            self.hospital.engine.handle_event(event)

        return detect

    def _install_emergency_policy(self) -> None:
        """The Fig. 7 red arrows, as ECA rules."""
        engine_name = self.hospital.engine.name

        def map_alert_to_doctor(event: Event, scope) -> object:
            patient = str(event.attributes["patient"])
            return Reconfigurator.map_command(
                engine_name,
                f"{patient}-analyser",
                "alert",
                "emergency-doctor",
                "in",
            )

        self.hospital.engine.add_rule(
            Rule.build(
                name="emergency-response",
                event_type="emergency",
                condition="heart_rate > 140",
                actions=[
                    NotifyAction(
                        "emergency-services",
                        "Emergency for {patient}: heart rate {heart_rate}",
                    ),
                    ContextAction("emergency.active", True),
                    CommandAction(builder=map_alert_to_doctor),
                ],
                priority=100,
                author="hospital",
            )
        )

    # -- emergency actuation (application side of the Fig. 7 loop) ----------------

    def actuate_emergency_sampling(self, patient: str) -> None:
        """Switch a patient's sensor to emergency sampling (Fig. 7:
        "the home sensors may be actuated to sample more frequently")."""
        deployment = self.patients[patient]
        deployment.sensor.set_interval(EMERGENCY_INTERVAL)

    def handle_alerts(self) -> None:
        """Apply actuations for every emergency alert raised so far."""
        for channel, text in self.alerts:
            if channel != "emergency-services":
                continue
            for name in self.patients:
                if name in text:
                    self.actuate_emergency_sampling(name)

    # -- reporting -----------------------------------------------------------------

    def run(self, hours: float) -> None:
        """Advance the world, processing sensor samples and policy."""
        self.deploy.run(hours=hours)
        self.handle_alerts()

    def summary(self) -> Dict[str, object]:
        """Operational summary for examples and tests."""
        return {
            "patients": len(self.patients),
            "samples": sum(d.sensor.samples_taken for d in self.patients.values()),
            "sanitised": sum(
                d.sanitiser.sanitised
                for d in self.patients.values()
                if d.sanitiser is not None
            ),
            "stats_reports": self.stats_generator.reports_published,
            "emergencies": len(self.emergencies_detected),
            "alerts": len(self.alerts),
            "flows": self.world.total_flows(),
        }
