"""A federated smart-city deployment (§1's motivating domain).

Demonstrates the cross-domain concerns the home-monitoring example does
not: multiple administrative domains (households, a transport authority,
a commercial analytics company), domain gateways mediating what leaves a
household (§2.1), EU-style geo-fencing (Challenge 1), and the
IFC-vs-AC-only contrast on long processing chains (Fig. 2): the
analytics company is *authorised* to receive aggregate data, yet IFC
blocks re-sharing of raw household data downstream while AC-only happily
leaks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.accesscontrol.pep import EnforcementMode
from repro.audit.compliance import ComplianceAuditor
from repro.ifc.labels import SecurityContext
from repro.ifc.privileges import PrivilegeSet
from repro.iot.device import DeviceClass, DeviceProfile
from repro.iot.domain import AdministrativeDomain, DomainGateway
from repro.iot.things import READING, App, Sensor, Thing
from repro.iot.workloads import energy_usage, traffic_flow
from repro.iot.world import IoTWorld
from repro.middleware.message import Message
from repro.policy.legal import geo_fence_obligation


@dataclass
class Household:
    """One home: energy sensor + gateway into the city domain."""

    name: str
    domain: AdministrativeDomain
    sensor: Sensor
    gateway: DomainGateway


class SmartCitySystem:
    """Households feed a city authority; an analytics firm sits outside.

    Data layout:
      * household readings: ``S={home, <name>} I={metered}``;
      * household gateways *aggregate* (strip the per-home tag is NOT
        possible without privilege — the gateway only forwards, so raw
        household data stays tagged);
      * the city aggregator holds all home tags and may compute city
        statistics; the analytics firm's context has no home tags, so
        raw data can never reach it — only the aggregator's declassified
        output could (and only via a privileged declassifier).
    """

    def __init__(
        self,
        world: IoTWorld,
        household_count: int = 5,
        sample_interval: float = 900.0,
        seed: int = 0,
    ):
        self.world = world
        self.city = world.create_domain("city")
        self.analytics = world.create_domain("analytics-corp")
        self.households: Dict[str, Household] = {}

        home_tags = [f"home-{i}" for i in range(household_count)]

        # City aggregator: labelled to read every household's data.
        self.aggregator = App(
            "city-aggregator",
            context=SecurityContext.of(["home", *home_tags], []),
            owner="city",
        )
        self.city.adopt(self.aggregator)

        # Analytics ingest: authorised (AC) but unlabelled (IFC).
        self.analytics_ingest = App(
            "analytics-ingest",
            context=SecurityContext.public(),
            owner="analytics-corp",
        )
        self.analytics.adopt(self.analytics_ingest)
        # The city grants the analytics firm connection rights (AC layer
        # says yes — the point of the F2 experiment).
        self.analytics_ingest.allow_controller("city")

        for i in range(household_count):
            self._build_household(i, sample_interval, seed)

    def _build_household(self, index: int, interval: float, seed: int) -> None:
        name = f"home-{index}"
        domain = self.world.create_domain(name)
        ctx = SecurityContext.of(["home", name], ["metered"])
        sensor = Sensor(
            f"{name}-meter",
            source=energy_usage(seed=seed + index),
            interval=interval,
            unit="kW",
            context=ctx,
            owner=name,
            profile=DeviceProfile(DeviceClass.CONSTRAINED),
        )
        domain.adopt(sensor)

        gateway = DomainGateway(
            f"{name}-gateway",
            inner=domain,
            outer=self.city,
            message_type=READING,
            context=ctx,
            owner=name,
        )
        domain.bus.connect(name, sensor, "out", gateway, "ingress")
        self.city.bus.connect("city", gateway, "egress", self.aggregator, "in")
        sensor.start(self.world.sim, domain.bus)
        self.households[name] = Household(name, domain, sensor, gateway)

    # -- the F2 experiment: leak attempt down the chain -------------------------

    def attempt_raw_leak(self) -> Dict[str, int]:
        """Try to wire the aggregator's raw feed to the analytics firm.

        Under AC_AND_IFC the channel either refuses establishment or
        every message is denied (aggregator carries home tags; ingest has
        none).  Under AC_ONLY the connection succeeds and data leaks —
        the paper's §4 criticism reproduced.  Returns delivery counts.
        """
        bus = self.city.bus
        # The analytics ingest must be visible on the city bus to wire it.
        if "analytics-ingest" not in bus.components:
            bus.register(self.analytics_ingest)
        before = len(self.analytics_ingest.received)
        try:
            bus.connect(
                "city", self.aggregator, "out", self.analytics_ingest, "in"
            )
        except Exception:
            return {"delivered": 0, "denied": 1}
        # Relay everything the aggregator has seen down the new channel.
        denied = 0
        for message in list(self.aggregator.received):
            relay = Message(
                type=message.type,
                values=dict(message.values),
                context=self.aggregator.context.creation_context(),
            )
            report = bus.route(self.aggregator, "out", relay)
            denied += report.denied
        return {
            "delivered": len(self.analytics_ingest.received) - before,
            "denied": denied,
        }

    def geo_fence_auditor(self) -> ComplianceAuditor:
        """Auditor asserting no household data reached the analytics firm."""
        auditor = ComplianceAuditor()
        obligation = geo_fence_obligation(
            data_sources={f"{name}-gateway" for name in self.households},
            forbidden_sinks={"analytics-ingest"},
            region="city",
        )
        for checker in obligation.checkers:
            auditor.register(checker)
        return auditor

    def run(self, hours: float) -> None:
        """Advance the simulated city."""
        self.world.run(hours=hours)
