"""A federated smart-city deployment (§1's motivating domain).

Demonstrates the cross-domain concerns the home-monitoring example does
not: multiple administrative domains (households, a transport authority,
a commercial analytics company), domain gateways mediating what leaves a
household (§2.1), EU-style geo-fencing (Challenge 1), and the
IFC-vs-AC-only contrast on long processing chains (Fig. 2): the
analytics company is *authorised* to receive aggregate data, yet IFC
blocks re-sharing of raw household data downstream while AC-only happily
leaks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.audit.compliance import ComplianceAuditor
from repro.audit.records import RecordKind
from repro.audit.spine import DEFAULT_SOURCE, AuditSpine
from repro.cloud.machine import Machine
from repro.deploy import Deployment
from repro.federation import MeshNode
from repro.ifc.labels import SecurityContext
from repro.iot.device import DeviceClass, DeviceProfile
from repro.iot.domain import AdministrativeDomain, DomainGateway
from repro.iot.things import READING, App, Sensor
from repro.iot.workloads import energy_usage, traffic_flow
from repro.iot.world import IoTWorld
from repro.middleware.message import Message, MessageType
from repro.middleware.substrate import MessagingSubstrate
from repro.policy.legal import geo_fence_obligation


@dataclass
class Household:
    """One home: energy sensor + gateway into the city domain."""

    name: str
    domain: AdministrativeDomain
    sensor: Sensor
    gateway: DomainGateway


class SmartCitySystem:
    """Households feed a city authority; an analytics firm sits outside.

    Data layout:
      * household readings: ``S={home, <name>} I={metered}``;
      * household gateways *aggregate* (strip the per-home tag is NOT
        possible without privilege — the gateway only forwards, so raw
        household data stays tagged);
      * the city aggregator holds all home tags and may compute city
        statistics; the analytics firm's context has no home tags, so
        raw data can never reach it — only the aggregator's declassified
        output could (and only via a privileged declassifier).
    """

    def __init__(
        self,
        world: IoTWorld,
        household_count: int = 5,
        sample_interval: float = 900.0,
        seed: int = 0,
    ):
        # ``world`` may be a bare IoTWorld or a repro.deploy.Deployment;
        # either way the façade owns the wiring from here.
        self.deploy = Deployment.of(world, name="smart-city")
        self.world = self.deploy.world
        self.city = self.deploy.domain("city")
        self.analytics = self.deploy.domain("analytics-corp")
        self.households: Dict[str, Household] = {}

        home_tags = [f"home-{i}" for i in range(household_count)]

        # City aggregator: labelled to read every household's data.
        self.aggregator = App(
            "city-aggregator",
            context=SecurityContext.of(["home", *home_tags], []),
            owner="city",
        )
        self.city.adopt(self.aggregator)

        # Analytics ingest: authorised (AC) but unlabelled (IFC).
        self.analytics_ingest = App(
            "analytics-ingest",
            context=SecurityContext.public(),
            owner="analytics-corp",
        )
        self.analytics.adopt(self.analytics_ingest)
        # The city grants the analytics firm connection rights (AC layer
        # says yes — the point of the F2 experiment).
        self.analytics_ingest.allow_controller("city")

        for i in range(household_count):
            self._build_household(i, sample_interval, seed)

    def _build_household(self, index: int, interval: float, seed: int) -> None:
        name = f"home-{index}"
        domain = self.deploy.domain(name)
        ctx = SecurityContext.of(["home", name], ["metered"])
        sensor = Sensor(
            f"{name}-meter",
            source=energy_usage(seed=seed + index),
            interval=interval,
            unit="kW",
            context=ctx,
            owner=name,
            profile=DeviceProfile(DeviceClass.CONSTRAINED),
        )
        domain.adopt(sensor)

        gateway = DomainGateway(
            f"{name}-gateway",
            inner=domain,
            outer=self.city,
            message_type=READING,
            context=ctx,
            owner=name,
        )
        domain.bus.connect(name, sensor, "out", gateway, "ingress")
        self.city.bus.connect("city", gateway, "egress", self.aggregator, "in")
        sensor.start(self.world.sim, domain.bus)
        self.households[name] = Household(name, domain, sensor, gateway)

    # -- the F2 experiment: leak attempt down the chain -------------------------

    def attempt_raw_leak(self) -> Dict[str, int]:
        """Try to wire the aggregator's raw feed to the analytics firm.

        Under AC_AND_IFC the channel either refuses establishment or
        every message is denied (aggregator carries home tags; ingest has
        none).  Under AC_ONLY the connection succeeds and data leaks —
        the paper's §4 criticism reproduced.  Returns delivery counts.
        """
        bus = self.city.bus
        # The analytics ingest must be visible on the city bus to wire it.
        if "analytics-ingest" not in bus.components:
            bus.register(self.analytics_ingest)
        before = len(self.analytics_ingest.received)
        try:
            bus.connect(
                "city", self.aggregator, "out", self.analytics_ingest, "in"
            )
        except Exception:
            return {"delivered": 0, "denied": 1}
        # Relay everything the aggregator has seen down the new channel.
        denied = 0
        for message in list(self.aggregator.received):
            relay = Message(
                type=message.type,
                values=dict(message.values),
                context=self.aggregator.context.creation_context(),
            )
            report = bus.route(self.aggregator, "out", relay)
            denied += report.denied
        return {
            "delivered": len(self.analytics_ingest.received) - before,
            "denied": denied,
        }

    def geo_fence_auditor(self) -> ComplianceAuditor:
        """Auditor asserting no household data reached the analytics firm."""
        auditor = ComplianceAuditor()
        obligation = geo_fence_obligation(
            data_sources={f"{name}-gateway" for name in self.households},
            forbidden_sinks={"analytics-ingest"},
            region="city",
        )
        for checker in obligation.checkers:
            auditor.register(checker)
        return auditor

    def run(self, hours: float) -> None:
        """Advance the simulated city."""
        self.deploy.run(hours=hours)


# -- the federated, multi-substrate city (docs/federation_plane.md) -------------


#: Cross-substrate report message: a district hub summarising its readings.
DISTRICT_REPORT = MessageType.simple("district-report", district=str, total=float)


@dataclass
class District:
    """One district: its own domain, machine, substrate and gateway."""

    name: str
    domain: AdministrativeDomain
    machine: Machine
    substrate: MessagingSubstrate
    node: MeshNode
    sensor: Sensor
    gateway: DomainGateway
    reporter: object  # the district hub's kernel process
    reports_sent: int = 0


class FederatedSmartCity:
    """N district authorities federate with a city hub — the paper's
    "federated domains of administration" at the substrate level.

    Each district runs its own machine (audit spine included) and
    messaging substrate; a :class:`~repro.federation.GossipMesh` spreads
    tag-table deltas transitively (no pairwise handshakes) and
    cross-pins every domain's audit-spine checkpoints, and a federation
    directory piggybacks vocabulary offers on discovery answers.
    District hubs periodically report their aggregate reading to the
    city hub over the substrate — masked envelopes once the mesh has
    converged.

    The whole federation is assembled through the
    :class:`~repro.deploy.Deployment` façade (``docs/deploy_api.md``):
    each hub is one fluent ``node(...).with_domain().with_mesh()
    .with_pinboard()`` line, districts' domains run spine-backed (their
    bus/policy/discovery audit shares the hub machine's tamper-evident
    chain), and ``verify_federation()`` is the deployment's verdict
    matrix.
    """

    def __init__(
        self,
        world: IoTWorld,
        district_count: int = 3,
        sample_interval: float = 600.0,
        report_interval: float = 1800.0,
        mesh_interval: Optional[float] = None,
        seed: int = 0,
        pin_retain_every: Optional[int] = None,
    ):
        # ``world`` may be a bare IoTWorld or a repro.deploy.Deployment.
        # The façade builds and cross-wires every per-node plane; this
        # class only describes the scenario.  ``mesh_interval=None``
        # defers to the deployment's cadence; an explicit value is
        # applied (and raises if the mesh already runs differently —
        # silently ignoring a requested cadence would be worse).
        self.deploy = Deployment.of(
            world, name="city",
            mesh_interval=mesh_interval if mesh_interval is not None else 60.0,
        )
        if (
            mesh_interval is not None
            and self.deploy.mesh_interval != mesh_interval
        ):
            self.deploy.configure_mesh(mesh_interval)
        self.world = self.deploy.world
        self.pin_retain_every = pin_retain_every

        city_node = self.deploy.node("city", hostname="city-hq")
        city_node.with_domain("city").with_mesh().with_discovery()
        self.city = city_node.domain
        self.city_machine = city_node.machine
        self.city_substrate = city_node.substrate
        self.city_node = city_node.mesh_node
        # The federation directory lives with the city but is mesh-aware:
        # a find() by a federated querier introduces it to the hosts that
        # serve the results (vocabulary offer piggybacked on discovery).
        self.directory = self.deploy.directory(city_node)

        self.collected: List[Message] = []
        self.collector = city_node.launch(
            "city-collector",
            SecurityContext.of(
                ["city", *[f"district-{i}" for i in range(district_count)]], []
            ),
            handler=lambda addr, msg: self.collected.append(msg),
        )

        self.districts: Dict[str, District] = {}
        for i in range(district_count):
            self._build_district(i, sample_interval, report_interval, seed)
        self.deploy.start()

    @property
    def mesh(self):
        """The deployment's gossip mesh."""
        return self.deploy.mesh

    def _build_district(
        self, index: int, interval: float, report_interval: float, seed: int
    ) -> None:
        name = f"district-{index}"
        sim = self.world.sim
        hub = self.deploy.node(name, hostname=f"{name}-hub")
        hub.with_domain(name).with_mesh().with_pinboard(
            retain_every=self.pin_retain_every
        )
        domain = hub.domain
        machine = hub.machine
        substrate = hub.substrate
        node = hub.mesh_node

        ctx = SecurityContext.of(["city", name], ["metered"])
        sensor = Sensor(
            f"{name}-meter",
            source=traffic_flow(seed=seed + index),
            interval=interval,
            unit="veh/h",
            context=ctx,
            owner=name,
            profile=DeviceProfile(DeviceClass.CONSTRAINED),
        )
        domain.adopt(sensor)

        gateway = DomainGateway(
            f"{name}-gateway",
            inner=domain,
            outer=self.city,
            message_type=READING,
            context=ctx,
            owner=name,
        )
        # The gateway joins the federation: its directory entry carries
        # the district hub's host, so discovering it introduces the
        # discoverer to this district's vocabulary.
        gateway.join_mesh(node, directory=self.directory)
        domain.bus.connect(name, sensor, "out", gateway, "ingress")
        sensor.start(sim, domain.bus)

        reporter = hub.launch(
            f"{name}-reporter", ctx, handler=lambda addr, msg: None
        )
        district = District(
            name, domain, machine, substrate, node, sensor, gateway, reporter
        )

        def report() -> None:
            total = float(gateway.forwarded)
            district.reports_sent += 1
            substrate.send(
                reporter,
                self.city_substrate,
                "city-collector",
                Message(
                    DISTRICT_REPORT,
                    {"district": name, "total": total},
                    context=ctx,
                ),
            )

        sim.schedule_every(report_interval, report, label=f"{name}:report")
        self.districts[name] = district

    # -- observation ------------------------------------------------------

    def run(self, hours: float) -> None:
        """Advance the simulated federation."""
        self.deploy.run(hours=hours)

    def spines(self) -> Dict[str, AuditSpine]:
        """Every federated domain's live audit spine, by host."""
        return self.deploy.spines()

    def verify_federation(self) -> Dict[str, Dict[str, str]]:
        """The deployment-wide verdict matrix: every member pinboard's
        verdict on every peer's spine, plus each member's local chain
        verification on the diagonal."""
        return self.deploy.verify()


def censored_replay(
    spine: AuditSpine, drop_kind: RecordKind = RecordKind.FLOW_DENIED
) -> AuditSpine:
    """What a tampering domain would present: a re-chained replay of its
    spine with every ``drop_kind`` record censored, padded to the same
    checkpoint-chain position so truncation alone does not give it away.

    The forgery is *locally* consistent — ``verify()`` passes, because
    every digest is freshly computed — which is exactly why intra-domain
    verification cannot catch it and cross-domain pinning
    (:class:`~repro.audit.distributed.FederationPinboard`) is needed:
    the digest at any position its peers pinned has changed.
    """
    target = spine.checkpoint_position
    forged = AuditSpine(name=spine.name, checkpoint_every=10**9)
    kept = [r for r in spine if r.kind != drop_kind]
    chunks = max(1, target)
    for index in range(chunks):
        lo = index * len(kept) // chunks
        hi = (index + 1) * len(kept) // chunks
        for record in kept[lo:hi]:
            forged.emit(
                DEFAULT_SOURCE,
                record.kind,
                record.actor,
                record.subject,
                record.detail,
                record.source_context,
                record.target_context,
            )
        if hi == lo:
            # Pad a fruitless stretch so this chunk still cuts a
            # checkpoint — the forger must match the pinned position.
            forged.emit(DEFAULT_SOURCE, RecordKind.CUSTOM, spine.name, "", {})
        forged.checkpoint()
    return forged
