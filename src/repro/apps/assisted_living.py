"""Assisted-living with break-glass emergency response (Concern 6, [81]).

"In an emergency, 'break-glass' policy overrides normal security
constraints, alerting emergency services and (say) a family member, and
replugging the sensor-data streams to make them available to the
emergency response team."  Also: "perhaps a nurse should be able to
access patients' data only when detected in the context of their homes"
— the ad hoc, location-conditional authority of Challenge 4.

This app builds a single resident's home with a fall sensor, a family
member, a visiting nurse with location-gated access, and an emergency
response team whose access exists only while ``emergency.active`` —
granted by break-glass reconfiguration and revoked on stand-down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.deploy import Deployment
from repro.ifc.labels import SecurityContext
from repro.ifc.privileges import PrivilegeSet
from repro.iot.device import DeviceClass, DeviceProfile
from repro.iot.domain import AdministrativeDomain
from repro.iot.things import ALERT, READING, App, Sensor, Thing
from repro.iot.workloads import vital_signs
from repro.iot.world import IoTWorld
from repro.middleware.component import EndpointKind
from repro.middleware.reconfig import CommandKind, ControlMessage, Reconfigurator
from repro.policy.rules import (
    CommandAction,
    ContextAction,
    Event,
    NotifyAction,
    Rule,
)

RESIDENT = "ada"


class AssistedLivingSystem:
    """One resident, one home domain, break-glass policy installed."""

    def __init__(self, world: IoTWorld, seed: int = 0):
        # ``world`` may be a bare IoTWorld or a repro.deploy.Deployment.
        self.deploy = Deployment.of(world, name="assisted-living")
        self.world = self.deploy.world
        self.home = self.deploy.domain("ada-home")
        domain = self.home

        self.resident_ctx = SecurityContext.of(
            ["personal", RESIDENT], ["home-dev", "consent"]
        )

        self.motion_sensor = Sensor(
            "ada-wearable",
            source=vital_signs(seed=seed, baseline=68.0),
            interval=120.0,
            unit="bpm",
            context=self.resident_ctx,
            owner=RESIDENT,
            profile=DeviceProfile(DeviceClass.CONSTRAINED, battery=10_000.0),
        )
        domain.adopt(self.motion_sensor, owner=RESIDENT)

        # The home hub analyses locally — data stays home by default.
        self.home_hub = App(
            "ada-hub",
            context=self.resident_ctx,
            owner=RESIDENT,
            process=self._detect_fall,
        )
        domain.adopt(self.home_hub, owner=RESIDENT)
        self.home_hub.add_endpoint("alert", EndpointKind.SOURCE, ALERT)
        domain.bus.connect(RESIDENT, self.motion_sensor, "out", self.home_hub, "in")

        # Family member: may receive alerts (not raw data).
        self.family = App(
            "family-member",
            message_type=ALERT,
            context=SecurityContext.of(["personal", RESIDENT],
                                       ["home-dev", "consent"]),
            owner="family",
        )
        domain.adopt(self.family, owner="family")
        self.family.allow_controller(domain.engine.name)

        # Emergency team: normally has NO access (public context would
        # fail IFC for Ada's data; no channels exist).
        self.emergency_team = App(
            "emergency-team",
            message_type=READING,
            context=SecurityContext.of(["personal", RESIDENT],
                                       ["home-dev", "consent"]),
            owner="ambulance-service",
        )
        domain.adopt(self.emergency_team, owner="ambulance-service")
        self.emergency_team.allow_controller(domain.engine.name)

        # Visiting nurse: ad hoc authority only while located in the home.
        self.nurse = App(
            "visiting-nurse",
            context=SecurityContext.of(["personal", RESIDENT],
                                       ["home-dev", "consent"]),
            owner="care-agency",
        )
        domain.adopt(self.nurse, owner="care-agency")
        domain.authority.grant_adhoc(
            "ada-wearable",
            "visiting-nurse",
            condition=lambda ctx: ctx.get("nurse.location") == "ada-home",
        )

        self.alerts: List[tuple] = []
        domain.engine.add_notifier(lambda ch, msg: self.alerts.append((ch, msg)))
        self._install_breakglass_policy()
        self.motion_sensor.start(world.sim, domain.bus)
        self.falls_detected = 0

    # -- detection --------------------------------------------------------------

    def _detect_fall(self, app: App, message) -> None:
        value = message.values.get("value")
        # A crude fall/collapse proxy: bradycardia in this synthetic feed.
        if isinstance(value, float) and value < 45.0:
            self.falls_detected += 1
            self.home.engine.handle_event(
                Event(
                    "fall-detected",
                    {"resident": RESIDENT, "reading": value},
                    source=app.name,
                    timestamp=self.world.sim.now(),
                )
            )

    def trigger_emergency(self, reading: float = 30.0) -> None:
        """Force an emergency event (tests and examples)."""
        self.home.engine.handle_event(
            Event(
                "fall-detected",
                {"resident": RESIDENT, "reading": reading},
                source="ada-hub",
                timestamp=self.world.sim.now(),
            )
        )

    # -- policy -----------------------------------------------------------------

    def _install_breakglass_policy(self) -> None:
        engine = self.home.engine
        engine_name = engine.name

        # The `not emergency.active` guard makes break-glass idempotent:
        # repeated fall detections during one emergency do not stack
        # duplicate reconfigurations.
        breakglass = Rule.build(
            name="break-glass",
            event_type="fall-detected",
            condition="reading < 45 and not emergency.active",
            priority=100,
            author=RESIDENT,
            actions=[
                NotifyAction("emergency-services",
                             "Fall detected for {resident}: {reading}"),
                NotifyAction("family", "Check on {resident}"),
                ContextAction("emergency.active", True),
                # Replug the sensor stream to the emergency team (the
                # break-glass override).
                CommandAction(
                    command=Reconfigurator.map_command(
                        engine_name,
                        "ada-wearable", "out",
                        "emergency-team", "in",
                    )
                ),
                # Wire alerts to the family member.
                CommandAction(
                    command=Reconfigurator.map_command(
                        engine_name,
                        "ada-hub", "alert",
                        "family-member", "in",
                    )
                ),
            ],
        )
        engine.add_rule(breakglass)

        stand_down = Rule.build(
            name="stand-down",
            event_type="emergency-resolved",
            priority=90,
            author=RESIDENT,
            actions=[
                ContextAction("emergency.active", False),
                CommandAction(
                    command=ControlMessage(
                        engine_name,
                        "ada-wearable",
                        CommandKind.UNMAP,
                        {"sink": "emergency-team"},
                    )
                ),
            ],
        )
        engine.add_rule(stand_down)

    def resolve_emergency(self) -> None:
        """Stand the emergency down, revoking the replugged streams."""
        self.home.engine.handle_event(
            Event("emergency-resolved", {"resident": RESIDENT},
                  source="ada-hub", timestamp=self.world.sim.now())
        )

    # -- nurse access (Challenge 4 ad hoc authority) --------------------------------

    def nurse_arrives(self) -> None:
        """Nurse enters the home; location context grants authority."""
        self.home.context.set("nurse.location", "ada-home", by="presence-sensor")

    def nurse_leaves(self) -> None:
        """Nurse departs; authority evaporates with the context."""
        self.home.context.set("nurse.location", "away", by="presence-sensor")

    def nurse_may_reconfigure(self) -> bool:
        """Whether the nurse currently holds authority over the wearable."""
        return self.home.authority.may_author_policy(
            "visiting-nurse", "ada-wearable", self.home.context.view()
        )

    # -- state inspection --------------------------------------------------------------

    def emergency_channels(self) -> int:
        """Active channels feeding the emergency team."""
        return len(
            [
                c
                for c in self.home.bus.channels_of(self.emergency_team)
                if c.active
            ]
        )
