"""Automatic chain composition with gateway interposition (§8.1, §10.2).

"We anticipate reconfigurations will be the means ... to enable
transparent and dynamic system chain management, for instance, to
automatically include various declassifiers/endorsers and associated
transformation operations to allow data to flow across IFC security
context domains."

:class:`ChainComposer` realises that: given a source and a sink whose
contexts the flow rule separates, it searches the registered *relays*
(sanitisers, anonymisers — components that ingest in one context and
emit in another) for a path, then issues the MAP reconfigurations to
wire the whole chain.  Composition is a first-class object
(:class:`Composition`) that can be torn down as a unit, and every
composition decision is auditable through the reconfigurator it uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DiscoveryError, FlowError
from repro.ifc.flow import can_flow
from repro.ifc.labels import SecurityContext
from repro.middleware.bus import MessageBus
from repro.middleware.channel import Channel
from repro.middleware.component import Component
from repro.middleware.reconfig import Reconfigurator


@dataclass(frozen=True)
class RelaySpec:
    """A relay component's composition contract.

    Attributes:
        component: the relay (e.g. an InputSanitiser-style thing).
        in_endpoint / out_endpoint: its sink and source endpoints.
        input_context: context in which it ingests.
        output_context: context in which it emits.
    """

    component: Component
    in_endpoint: str
    out_endpoint: str
    input_context: SecurityContext
    output_context: SecurityContext


@dataclass
class Composition:
    """One realised chain: the hops and the channels wiring them."""

    source: Component
    sink: Component
    relays: List[RelaySpec]
    channels: List[Channel] = field(default_factory=list)

    @property
    def hop_count(self) -> int:
        return len(self.relays) + 1

    @property
    def active(self) -> bool:
        return all(channel.alive for channel in self.channels)

    def teardown(self, reason: str = "composition dissolved") -> None:
        """Tear the whole chain down as a unit."""
        for channel in self.channels:
            channel.teardown(reason)


class ChainComposer:
    """Plans and wires legal chains through registered relays.

    Example::

        composer = ChainComposer(bus, reconfigurator)
        composer.register_relay(RelaySpec(sanitiser, "in", "out",
                                          zeb_ctx, hospital_ctx))
        composition = composer.compose("hospital", zeb_sensor, "out",
                                       analyser, "in")
    """

    def __init__(self, bus: MessageBus, reconfigurator: Reconfigurator):
        self.bus = bus
        self.reconfigurator = reconfigurator
        self._relays: List[RelaySpec] = []
        self.compositions: List[Composition] = []

    def register_relay(self, relay: RelaySpec) -> RelaySpec:
        """Advertise a relay for use in compositions."""
        if relay.component.name not in self.bus.components:
            raise DiscoveryError(
                f"relay {relay.component.name} is not registered on the bus"
            )
        self._relays.append(relay)
        return relay

    # -- planning -----------------------------------------------------------------

    def plan(
        self,
        source_context: SecurityContext,
        sink_context: SecurityContext,
        max_hops: int = 4,
    ) -> Optional[List[RelaySpec]]:
        """Find a relay sequence making source → sink legal.

        Returns ``[]`` when the direct flow is already legal, a relay
        list otherwise, or ``None`` when no chain of at most ``max_hops``
        relays exists.  Breadth-first, so the returned chain is minimal
        in hop count — fewer enforcement points means fewer places to
        get policy wrong (§5.1).
        """
        if can_flow(source_context, sink_context):
            return []
        seen = {source_context}
        queue: deque = deque([(source_context, [])])
        while queue:
            context, path = queue.popleft()
            if len(path) >= max_hops:
                continue
            for relay in self._relays:
                if relay in path:
                    continue
                if not can_flow(context, relay.input_context):
                    continue
                out = relay.output_context
                new_path = path + [relay]
                if can_flow(out, sink_context):
                    return new_path
                if out not in seen:
                    seen.add(out)
                    queue.append((out, new_path))
        return None

    # -- realisation ----------------------------------------------------------------

    def compose(
        self,
        initiator: str,
        source: Component,
        source_endpoint: str,
        sink: Component,
        sink_endpoint: str,
        max_hops: int = 4,
    ) -> Composition:
        """Plan and wire a chain from source to sink.

        Raises:
            FlowError: when no legal chain exists — the composer never
                weakens enforcement to make a composition work.
        """
        relays = self.plan(source.context, sink.context, max_hops)
        if relays is None:
            raise FlowError(
                source.name,
                sink.name,
                "no gateway chain can make this flow legal",
            )
        composition = Composition(source, sink, relays)
        hops: List[Tuple[Component, str, Component, str]] = []
        previous: Tuple[Component, str] = (source, source_endpoint)
        for relay in relays:
            hops.append(
                (previous[0], previous[1], relay.component, relay.in_endpoint)
            )
            previous = (relay.component, relay.out_endpoint)
        hops.append((previous[0], previous[1], sink, sink_endpoint))

        wired: List[Channel] = []
        try:
            for src, src_ep, dst, dst_ep in hops:
                # Relays may need to present their per-hop context for
                # establishment (ingest for the inbound hop, emit for the
                # outbound); components that flip contexts per message
                # (sanitisers) expose input/output contexts in the spec.
                channel = self._connect_hop(
                    initiator, src, src_ep, dst, dst_ep, relays
                )
                wired.append(channel)
        except Exception:
            for channel in wired:
                channel.teardown("composition failed")
            raise
        composition.channels = wired
        self.compositions.append(composition)
        return composition

    def _relay_for(self, component: Component, relays: Sequence[RelaySpec]) -> Optional[RelaySpec]:
        for relay in relays:
            if relay.component is component:
                return relay
        return None

    def _connect_hop(
        self,
        initiator: str,
        src: Component,
        src_ep: str,
        dst: Component,
        dst_ep: str,
        relays: Sequence[RelaySpec],
    ) -> Channel:
        src_relay = self._relay_for(src, relays)
        dst_relay = self._relay_for(dst, relays)
        # Temporarily align relay contexts with the hop being wired, via
        # each relay's own privileges (never bypassing enforcement).
        restore: List[Tuple[Component, SecurityContext]] = []
        try:
            if src_relay is not None and src.context != src_relay.output_context:
                restore.append((src, src.context))
                src.change_context(src_relay.output_context)
            if dst_relay is not None and dst.context != dst_relay.input_context:
                restore.append((dst, dst.context))
                dst.change_context(dst_relay.input_context)
            return self.bus.connect(initiator, src, src_ep, dst, dst_ep)
        finally:
            for component, context in reversed(restore):
                component.change_context(context)

    def dissolve_all(self, reason: str = "composer shutdown") -> int:
        """Tear down every composition this composer created."""
        count = 0
        for composition in self.compositions:
            if composition.active:
                composition.teardown(reason)
                count += 1
        return count
