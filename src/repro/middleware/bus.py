"""The message bus: component registry, channel management, delivery.

The bus is the middleware core: it registers components, establishes
channels (running the §8.2.2 two-stage AC + IFC check), routes messages
along channels with per-message IFC re-evaluation and message-level
quenching (Fig. 10), and audits everything.  An
:class:`~repro.accesscontrol.pep.EnforcementMode` switch provides the
AC-only baseline used throughout EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.accesscontrol.pep import EnforcementMode
from repro.audit.log import AuditLog
from repro.audit.records import RecordKind
from repro.audit.spine import bind_source
from repro.errors import AccessDenied, DiscoveryError, FlowError, SchemaError
from repro.ifc.decisions import DecisionPlane, DecisionShard
from repro.ifc.labels import SecurityContext
from repro.middleware.channel import Channel
from repro.middleware.component import Component, Endpoint, EndpointKind
from repro.middleware.message import Message

#: AC hook: decides whether ``initiator`` may connect source→sink.
#: Default policy is owner-or-controller based; richer deployments plug
#: in certificate/RBAC checks here.
ConnectAuthoriser = Callable[[str, Component, Component], bool]


def default_authoriser(initiator: str, source: Component, sink: Component) -> bool:
    """Allow a connection when the initiator controls either end, or owns
    both.  This is the SBUS-style peer AC regime in miniature."""
    return source.is_controller(initiator) or sink.is_controller(initiator)


@dataclass
class DeliveryReport:
    """What happened when a message was pushed through a channel fan-out."""

    sent: int = 0
    delivered: int = 0
    denied: int = 0
    quenched_attributes: int = 0


class _PlanEntry:
    """One fan-out target in a :class:`_BatchPlan`.

    Everything that is constant across a batch for a (message-context,
    sink-context) pair is hoisted here: the base flow decision and the
    set of schema attributes quenching would drop for this sink.  The
    entry stays valid only while ``sink.context`` is the identical
    object captured at plan time — the batch loop checks that per
    message and falls back to the unhoisted path when it moves.
    """

    __slots__ = ("channel", "sink", "sink_ep_name", "sink_ctx", "decision", "drop")

    def __init__(self, channel, decision, drop):
        self.channel = channel
        self.sink = channel.sink
        self.sink_ep_name = channel.sink_endpoint.name
        self.sink_ctx = channel.sink.context
        self.decision = decision  # None in AC_ONLY mode
        self.drop = drop  # frozenset of schema attrs quenched for this sink


class _BatchPlan:
    """Hoisted per-(sender, endpoint) state for one publish_batch run.

    ``risky`` is the set of schema attributes carrying extra secrecy —
    only those can ever be quenched or widen the effective context, so
    messages touching none of them take a label-math-free fast path.
    ``eff_cache`` memoizes effective contexts by the frozenset of risky
    attributes actually kept (they depend on the message context and the
    schema, not the sink).
    """

    __slots__ = ("version", "src_ctx", "msg_ctx", "msg_type", "risky",
                 "entries", "eff_cache")

    def __init__(self, version, src_ctx, msg_ctx, msg_type, risky, entries):
        self.version = version
        self.src_ctx = src_ctx
        self.msg_ctx = msg_ctx
        self.msg_type = msg_type
        self.risky = risky
        self.entries = entries
        self.eff_cache: Dict[frozenset, SecurityContext] = {}

    def effective(self, kept_risky: frozenset) -> SecurityContext:
        """Effective context of a delivery keeping ``kept_risky``."""
        ctx = self.eff_cache.get(kept_risky)
        if ctx is None:
            secrecy = self.msg_ctx.secrecy
            for name in kept_risky:
                secrecy = secrecy | self.msg_type.attribute_secrecy(name)
            ctx = SecurityContext(secrecy, self.msg_ctx.integrity)
            self.eff_cache[kept_risky] = ctx
        return ctx


class MessageBus:
    """The middleware bus for co-located (intra-domain) components.

    Cross-machine transfer composes this with
    :class:`repro.middleware.substrate.MessagingSubstrate`; the bus alone
    models one administrative domain's middleware instance.

    Example::

        bus = MessageBus(audit=log)
        bus.register(sensor)
        bus.register(analyser)
        bus.connect("hospital", sensor, "out", analyser, "in")
        bus.publish(sensor, "out", reading=38.2)
    """

    def __init__(
        self,
        audit: Optional[AuditLog] = None,
        mode: EnforcementMode = EnforcementMode.AC_AND_IFC,
        authoriser: ConnectAuthoriser = default_authoriser,
        clock: Optional[Callable[[], float]] = None,
        shard: Optional[DecisionShard] = None,
        audit_source: str = "bus",
    ):
        # Given an AuditSpine (or an emitter onto one), deliveries stage
        # records under the `audit_source` segment and chaining happens
        # off the delivery path; a plain AuditLog keeps synchronous
        # semantics.  Worker pools give each per-worker bus its own
        # source ("bus.w0", "bus.w1", ...) so emission stays
        # contention-free — one writer per staging ring.
        self.audit = bind_source(audit, audit_source)
        self.mode = mode
        self.authoriser = authoriser
        self._clock = clock or (lambda: 0.0)
        self.components: Dict[str, Component] = {}
        self.channels: List[Channel] = []
        self.stats = DeliveryReport()
        # Torn-down channels are compacted out of `channels` so route()
        # never scans dead entries; removal is deferred while route() is
        # iterating (handlers may tear down channels mid-delivery).
        self._route_depth = 0
        self._compact_pending = False
        # Bumped whenever the channel list changes membership; batch
        # fan-out plans pin the version they were built against and
        # rebuild when it moves (a handler connecting mid-batch must see
        # its new channel serve the rest of the batch).
        self._channels_version = 0
        #: The bus-wide decision plane: every IFC evaluation this bus (and
        #: its channels) performs is memoized and audited through here.
        #: ``shard`` shares a machine's decision shard across bus workers
        #: (see DecisionPlaneRouter); by default the bus gets its own cache.
        self.plane = DecisionPlane(
            audit=self.audit,
            cache=shard.context_cache if shard is not None else None,
        )

    # -- registry -----------------------------------------------------------------

    def register(self, component: Component) -> Component:
        """Add a component to the bus."""
        if component.name in self.components:
            raise DiscoveryError(f"component already registered: {component.name}")
        self.components[component.name] = component
        return component

    def deregister(self, component: Component) -> None:
        """Remove a component, tearing down its channels."""
        self.components.pop(component.name, None)
        for channel in self.channels_of(component):
            channel.teardown(f"{component.name} deregistered")

    def component(self, name: str) -> Component:
        """Look up a registered component."""
        try:
            return self.components[name]
        except KeyError:
            raise DiscoveryError(f"unknown component: {name}") from None

    def channels_of(self, component: Component) -> List[Channel]:
        """All live (active or suspended) channels touching a component."""
        return [
            c
            for c in self.channels
            if c.alive and (c.source is component or c.sink is component)
        ]

    # -- channel establishment -------------------------------------------------------

    def connect(
        self,
        initiator: str,
        source: Component,
        source_endpoint: str,
        sink: Component,
        sink_endpoint: str,
    ) -> Channel:
        """Establish a channel source:endpoint → sink:endpoint.

        Runs, in order (§8.2.2): endpoint type compatibility, the AC
        regime (via the pluggable authoriser), then the IFC flow rule
        over the two components' security contexts.  All outcomes are
        audited.

        Raises:
            SchemaError: incompatible endpoints.
            AccessDenied: the AC regime refused the initiator.
            FlowError: the components' tags do not accord.
        """
        src_ep = source.endpoint(source_endpoint)
        dst_ep = sink.endpoint(sink_endpoint)
        if not dst_ep.accepts(src_ep):
            raise SchemaError(
                f"endpoint mismatch: {source.name}:{source_endpoint} "
                f"({src_ep.kind.value}/{src_ep.message_type.name}) cannot feed "
                f"{sink.name}:{sink_endpoint} "
                f"({dst_ep.kind.value}/{dst_ep.message_type.name})"
            )

        if self.mode in (EnforcementMode.AC_ONLY, EnforcementMode.AC_AND_IFC):
            if not self.authoriser(initiator, source, sink):
                if self.audit is not None:
                    self.audit.append(
                        RecordKind.ACCESS_DENIED,
                        initiator,
                        f"{source.name}->{sink.name}",
                        {"reason": "connect not authorised"},
                    )
                raise AccessDenied(
                    f"{initiator} may not connect {source.name} to {sink.name}"
                )

        if self.mode in (EnforcementMode.IFC_ONLY, EnforcementMode.AC_AND_IFC):
            decision = self.plane.evaluate(source.context, sink.context)
            if not decision.allowed:
                self.plane.audit_denied(
                    source.name, sink.name, decision.reason,
                    source.context, sink.context,
                )
                raise FlowError(source.name, sink.name, decision.reason)

        channel = Channel(
            source, src_ep, sink, dst_ep, audit=self.audit, plane=self.plane
        )
        channel.on_teardown.append(self._channel_torn_down)
        self.channels.append(channel)
        self._channels_version += 1
        if self.audit is not None:
            self.audit.append(
                RecordKind.CHANNEL_ESTABLISHED,
                initiator,
                f"{source.name}->{sink.name}",
                {
                    "channel": channel.channel_id,
                    "type": src_ep.message_type.name,
                },
                source_context=source.context,
                target_context=sink.context,
            )
        return channel

    def disconnect(self, channel: Channel, reason: str = "requested") -> None:
        """Tear down a channel."""
        channel.teardown(reason)

    def _channel_torn_down(self, channel: Channel, reason: str) -> None:
        """Teardown hook: drop the channel from the scan list.

        Mid-route teardowns (a handler disconnecting, a context change
        collapsing a channel) must not mutate the list being iterated —
        those compact once the outermost route() finishes instead, so a
        long-running bus never accumulates dead channels either way.
        """
        self._channels_version += 1
        if self._route_depth:
            self._compact_pending = True
            return
        try:
            self.channels.remove(channel)
        except ValueError:
            pass

    # -- delivery ---------------------------------------------------------------------

    def publish(self, source: Component, endpoint_name: str, **values) -> DeliveryReport:
        """Emit a message from a source endpoint along all its channels.

        Per-message enforcement (the channel-establishment check is
        necessary but not sufficient — contexts and message-level tags
        vary per message): the message's *effective* context must flow to
        each receiver; otherwise attribute quenching is attempted, and if
        the base context itself cannot flow, delivery is denied and
        audited.
        """
        message = source.make_message(endpoint_name, **values)
        message.sent_at = self._clock()
        return self.route(source, endpoint_name, message)

    def publish_batch(
        self, source: Component, endpoint_name: str, batch: List[Dict]
    ) -> DeliveryReport:
        """Publish many messages from one endpoint, amortising the per-
        message costs: flow decisions for repeated (message, sink)
        context pairs hit the decision cache, and audit appends are
        chain-hashed in one chunk at the end (see ``AuditLog.flush``).

        Beyond audit batching, the per-message fixed costs are hoisted
        into a :class:`_BatchPlan` built once per (sender, sink-set):
        the creation context, the base flow decision per sink, and the
        per-sink quench set are computed once and reused for every
        message whose contexts are unchanged.  Handlers may still
        suspend, resume, connect or tear down channels (or relabel
        components, or advance the clock) mid-batch — the loop checks
        ``channel.active`` and context identity per delivery and the
        channel-list version per message, rebuilding the plan or falling
        back to the unhoisted path, so batching never changes which
        messages handlers see or how messages are stamped.

        ``batch`` is a list of attribute-value mappings, one per message,
        as would be passed to :meth:`publish` as keyword arguments.
        Returns one aggregated :class:`DeliveryReport`.
        """
        report = DeliveryReport()
        src_ep = source.endpoint(endpoint_name)
        plan = self._batch_plan(source, src_ep)
        clock = self._clock
        self._route_depth += 1
        try:
            for values in batch:
                if (
                    plan.version != self._channels_version
                    or source.context is not plan.src_ctx
                ):
                    plan = self._batch_plan(source, src_ep)
                # Inline make_message with the hoisted creation context;
                # Message.__post_init__ still validates every payload.
                message = Message(
                    type=plan.msg_type, values=values, context=plan.msg_ctx
                )
                message.sent_at = clock()
                sub = DeliveryReport()
                for entry in plan.entries:
                    channel = entry.channel
                    if not channel.active:
                        continue
                    sub.sent += 1
                    if entry.sink.context is not entry.sink_ctx:
                        # Sink relabelled mid-batch: this entry's hoisted
                        # decision is stale — take the per-message path.
                        self._deliver_on(channel, message, sub)
                        continue
                    self._deliver_planned(plan, entry, message, sub)
                self._accumulate(sub)
                report.sent += sub.sent
                report.delivered += sub.delivered
                report.denied += sub.denied
                report.quenched_attributes += sub.quenched_attributes
        finally:
            self._route_depth -= 1
            if not self._route_depth and self._compact_pending:
                self._compact_pending = False
                self.channels = [c for c in self.channels if c.alive]
        self.plane.flush()
        return report

    def _batch_plan(self, source: Component, src_ep: Endpoint) -> _BatchPlan:
        """Build the hoisted fan-out plan for a batch from ``src_ep``.

        Captures the channel-list version and the source context object
        so the batch loop can detect staleness by identity, never by
        (costly) label comparison.
        """
        src_ctx = source.context
        msg_ctx = src_ctx.creation_context()
        msg_type = src_ep.message_type
        risky = frozenset(
            spec.name
            for spec in msg_type.attributes.values()
            if spec.extra_secrecy
        )
        evaluate = self.plane.evaluate
        ac_only = self.mode == EnforcementMode.AC_ONLY
        entries = []
        for channel in self.channels:
            if not channel.alive:
                continue
            if channel.source is not source or channel.source_endpoint is not src_ep:
                continue
            sink_ctx = channel.sink.context
            decision = None if ac_only else evaluate(msg_ctx, sink_ctx)
            drop = frozenset(
                name
                for name in risky
                if not (
                    msg_ctx.secrecy | msg_type.attribute_secrecy(name)
                    <= sink_ctx.secrecy
                )
            )
            entries.append(_PlanEntry(channel, decision, drop))
        return _BatchPlan(
            self._channels_version, src_ctx, msg_ctx, msg_type, risky, entries
        )

    def _deliver_planned(
        self,
        plan: _BatchPlan,
        entry: _PlanEntry,
        message: Message,
        report: DeliveryReport,
    ) -> None:
        """The hoisted twin of :meth:`_deliver_on`: identical decisions,
        quenching and audit records, with the per-message label algebra
        replaced by plan lookups."""
        channel = entry.channel
        sink = entry.sink
        if entry.decision is None:  # AC_ONLY
            channel.messages_carried += 1
            self.plane.audit_allowed(
                channel.source.name, sink.name,
                message.context, entry.sink_ctx,
                {"msg_id": message.msg_id, "mode": "ac-only"},
            )
            sink.deliver(entry.sink_ep_name, message)
            report.delivered += 1
            return

        if not entry.decision.allowed:
            report.denied += 1
            self.plane.audit_denied(
                channel.source.name,
                sink.name,
                entry.decision.reason,
                message.context,
                entry.sink_ctx,
            )
            return

        outgoing = message
        dropped: List[str] = []
        kept_risky: frozenset = plan.risky
        if plan.risky:
            present_risky = plan.risky.intersection(message.values)
            if present_risky:
                dropped = sorted(present_risky & entry.drop)
                kept_risky = present_risky - entry.drop
            else:
                kept_risky = present_risky
        if dropped:
            kept = {
                k: v for k, v in message.values.items() if k not in entry.drop
            }
            outgoing = Message.__new__(Message)
            outgoing.type = message.type
            outgoing.values = kept
            outgoing.context = message.context
            outgoing.msg_id = message.msg_id
            outgoing.sent_at = message.sent_at
            report.quenched_attributes += len(dropped)
        if self.plane.audit is not None:
            detail = {"msg_id": message.msg_id, "type": message.type.name}
            if dropped:
                detail["quenched"] = dropped
            effective = (
                plan.effective(kept_risky) if kept_risky else message.context
            )
            self.plane.audit_allowed(
                channel.source.name, sink.name,
                effective, entry.sink_ctx, detail,
            )
        channel.messages_carried += 1
        sink.deliver(entry.sink_ep_name, outgoing)
        report.delivered += 1

    def route(
        self, source: Component, endpoint_name: str, message: Message
    ) -> DeliveryReport:
        """Route a pre-built message (used by gateways re-emitting)."""
        report = DeliveryReport()
        src_ep = source.endpoint(endpoint_name)
        self._route_depth += 1
        try:
            for channel in self.channels:
                if not channel.active:
                    continue
                if channel.source is not source or channel.source_endpoint is not src_ep:
                    continue
                report.sent += 1
                self._deliver_on(channel, message, report)
        finally:
            self._route_depth -= 1
            if not self._route_depth and self._compact_pending:
                self._compact_pending = False
                self.channels = [c for c in self.channels if c.alive]
        self._accumulate(report)
        return report

    def _accumulate(self, report: DeliveryReport) -> None:
        self.stats.sent += report.sent
        self.stats.delivered += report.delivered
        self.stats.denied += report.denied
        self.stats.quenched_attributes += report.quenched_attributes

    def _deliver_on(
        self, channel: Channel, message: Message, report: DeliveryReport
    ) -> None:
        sink = channel.sink
        if self.mode == EnforcementMode.AC_ONLY:
            # The paper's baseline: nothing re-checked after the PEP.
            # Deliveries are still logged (message-level audit needs no
            # IFC) so compliance tooling can expose what leaked.
            channel.messages_carried += 1
            self.plane.audit_allowed(
                channel.source.name, sink.name,
                message.context, sink.context,
                {"msg_id": message.msg_id, "mode": "ac-only"},
            )
            sink.deliver(channel.sink_endpoint.name, message)
            report.delivered += 1
            return

        base = self.plane.evaluate(message.context, sink.context)
        if not base.allowed:
            report.denied += 1
            self.plane.audit_denied(
                channel.source.name,
                sink.name,
                base.reason,
                message.context,
                sink.context,
            )
            return

        outgoing = message
        dropped = message.dropped_attributes(sink.context)
        if dropped:
            outgoing = message.quenched_for(sink.context)
            report.quenched_attributes += len(dropped)
        if self.plane.audit is not None:
            detail = {"msg_id": message.msg_id, "type": message.type.name}
            if dropped:
                detail["quenched"] = dropped
            # Audit the effective context of what was actually delivered:
            # base context plus the extra secrecy of the attributes the
            # receiver really got (quenched ones excluded) — the quenched
            # case is exactly when the trail must show the reduced view.
            self.plane.audit_allowed(
                channel.source.name, sink.name,
                outgoing.effective_context(),
                sink.context, detail,
            )
        channel.messages_carried += 1
        sink.deliver(channel.sink_endpoint.name, outgoing)
        report.delivered += 1
