"""The message bus: component registry, channel management, delivery.

The bus is the middleware core: it registers components, establishes
channels (running the §8.2.2 two-stage AC + IFC check), routes messages
along channels with per-message IFC re-evaluation and message-level
quenching (Fig. 10), and audits everything.  An
:class:`~repro.accesscontrol.pep.EnforcementMode` switch provides the
AC-only baseline used throughout EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.accesscontrol.pep import EnforcementMode
from repro.audit.log import AuditLog
from repro.audit.records import RecordKind
from repro.audit.spine import bind_source
from repro.errors import AccessDenied, DiscoveryError, FlowError, SchemaError
from repro.ifc.decisions import DecisionPlane, DecisionShard
from repro.ifc.labels import SecurityContext
from repro.middleware.channel import Channel
from repro.middleware.component import Component, Endpoint, EndpointKind
from repro.middleware.message import Message

#: AC hook: decides whether ``initiator`` may connect source→sink.
#: Default policy is owner-or-controller based; richer deployments plug
#: in certificate/RBAC checks here.
ConnectAuthoriser = Callable[[str, Component, Component], bool]


def default_authoriser(initiator: str, source: Component, sink: Component) -> bool:
    """Allow a connection when the initiator controls either end, or owns
    both.  This is the SBUS-style peer AC regime in miniature."""
    return source.is_controller(initiator) or sink.is_controller(initiator)


@dataclass
class DeliveryReport:
    """What happened when a message was pushed through a channel fan-out."""

    sent: int = 0
    delivered: int = 0
    denied: int = 0
    quenched_attributes: int = 0


class MessageBus:
    """The middleware bus for co-located (intra-domain) components.

    Cross-machine transfer composes this with
    :class:`repro.middleware.substrate.MessagingSubstrate`; the bus alone
    models one administrative domain's middleware instance.

    Example::

        bus = MessageBus(audit=log)
        bus.register(sensor)
        bus.register(analyser)
        bus.connect("hospital", sensor, "out", analyser, "in")
        bus.publish(sensor, "out", reading=38.2)
    """

    def __init__(
        self,
        audit: Optional[AuditLog] = None,
        mode: EnforcementMode = EnforcementMode.AC_AND_IFC,
        authoriser: ConnectAuthoriser = default_authoriser,
        clock: Optional[Callable[[], float]] = None,
        shard: Optional[DecisionShard] = None,
    ):
        # Given an AuditSpine (or an emitter onto one), deliveries stage
        # records under the "bus" segment and chaining happens off the
        # delivery path; a plain AuditLog keeps synchronous semantics.
        self.audit = bind_source(audit, "bus")
        self.mode = mode
        self.authoriser = authoriser
        self._clock = clock or (lambda: 0.0)
        self.components: Dict[str, Component] = {}
        self.channels: List[Channel] = []
        self.stats = DeliveryReport()
        # Torn-down channels are compacted out of `channels` so route()
        # never scans dead entries; removal is deferred while route() is
        # iterating (handlers may tear down channels mid-delivery).
        self._route_depth = 0
        self._compact_pending = False
        #: The bus-wide decision plane: every IFC evaluation this bus (and
        #: its channels) performs is memoized and audited through here.
        #: ``shard`` shares a machine's decision shard across bus workers
        #: (see DecisionPlaneRouter); by default the bus gets its own cache.
        self.plane = DecisionPlane(
            audit=self.audit,
            cache=shard.context_cache if shard is not None else None,
        )

    # -- registry -----------------------------------------------------------------

    def register(self, component: Component) -> Component:
        """Add a component to the bus."""
        if component.name in self.components:
            raise DiscoveryError(f"component already registered: {component.name}")
        self.components[component.name] = component
        return component

    def deregister(self, component: Component) -> None:
        """Remove a component, tearing down its channels."""
        self.components.pop(component.name, None)
        for channel in self.channels_of(component):
            channel.teardown(f"{component.name} deregistered")

    def component(self, name: str) -> Component:
        """Look up a registered component."""
        try:
            return self.components[name]
        except KeyError:
            raise DiscoveryError(f"unknown component: {name}") from None

    def channels_of(self, component: Component) -> List[Channel]:
        """All live (active or suspended) channels touching a component."""
        return [
            c
            for c in self.channels
            if c.alive and (c.source is component or c.sink is component)
        ]

    # -- channel establishment -------------------------------------------------------

    def connect(
        self,
        initiator: str,
        source: Component,
        source_endpoint: str,
        sink: Component,
        sink_endpoint: str,
    ) -> Channel:
        """Establish a channel source:endpoint → sink:endpoint.

        Runs, in order (§8.2.2): endpoint type compatibility, the AC
        regime (via the pluggable authoriser), then the IFC flow rule
        over the two components' security contexts.  All outcomes are
        audited.

        Raises:
            SchemaError: incompatible endpoints.
            AccessDenied: the AC regime refused the initiator.
            FlowError: the components' tags do not accord.
        """
        src_ep = source.endpoint(source_endpoint)
        dst_ep = sink.endpoint(sink_endpoint)
        if not dst_ep.accepts(src_ep):
            raise SchemaError(
                f"endpoint mismatch: {source.name}:{source_endpoint} "
                f"({src_ep.kind.value}/{src_ep.message_type.name}) cannot feed "
                f"{sink.name}:{sink_endpoint} "
                f"({dst_ep.kind.value}/{dst_ep.message_type.name})"
            )

        if self.mode in (EnforcementMode.AC_ONLY, EnforcementMode.AC_AND_IFC):
            if not self.authoriser(initiator, source, sink):
                if self.audit is not None:
                    self.audit.append(
                        RecordKind.ACCESS_DENIED,
                        initiator,
                        f"{source.name}->{sink.name}",
                        {"reason": "connect not authorised"},
                    )
                raise AccessDenied(
                    f"{initiator} may not connect {source.name} to {sink.name}"
                )

        if self.mode in (EnforcementMode.IFC_ONLY, EnforcementMode.AC_AND_IFC):
            decision = self.plane.evaluate(source.context, sink.context)
            if not decision.allowed:
                self.plane.audit_denied(
                    source.name, sink.name, decision.reason,
                    source.context, sink.context,
                )
                raise FlowError(source.name, sink.name, decision.reason)

        channel = Channel(
            source, src_ep, sink, dst_ep, audit=self.audit, plane=self.plane
        )
        channel.on_teardown.append(self._channel_torn_down)
        self.channels.append(channel)
        if self.audit is not None:
            self.audit.append(
                RecordKind.CHANNEL_ESTABLISHED,
                initiator,
                f"{source.name}->{sink.name}",
                {
                    "channel": channel.channel_id,
                    "type": src_ep.message_type.name,
                },
                source_context=source.context,
                target_context=sink.context,
            )
        return channel

    def disconnect(self, channel: Channel, reason: str = "requested") -> None:
        """Tear down a channel."""
        channel.teardown(reason)

    def _channel_torn_down(self, channel: Channel, reason: str) -> None:
        """Teardown hook: drop the channel from the scan list.

        Mid-route teardowns (a handler disconnecting, a context change
        collapsing a channel) must not mutate the list being iterated —
        those compact once the outermost route() finishes instead, so a
        long-running bus never accumulates dead channels either way.
        """
        if self._route_depth:
            self._compact_pending = True
            return
        try:
            self.channels.remove(channel)
        except ValueError:
            pass

    # -- delivery ---------------------------------------------------------------------

    def publish(self, source: Component, endpoint_name: str, **values) -> DeliveryReport:
        """Emit a message from a source endpoint along all its channels.

        Per-message enforcement (the channel-establishment check is
        necessary but not sufficient — contexts and message-level tags
        vary per message): the message's *effective* context must flow to
        each receiver; otherwise attribute quenching is attempted, and if
        the base context itself cannot flow, delivery is denied and
        audited.
        """
        message = source.make_message(endpoint_name, **values)
        message.sent_at = self._clock()
        return self.route(source, endpoint_name, message)

    def publish_batch(
        self, source: Component, endpoint_name: str, batch: List[Dict]
    ) -> DeliveryReport:
        """Publish many messages from one endpoint, amortising the per-
        message costs: flow decisions for repeated (message, sink)
        context pairs hit the decision cache, and audit appends are
        chain-hashed in one chunk at the end (see ``AuditLog.flush``).

        ``batch`` is a list of attribute-value mappings, one per message,
        as would be passed to :meth:`publish` as keyword arguments.
        Returns one aggregated :class:`DeliveryReport`.
        """
        report = DeliveryReport()
        for values in batch:
            # Delegate each message to route(): handlers may suspend,
            # resume, connect or tear down channels (or advance the
            # clock) mid-batch, and batching must not change which
            # messages they see or how messages are stamped.
            message = source.make_message(endpoint_name, **values)
            message.sent_at = self._clock()
            sub = self.route(source, endpoint_name, message)
            report.sent += sub.sent
            report.delivered += sub.delivered
            report.denied += sub.denied
            report.quenched_attributes += sub.quenched_attributes
        self.plane.flush()
        return report

    def route(
        self, source: Component, endpoint_name: str, message: Message
    ) -> DeliveryReport:
        """Route a pre-built message (used by gateways re-emitting)."""
        report = DeliveryReport()
        src_ep = source.endpoint(endpoint_name)
        self._route_depth += 1
        try:
            for channel in self.channels:
                if not channel.active:
                    continue
                if channel.source is not source or channel.source_endpoint is not src_ep:
                    continue
                report.sent += 1
                self._deliver_on(channel, message, report)
        finally:
            self._route_depth -= 1
            if not self._route_depth and self._compact_pending:
                self._compact_pending = False
                self.channels = [c for c in self.channels if c.alive]
        self._accumulate(report)
        return report

    def _accumulate(self, report: DeliveryReport) -> None:
        self.stats.sent += report.sent
        self.stats.delivered += report.delivered
        self.stats.denied += report.denied
        self.stats.quenched_attributes += report.quenched_attributes

    def _deliver_on(
        self, channel: Channel, message: Message, report: DeliveryReport
    ) -> None:
        sink = channel.sink
        if self.mode == EnforcementMode.AC_ONLY:
            # The paper's baseline: nothing re-checked after the PEP.
            # Deliveries are still logged (message-level audit needs no
            # IFC) so compliance tooling can expose what leaked.
            channel.messages_carried += 1
            self.plane.audit_allowed(
                channel.source.name, sink.name,
                message.context, sink.context,
                {"msg_id": message.msg_id, "mode": "ac-only"},
            )
            sink.deliver(channel.sink_endpoint.name, message)
            report.delivered += 1
            return

        base = self.plane.evaluate(message.context, sink.context)
        if not base.allowed:
            report.denied += 1
            self.plane.audit_denied(
                channel.source.name,
                sink.name,
                base.reason,
                message.context,
                sink.context,
            )
            return

        outgoing = message
        dropped = message.dropped_attributes(sink.context)
        if dropped:
            outgoing = message.quenched_for(sink.context)
            report.quenched_attributes += len(dropped)
        if self.plane.audit is not None:
            detail = {"msg_id": message.msg_id, "type": message.type.name}
            if dropped:
                detail["quenched"] = dropped
            # Audit the effective context of what was actually delivered:
            # base context plus the extra secrecy of the attributes the
            # receiver really got (quenched ones excluded) — the quenched
            # case is exactly when the trail must show the reduced view.
            self.plane.audit_allowed(
                channel.source.name, sink.name,
                outgoing.effective_context(),
                sink.context, detail,
            )
        channel.messages_carried += 1
        sink.deliver(channel.sink_endpoint.name, outgoing)
        report.delivered += 1
